"""Tests for the 3-tier topology and the fabric facade."""

import pytest

from repro.net import (
    DatacenterFabric,
    LatencyModel,
    TopologyConfig,
    TrafficClass,
    idle,
)
from repro.net.topology import ThreeTierTopology
from repro.sim import Environment, RandomStreams


class TestTopologyConfig:
    def test_default_scale_exceeds_quarter_million(self):
        config = TopologyConfig()
        assert config.total_hosts > 250_000
        assert config.hosts_per_pod == 960
        assert config.hosts_per_tor == 24


class TestThreeTierTopology:
    def _topo(self, **kwargs):
        env = Environment()
        return ThreeTierTopology(env, TopologyConfig(**kwargs),
                                 RandomStreams(0))

    def test_tier_between(self):
        topo = self._topo()
        assert topo.tier_between(0, 1) == "L0"
        assert topo.tier_between(0, 24) == "L1"
        assert topo.tier_between(0, 959) == "L1"
        assert topo.tier_between(0, 960) == "L2"

    def test_out_of_range_host_rejected(self):
        topo = self._topo(pods=2)
        with pytest.raises(ValueError):
            topo.coords(2 * 960)

    def test_switches_created_lazily(self):
        topo = self._topo()
        assert not topo._tors and not topo._l1s and topo._l2 is None
        topo.tor(0, 0)
        assert (0, 0) in topo._tors
        assert 0 in topo._l1s           # wired up to its pod L1
        assert topo._l2 is not None     # and the L1 up to L2

    def test_switch_caching(self):
        topo = self._topo()
        assert topo.tor(1, 2) is topo.tor(1, 2)
        assert topo.l1(1) is topo.l1(1)
        assert topo.l2() is topo.l2()

    def test_pod_distance_deterministic_and_bounded(self):
        topo = self._topo()
        lat = topo.config.latency
        for pod in range(20):
            d = topo.pod_distance_m(pod)
            assert d == topo.pod_distance_m(pod)
            assert lat.l1_l2_distance_min_m <= d <= \
                lat.l1_l2_distance_max_m

    def test_distinct_pods_get_distinct_distances(self):
        topo = self._topo()
        distances = {round(topo.pod_distance_m(p), 6) for p in range(30)}
        assert len(distances) > 20

    def test_addressing_helpers(self):
        topo = self._topo()
        assert topo.ip_of(0) == "10.0.0.0"
        assert topo.mac_of(5).startswith("02:")


class TestFabric:
    def _fabric(self):
        env = Environment()
        config = TopologyConfig(background=idle())
        return env, DatacenterFabric(env, config)

    def test_same_tor_delivery(self):
        env, fabric = self._fabric()
        got = []
        a = fabric.attach(0, lambda p: got.append(p))
        fabric.attach(1, lambda p: got.append(p))
        a.send(a.make_packet(1, b"hi"))
        env.run()
        assert len(got) == 1 and got[0].payload == b"hi"
        assert got[0].hops == 1  # one TOR traversal

    def test_same_pod_delivery_hops(self):
        env, fabric = self._fabric()
        got = []
        a = fabric.attach(0, lambda p: None)
        fabric.attach(30, lambda p: got.append(p))
        a.send(a.make_packet(30, b"pod"))
        env.run()
        assert got[0].hops == 3  # TOR, L1, TOR

    def test_cross_pod_delivery_hops(self):
        env, fabric = self._fabric()
        got = []
        a = fabric.attach(0, lambda p: None)
        fabric.attach(5000, lambda p: got.append(p))
        a.send(a.make_packet(5000, b"far"))
        env.run()
        assert got[0].hops == 5  # TOR, L1, L2, L1, TOR

    def test_duplicate_attach_rejected(self):
        env, fabric = self._fabric()
        fabric.attach(0, lambda p: None)
        with pytest.raises(ValueError):
            fabric.attach(0, lambda p: None)

    def test_detach_stops_delivery(self):
        env, fabric = self._fabric()
        got = []
        a = fabric.attach(0, lambda p: None)
        fabric.attach(1, lambda p: got.append(p))
        fabric.detach(1)
        a.send(a.make_packet(1, b"gone"))
        env.run()
        assert got == []

    def test_detach_unknown_raises(self):
        env, fabric = self._fabric()
        with pytest.raises(KeyError):
            fabric.detach(7)

    def test_attachment_lookup(self):
        env, fabric = self._fabric()
        a = fabric.attach(3, lambda p: None)
        assert fabric.attachment(3) is a
        assert fabric.is_attached(3)
        assert not fabric.is_attached(4)

    def test_packet_created_at_stamped(self):
        env, fabric = self._fabric()
        a = fabric.attach(0, lambda p: None)
        fabric.attach(1, lambda p: None)

        def later(env):
            yield env.timeout(1.0)
            packet = a.make_packet(1, b"x")
            a.send(packet)
            assert packet.created_at == 1.0

        env.process(later(env))
        env.run()

    def test_l0_one_way_latency_close_to_budget(self):
        """Raw network one-way at L0 ~ tor latency + ser + prop."""
        env, fabric = self._fabric()
        times = []
        a = fabric.attach(0, lambda p: None)
        fabric.attach(1, lambda p: times.append(env.now))
        a.send(a.make_packet(1, b"\x00" * 64,
                             traffic_class=TrafficClass.LOSSLESS))
        env.run()
        lat = fabric.config.latency
        assert times[0] == pytest.approx(lat.tor_latency, rel=0.5)


class TestLatencyModelJitter:
    def test_idle_model_samples_zero(self):
        import random
        model = idle()
        rng = random.Random(0)
        for tier in ("tor", "l1", "l2"):
            assert model.sample(tier, rng) == 0.0

    def test_unknown_tier_rejected(self):
        import random
        with pytest.raises(ValueError):
            idle().sample("l3", random.Random(0))

    def test_default_l2_jitter_larger_than_tor(self):
        import random
        from repro.net import BackgroundTrafficModel
        model = BackgroundTrafficModel()
        rng = random.Random(1)
        tor = sum(model.sample("tor", rng) for _ in range(500))
        rng = random.Random(1)
        l2 = sum(model.sample("l2", rng) for _ in range(500))
        assert l2 > tor
