"""Additional switch/fabric edge cases: overflow accounting, ECN
end-to-end, multi-upstream PFC."""

import pytest

from repro.net import (
    DatacenterFabric,
    EcnConfig,
    PfcConfig,
    TopologyConfig,
    TrafficClass,
    idle,
)
from repro.net.latency import idle as idle_model
from repro.net.links import Port
from repro.net.switch import Switch
from repro.sim import Environment, RandomStreams

from .test_links_switch import make_packet


class TestLosslessOverflow:
    def test_overflow_counter_when_pfc_too_late(self):
        """If lossless traffic exceeds even the physical queue (PFC
        watermark set absurdly high), the switch counts the violation
        rather than silently dropping."""
        env = Environment()
        switch = Switch(env, "sw", "tor", forwarding_latency=0.1e-6,
                        rng=RandomStreams(seed=0).stream("switch:sw"),
                        background=idle_model(),
                        pfc=PfcConfig(xoff_bytes=10 ** 9,
                                      xon_bytes=10 ** 8))
        slow = Port(env, "out", rate_bps=1e3, distance_m=0.0,
                    deliver=lambda p: None, queue_capacity_bytes=100)
        # Force even lossless to be bounded by monkey-tight capacity:
        # Port never drops lossless, so overflow cannot occur through
        # enqueue(); verify the accepted path instead.
        switch.add_port("out", slow)
        switch.set_router(lambda sw, pkt: "out")
        for _ in range(5):
            switch.receive(make_packet(payload_bytes=200,
                                       tc=TrafficClass.LOSSLESS))
        env.run(until=0.01)
        assert switch.stats.forwarded == 5
        assert switch.stats.lossless_overflow == 0

    def test_multiple_upstreams_all_paused(self):
        env = Environment()
        switch = Switch(env, "sw", "tor", forwarding_latency=0.1e-6,
                        rng=RandomStreams(seed=0).stream("switch:sw"),
                        background=idle_model(),
                        pfc=PfcConfig(xoff_bytes=1000, xon_bytes=400))
        slow = Port(env, "out", rate_bps=1e3, distance_m=0.0,
                    deliver=lambda p: None)
        switch.add_port("out", slow)
        switch.set_router(lambda sw, pkt: "out")
        upstreams = [Port(env, f"up{i}", rate_bps=40e9)
                     for i in range(3)]
        for i, port in enumerate(upstreams):
            switch.register_upstream(f"n{i}", port)
        for _ in range(5):
            switch.receive(make_packet(payload_bytes=500,
                                       tc=TrafficClass.LOSSLESS))
        env.run(until=0.01)
        assert all(p.is_paused(TrafficClass.LOSSLESS)
                   for p in upstreams)


class TestEcnEndToEnd:
    def test_mark_sets_ip_ecn_bits(self):
        env = Environment()
        config = TopologyConfig(
            background=idle(),
            ecn=EcnConfig(kmin_bytes=100, kmax_bytes=200, pmax=1.0))
        fabric = DatacenterFabric(env, config)
        got = []
        a = fabric.attach(0, lambda p: None)
        fabric.attach(1, lambda p: got.append(p))
        # Slow the victim downlink so its queue is deep when packets
        # are enqueued.
        topo = fabric.topology
        tor = topo.tor(0, 0)
        tor.ports[1].rate_bps = 1e6
        for _ in range(30):
            a.send(a.make_packet(1, b"", payload_bytes=500,
                                 traffic_class=TrafficClass.LOSSLESS))
        env.run(until=1.0)
        marked = [p for p in got if p.ecn_marked]
        assert marked
        assert all(p.ip.ecn == 0b11 for p in marked)


class TestFabricBoundaries:
    def test_custom_small_datacenter(self):
        env = Environment()
        config = TopologyConfig(hosts_per_tor=4, tors_per_pod=2, pods=2,
                                background=idle())
        fabric = DatacenterFabric(env, config)
        assert config.total_hosts == 16
        got = []
        a = fabric.attach(0, lambda p: None)
        fabric.attach(15, lambda p: got.append(p))  # last host
        a.send(a.make_packet(15, b"edge"))
        env.run()
        assert got[0].hops == 5  # cross-pod
        with pytest.raises(ValueError):
            fabric.attach(16, lambda p: None)

    def test_tier_between_same_host(self):
        env = Environment()
        fabric = DatacenterFabric(env, TopologyConfig(background=idle()))
        assert fabric.topology.tier_between(5, 5) == "L0"
