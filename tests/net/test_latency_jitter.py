"""Batched jitter sampling must be RNG-identical to per-packet draws."""

import random

import pytest

from repro.net.latency import BackgroundTrafficModel, JitterStream, TierJitter


class TestSampleBatch:
    def test_matches_sequential_draws_and_rng_state(self):
        jitter = TierJitter(exp_mean=0.03e-6, burst_prob=0.2,
                            burst_min=1e-7, burst_max=5e-7)
        batched_rng = random.Random(42)
        sequential_rng = random.Random(42)
        batch = jitter.sample_batch(batched_rng, 200)
        sequential = [jitter.sample(sequential_rng) for _ in range(200)]
        assert batch == sequential
        assert batched_rng.getstate() == sequential_rng.getstate()

    def test_exp_only_tier_matches(self):
        jitter = TierJitter(exp_mean=0.004e-6)
        a, b = random.Random(9), random.Random(9)
        assert jitter.sample_batch(a, 64) == \
            [jitter.sample(b) for _ in range(64)]

    def test_zero_jitter_consumes_no_rng(self):
        jitter = TierJitter()
        rng = random.Random(1)
        state = rng.getstate()
        assert jitter.sample_batch(rng, 50) == [0.0] * 50
        assert rng.getstate() == state


class TestJitterStream:
    def test_stream_matches_model_sample(self):
        model = BackgroundTrafficModel()
        stream_rng, direct_rng = random.Random(7), random.Random(7)
        stream = model.batched("l2", stream_rng, batch=16)
        got = [stream.take() for _ in range(50)]
        want = [model.sample("l2", direct_rng) for _ in range(50)]
        assert got == want

    def test_batch_size_one(self):
        model = BackgroundTrafficModel()
        a, b = random.Random(3), random.Random(3)
        stream = model.batched("l1", a, batch=1)
        assert [stream.take() for _ in range(10)] == \
            [model.sample("l1", b) for _ in range(10)]

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            JitterStream(TierJitter(), random.Random(0), batch=0)

    def test_unknown_tier_rejected(self):
        model = BackgroundTrafficModel()
        with pytest.raises(ValueError):
            model.batched("spine", random.Random(0))
        with pytest.raises(ValueError):
            model.sample_batch("spine", random.Random(0), 4)
