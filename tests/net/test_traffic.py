"""Tests for the real background-traffic generator."""

import random

import pytest

from repro.net import (
    BackgroundLoadConfig,
    BackgroundLoadGenerator,
    DatacenterFabric,
    TopologyConfig,
    idle,
)
from repro.sim import Environment, RandomStreams


def make_fabric():
    env = Environment()
    return env, DatacenterFabric(env, TopologyConfig(background=idle()),
                                 RandomStreams(3))


class TestBackgroundLoadGenerator:
    def test_traffic_flows(self):
        env, fabric = make_fabric()
        generator = BackgroundLoadGenerator(
            env, fabric, hosts=list(range(2, 8)),
            config=BackgroundLoadConfig(utilization=0.3),
            rng=random.Random(0))
        env.run(until=2e-3)
        generator.stop()
        assert generator.packets_sent > 50
        # Deliveries lag sends only by in-flight packets.
        env.run(until=3e-3)
        assert generator.packets_received >= \
            generator.packets_sent * 0.9

    def test_utilization_scales_volume(self):
        def volume(utilization):
            env, fabric = make_fabric()
            generator = BackgroundLoadGenerator(
                env, fabric, hosts=list(range(2, 6)),
                config=BackgroundLoadConfig(utilization=utilization),
                rng=random.Random(1))
            env.run(until=2e-3)
            generator.stop()
            return generator.packets_sent

        assert volume(0.5) > 1.5 * volume(0.1)

    def test_stop_halts_generation(self):
        env, fabric = make_fabric()
        generator = BackgroundLoadGenerator(
            env, fabric, hosts=[2, 3], rng=random.Random(2))
        env.run(until=1e-3)
        generator.stop()
        env.run(until=2e-3)
        after_stop = generator.packets_sent
        env.run(until=4e-3)
        assert generator.packets_sent == after_stop

    def test_needs_two_hosts(self):
        env, fabric = make_fabric()
        with pytest.raises(ValueError):
            BackgroundLoadGenerator(env, fabric, hosts=[2])

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            BackgroundLoadConfig(utilization=1.0)

    def test_foreground_ltl_sees_real_queueing(self):
        """With heavy best-effort cross-traffic on the same TOR, LTL's
        lossless class still gets through (strict priority), but shares
        the physical links."""
        from repro.fpga import Shell
        env, fabric = make_fabric()
        a = Shell(env, 0, fabric)
        b = Shell(env, 1, fabric)
        a.connect_to(b)
        generator = BackgroundLoadGenerator(
            env, fabric, hosts=list(range(2, 10)),
            config=BackgroundLoadConfig(utilization=0.7),
            rng=random.Random(5))
        delivered = []
        b.role_receive = lambda p, n: delivered.append(env.now)

        def driver(env):
            for _ in range(20):
                a.remote_send(1, b"\x00" * 64, 64)
                yield env.timeout(50e-6)

        env.process(driver(env))
        env.run(until=5e-3)
        generator.stop()
        assert len(delivered) == 20
        rtts = a.ltl.rtt_samples()
        # Still microsecond-scale: the lossless class is protected.
        assert max(rtts) < 10e-6
