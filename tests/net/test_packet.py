"""Tests for packet/header models and wire serialization."""

import pytest

from repro.net.packet import (
    ETHERNET_FCS_BYTES,
    ETHERNET_HEADER_BYTES,
    IPV4_HEADER_BYTES,
    MIN_FRAME_BYTES,
    UDP_HEADER_BYTES,
    EthernetHeader,
    Ipv4Header,
    Packet,
    TrafficClass,
    UdpHeader,
    ipv4_checksum,
    make_udp_packet,
)


class TestEthernetHeader:
    def test_roundtrip(self):
        header = EthernetHeader(dst_mac="02:00:00:00:00:01",
                                src_mac="02:00:00:00:00:02")
        decoded = EthernetHeader.from_bytes(header.to_bytes())
        assert decoded.dst_mac == header.dst_mac
        assert decoded.src_mac == header.src_mac
        assert decoded.ethertype == header.ethertype

    def test_wire_size(self):
        header = EthernetHeader("02:00:00:00:00:01", "02:00:00:00:00:02")
        assert len(header.to_bytes()) == ETHERNET_HEADER_BYTES

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            EthernetHeader.from_bytes(b"\x00" * 5)


class TestIpv4Header:
    def test_roundtrip(self):
        header = Ipv4Header(src_ip="10.1.2.3", dst_ip="10.4.5.6",
                            ttl=17, dscp=46, ecn=1)
        decoded = Ipv4Header.from_bytes(header.to_bytes())
        assert decoded.src_ip == "10.1.2.3"
        assert decoded.dst_ip == "10.4.5.6"
        assert decoded.ttl == 17
        assert decoded.dscp == 46
        assert decoded.ecn == 1

    def test_checksum_validates(self):
        header = Ipv4Header(src_ip="10.0.0.1", dst_ip="10.0.0.2")
        raw = header.to_bytes()
        # Checksum of a header including its checksum field is 0.
        assert ipv4_checksum(raw) == 0

    def test_wire_size(self):
        raw = Ipv4Header(src_ip="10.0.0.1", dst_ip="10.0.0.2").to_bytes()
        assert len(raw) == IPV4_HEADER_BYTES

    def test_bad_address_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Header(src_ip="300.0.0.1", dst_ip="10.0.0.2").to_bytes()

    def test_non_ipv4_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Header.from_bytes(b"\x60" + b"\x00" * 19)


class TestUdpHeader:
    def test_roundtrip(self):
        decoded = UdpHeader.from_bytes(
            UdpHeader(src_port=1234, dst_port=51000).to_bytes())
        assert (decoded.src_port, decoded.dst_port) == (1234, 51000)

    def test_wire_size(self):
        assert len(UdpHeader(1, 2).to_bytes()) == UDP_HEADER_BYTES


class TestPacket:
    def _packet(self, payload=b"hello", tc=TrafficClass.BEST_EFFORT):
        return make_udp_packet(
            0, 1, "10.0.0.1", "10.0.0.2", "02:00:00:00:00:00",
            "02:00:00:00:00:01", 1000, 2000, payload, traffic_class=tc)

    def test_wire_bytes_includes_all_headers(self):
        packet = self._packet(payload=b"x" * 100)
        expected = (ETHERNET_HEADER_BYTES + ETHERNET_FCS_BYTES
                    + IPV4_HEADER_BYTES + UDP_HEADER_BYTES + 100)
        assert packet.wire_bytes == expected

    def test_minimum_frame_size_enforced(self):
        packet = self._packet(payload=b"")
        assert packet.wire_bytes == MIN_FRAME_BYTES

    def test_opaque_payload_requires_size(self):
        with pytest.raises(ValueError):
            Packet(eth=EthernetHeader("02:00:00:00:00:00",
                                      "02:00:00:00:00:01"),
                   payload=object())

    def test_opaque_payload_with_size(self):
        packet = Packet(
            eth=EthernetHeader("02:00:00:00:00:00", "02:00:00:00:00:01"),
            payload=object(), payload_bytes=500)
        assert packet.payload_bytes == 500

    def test_traffic_class_from_eth_priority(self):
        packet = self._packet(tc=TrafficClass.LOSSLESS)
        assert packet.traffic_class == TrafficClass.LOSSLESS

    def test_headers_serialize(self):
        packet = self._packet(payload=b"abc")
        raw = packet.headers_to_bytes()
        assert len(raw) == ETHERNET_HEADER_BYTES + IPV4_HEADER_BYTES \
            + UDP_HEADER_BYTES
        # IP total length was filled in.
        assert packet.ip.total_length == IPV4_HEADER_BYTES \
            + UDP_HEADER_BYTES + 3

    def test_clone_has_fresh_id(self):
        packet = self._packet()
        clone = packet.clone()
        assert clone.packet_id != packet.packet_id
        assert clone.payload == packet.payload
        assert clone.eth.dst_mac == packet.eth.dst_mac

    def test_unique_packet_ids(self):
        ids = {self._packet().packet_id for _ in range(10)}
        assert len(ids) == 10


class TestTrafficClass:
    def test_lossless_detection(self):
        assert TrafficClass.is_lossless(TrafficClass.LOSSLESS)
        assert not TrafficClass.is_lossless(TrafficClass.BEST_EFFORT)

    def test_all_classes_distinct(self):
        assert len(set(TrafficClass.ALL)) == len(TrafficClass.ALL)
