"""Tests for the DC-QCN congestion-control state machines."""

import pytest

from repro.net.dcqcn import CnpGenerator, DcqcnConfig, DcqcnRateController


class TestRateController:
    def test_starts_at_line_rate(self):
        rc = DcqcnRateController()
        assert rc.current_rate == rc.config.line_rate_bps

    def test_cnp_cuts_rate(self):
        rc = DcqcnRateController()
        before = rc.current_rate
        rc.on_cnp(now=0.0)
        assert rc.current_rate < before
        assert rc.rate_cuts == 1

    def test_cnp_rate_cut_respects_min_interval(self):
        config = DcqcnConfig(cnp_min_interval=50e-6)
        rc = DcqcnRateController(config)
        rc.on_cnp(now=0.0)
        rate_after_first = rc.current_rate
        rc.on_cnp(now=10e-6)  # within the min interval: alpha moves,
        assert rc.current_rate == rate_after_first  # rate does not
        rc.on_cnp(now=100e-6)
        assert rc.current_rate < rate_after_first

    def test_rate_never_below_floor(self):
        config = DcqcnConfig(min_rate_bps=1e6)
        rc = DcqcnRateController(config)
        for i in range(100):
            rc.on_cnp(now=i * 1e-3)
        assert rc.current_rate >= config.min_rate_bps

    def test_recovery_after_congestion_clears(self):
        rc = DcqcnRateController()
        rc.on_cnp(now=0.0)
        cut_rate = rc.current_rate
        t = 0.0
        for _ in range(200):
            t += rc.config.increase_period
            rc.on_increase_timer(now=t)
        assert rc.current_rate > cut_rate
        # Eventually back to (near) line rate.
        assert rc.current_rate >= 0.95 * rc.config.line_rate_bps

    def test_increase_timer_respects_period(self):
        rc = DcqcnRateController()
        rc.on_cnp(now=0.0)
        rate = rc.current_rate
        rc.on_increase_timer(now=1e-6)  # too soon after construction
        assert rc.current_rate == rate

    def test_alpha_decays_without_cnps(self):
        rc = DcqcnRateController()
        rc.on_cnp(now=0.0)
        alpha = rc.alpha
        rc.on_increase_timer(now=1.0)
        assert rc.alpha < alpha

    def test_seconds_per_byte(self):
        rc = DcqcnRateController()
        assert rc.seconds_per_byte() == pytest.approx(
            8.0 / rc.config.line_rate_bps)


class TestCnpGenerator:
    def test_first_mark_generates_cnp(self):
        gen = CnpGenerator()
        assert gen.on_marked_packet("flow", now=0.0)
        assert gen.cnps_sent == 1

    def test_cnp_paced_per_flow(self):
        gen = CnpGenerator(DcqcnConfig(cnp_generation_interval=50e-6))
        assert gen.on_marked_packet("flow", now=0.0)
        assert not gen.on_marked_packet("flow", now=10e-6)
        assert gen.on_marked_packet("flow", now=60e-6)

    def test_flows_paced_independently(self):
        gen = CnpGenerator()
        assert gen.on_marked_packet("a", now=0.0)
        assert gen.on_marked_packet("b", now=0.0)
