"""Tests for transmit ports (serialization, PFC) and switches (ECN, PFC)."""

import pytest

from repro.net.latency import idle
from repro.net.links import Port, propagation_delay
from repro.net.packet import (
    EthernetHeader,
    Ipv4Header,
    Packet,
    TrafficClass,
)
from repro.net.switch import EcnConfig, PfcConfig, Switch
from repro.sim import Environment, RandomStreams


def make_packet(payload_bytes=100, tc=TrafficClass.BEST_EFFORT,
                dst_index=0, with_ip=False):
    from repro.net.addressing import mac_address
    eth = EthernetHeader(dst_mac=mac_address(dst_index),
                         src_mac=mac_address(999), priority=tc)
    ip = Ipv4Header(src_ip="10.0.0.1", dst_ip="10.0.0.2") if with_ip \
        else None
    return Packet(eth=eth, ip=ip, payload=b"", payload_bytes=payload_bytes)


class TestPropagation:
    def test_delay_scales_with_distance(self):
        assert propagation_delay(200.0) == pytest.approx(1e-6)

    def test_zero_distance(self):
        assert propagation_delay(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            propagation_delay(-1.0)


class TestPort:
    def test_serialization_delay_applied(self):
        env = Environment()
        got = []
        port = Port(env, "p", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: got.append(env.now))
        packet = make_packet(payload_bytes=1500 - 64)
        port.enqueue(packet)
        env.run()
        # wire_bytes * 8 / rate
        assert got[0] == pytest.approx(packet.wire_bytes * 8 / 40e9)

    def test_fifo_within_class(self):
        env = Environment()
        got = []
        port = Port(env, "p", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: got.append(p.payload_bytes))
        for size in (100, 200, 300):
            port.enqueue(make_packet(payload_bytes=size))
        env.run()
        assert got == [100, 200, 300]

    def test_strict_priority_between_classes(self):
        env = Environment()
        got = []
        port = Port(env, "p", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: got.append(p.traffic_class))
        # Both classes queued at once: the lossless (higher) class must
        # be drained first, then the best-effort backlog.
        port.enqueue(make_packet(payload_bytes=100))
        port.enqueue(make_packet(payload_bytes=100))
        port.enqueue(make_packet(payload_bytes=100,
                                 tc=TrafficClass.LOSSLESS))
        env.run()
        assert got == [TrafficClass.LOSSLESS, TrafficClass.BEST_EFFORT,
                       TrafficClass.BEST_EFFORT]

    def test_pause_blocks_class(self):
        env = Environment()
        got = []
        port = Port(env, "p", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: got.append(
                        (env.now, p.traffic_class)))
        port.pause(TrafficClass.LOSSLESS)
        port.enqueue(make_packet(tc=TrafficClass.LOSSLESS))
        port.enqueue(make_packet(tc=TrafficClass.BEST_EFFORT))
        env.run(until=1e-3)
        assert [tc for _t, tc in got] == [TrafficClass.BEST_EFFORT]
        port.resume(TrafficClass.LOSSLESS)
        env.run(until=2e-3)
        assert [tc for _t, tc in got][-1] == TrafficClass.LOSSLESS

    def test_tail_drop_best_effort(self):
        env = Environment()
        port = Port(env, "p", rate_bps=1e3,  # very slow: queue builds
                    distance_m=0.0, deliver=lambda p: None,
                    queue_capacity_bytes=300)
        accepted = [port.enqueue(make_packet(payload_bytes=150))
                    for _ in range(5)]
        assert accepted[0] is True
        assert not all(accepted)
        assert port.stats.dropped > 0

    def test_lossless_never_tail_dropped(self):
        env = Environment()
        port = Port(env, "p", rate_bps=1e3, distance_m=0.0,
                    deliver=lambda p: None, queue_capacity_bytes=300)
        accepted = [port.enqueue(make_packet(
            payload_bytes=150, tc=TrafficClass.LOSSLESS))
            for _ in range(5)]
        assert all(accepted)


class TestEcnConfig:
    def test_no_marking_below_kmin(self):
        ecn = EcnConfig(kmin_bytes=1000, kmax_bytes=2000, pmax=0.5)
        assert ecn.mark_probability(500) == 0.0

    def test_full_marking_above_kmax(self):
        ecn = EcnConfig(kmin_bytes=1000, kmax_bytes=2000, pmax=0.5)
        assert ecn.mark_probability(3000) == 1.0

    def test_linear_ramp(self):
        ecn = EcnConfig(kmin_bytes=1000, kmax_bytes=2000, pmax=0.5)
        assert ecn.mark_probability(1500) == pytest.approx(0.25)


class TestPfcConfig:
    def test_xon_below_xoff_enforced(self):
        with pytest.raises(ValueError):
            PfcConfig(xoff_bytes=100, xon_bytes=200)


class TestSwitch:
    def _switch(self, env, **kwargs):
        switch = Switch(env, "sw", "tor", forwarding_latency=0.5e-6,
                        rng=RandomStreams(seed=0).stream("switch:sw"),
                        background=idle(), **kwargs)
        return switch

    def test_forwards_to_routed_port(self):
        env = Environment()
        switch = self._switch(env)
        got = []
        port = Port(env, "out", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: got.append(p))
        switch.add_port("out", port)
        switch.set_router(lambda sw, pkt: "out")
        switch.receive(make_packet())
        env.run()
        assert len(got) == 1
        assert switch.stats.forwarded == 1

    def test_forwarding_latency_applied(self):
        env = Environment()
        switch = self._switch(env)
        got = []
        port = Port(env, "out", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: got.append(env.now))
        switch.add_port("out", port)
        switch.set_router(lambda sw, pkt: "out")
        packet = make_packet()
        switch.receive(packet)
        env.run()
        assert got[0] == pytest.approx(
            0.5e-6 + packet.wire_bytes * 8 / 40e9)

    def test_routing_failure_counted(self):
        env = Environment()
        switch = self._switch(env)
        switch.set_router(lambda sw, pkt: "nonexistent")
        switch.receive(make_packet())
        env.run()
        assert switch.stats.routing_failures == 1

    def test_no_router_counted(self):
        env = Environment()
        switch = self._switch(env)
        switch.receive(make_packet())
        env.run()
        assert switch.stats.routing_failures == 1

    def test_hop_count_incremented(self):
        env = Environment()
        switch = self._switch(env)
        switch.set_router(lambda sw, pkt: None)
        packet = make_packet()
        switch.receive(packet)
        env.run()
        assert packet.hops == 1

    def test_duplicate_port_key_rejected(self):
        env = Environment()
        switch = self._switch(env)
        port = Port(env, "out", rate_bps=40e9)
        switch.add_port("out", port)
        with pytest.raises(ValueError):
            switch.add_port("out", port)

    def test_ecn_marks_at_deep_queue(self):
        env = Environment()
        switch = self._switch(
            env, ecn=EcnConfig(kmin_bytes=100, kmax_bytes=200, pmax=1.0))
        # A slow port so the queue stays deep.
        port = Port(env, "out", rate_bps=1e6, distance_m=0.0,
                    deliver=lambda p: None)
        switch.add_port("out", port)
        switch.set_router(lambda sw, pkt: "out")
        for _ in range(40):
            switch.receive(make_packet(payload_bytes=500,
                                       tc=TrafficClass.LOSSLESS,
                                       with_ip=True))
        env.run(until=0.5)
        assert switch.stats.ecn_marked > 0

    def test_pfc_pauses_upstream_on_congestion(self):
        env = Environment()
        switch = self._switch(
            env, pfc=PfcConfig(xoff_bytes=2000, xon_bytes=500))
        slow = Port(env, "out", rate_bps=1e6, distance_m=0.0,
                    deliver=lambda p: None)
        switch.add_port("out", slow)
        switch.set_router(lambda sw, pkt: "out")
        upstream = Port(env, "up", rate_bps=40e9, distance_m=0.0,
                        deliver=switch.receive)
        switch.register_upstream("neighbor", upstream)
        for _ in range(10):
            switch.receive(make_packet(payload_bytes=1000,
                                       tc=TrafficClass.LOSSLESS))
        env.run(until=0.05)
        assert switch.stats.pfc_pause_sent >= 1
        # Eventually the queue drains below xon and resume is sent.
        env.run(until=60.0)
        assert switch.stats.pfc_resume_sent >= 1
        assert not upstream.is_paused(TrafficClass.LOSSLESS)


class TestQueuedBytesAccounting:
    def test_running_total_tracks_per_class_dicts(self):
        """The O(1) running total must equal the per-class sums at every
        point of the drain, including across enqueues and transmits."""
        env = Environment()
        port = Port(env, "p", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: None)

        def invariant():
            assert port.queued_bytes_total == sum(
                port.queued_bytes(tc) for tc in TrafficClass.ALL)

        invariant()
        for size, tc in ((100, TrafficClass.BEST_EFFORT),
                         (500, TrafficClass.LOSSLESS),
                         (64, TrafficClass.BEST_EFFORT),
                         (1400, TrafficClass.LOSSLESS)):
            port.enqueue(make_packet(payload_bytes=size, tc=tc))
            invariant()
        while len(env):
            env.step()
            invariant()
        assert port.queued_bytes_total == 0

    def test_running_total_unchanged_by_drop(self):
        env = Environment()
        port = Port(env, "p", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: None, queue_capacity_bytes=200)
        assert port.enqueue(make_packet(payload_bytes=50))
        before = port.queued_bytes_total
        assert not port.enqueue(make_packet(payload_bytes=5000))
        assert port.queued_bytes_total == before
        assert port.queued_bytes_total == sum(
            port.queued_bytes(tc) for tc in TrafficClass.ALL)


class TestDropAbandonsSpan:
    def test_tail_drop_abandons_unprotected_span(self):
        from repro.trace import TraceRecorder
        env = Environment()
        recorder = TraceRecorder()
        port = Port(env, "p", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: None, queue_capacity_bytes=200)
        assert port.enqueue(make_packet(payload_bytes=100))
        doomed = make_packet(payload_bytes=5000)
        doomed.trace = recorder.start(env.now)
        assert not port.enqueue(doomed)
        # The drop is terminal for an unprotected request: the recorder
        # must count the span instead of leaking it open.
        assert recorder.abandoned == 1
        assert doomed.trace.closed

    def test_tail_drop_spares_protected_span(self):
        from repro.trace import TraceRecorder
        env = Environment()
        recorder = TraceRecorder()
        port = Port(env, "p", rate_bps=40e9, distance_m=0.0,
                    deliver=lambda p: None, queue_capacity_bytes=200)
        assert port.enqueue(make_packet(payload_bytes=100))
        doomed = make_packet(payload_bytes=5000)
        doomed.trace = recorder.start(env.now)
        # In LTL custody the frame will be retransmitted: the drop is
        # recoverable and must NOT close the span.
        doomed.trace.protected = True
        assert not port.enqueue(doomed)
        assert recorder.abandoned == 0
        assert not doomed.trace.closed
