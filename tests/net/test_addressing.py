"""Tests for host addressing (index <-> coords <-> IP/MAC)."""

import pytest

from repro.net.addressing import (
    HostCoordinates,
    coords_to_host_index,
    host_index_to_coords,
    ip_address,
    mac_address,
    mac_to_host_index,
)


class TestCoordinates:
    def test_index_zero(self):
        coords = host_index_to_coords(0, 24, 40)
        assert coords == HostCoordinates(pod=0, tor=0, slot=0)

    def test_one_tor_boundary(self):
        coords = host_index_to_coords(24, 24, 40)
        assert coords == HostCoordinates(pod=0, tor=1, slot=0)

    def test_one_pod_boundary(self):
        coords = host_index_to_coords(960, 24, 40)
        assert coords == HostCoordinates(pod=1, tor=0, slot=0)

    def test_roundtrip_many(self):
        for index in (0, 1, 23, 24, 959, 960, 12345, 250_000):
            coords = host_index_to_coords(index, 24, 40)
            assert coords_to_host_index(coords, 24, 40) == index

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            host_index_to_coords(-1, 24, 40)

    def test_same_tor_and_pod_predicates(self):
        a = host_index_to_coords(0, 24, 40)
        b = host_index_to_coords(23, 24, 40)
        c = host_index_to_coords(24, 24, 40)
        d = host_index_to_coords(960, 24, 40)
        assert a.same_tor(b)
        assert not a.same_tor(c)
        assert a.same_pod(c)
        assert not a.same_pod(d)


class TestAddresses:
    def test_ip_format(self):
        coords = HostCoordinates(pod=3, tor=7, slot=11)
        assert ip_address(coords) == "10.3.7.11"

    def test_mac_roundtrip(self):
        for index in (0, 1, 255, 256, 123456, 250_000):
            assert mac_to_host_index(mac_address(index)) == index

    def test_mac_is_locally_administered(self):
        assert mac_address(5).startswith("02:")

    def test_mac_rejects_wrong_prefix(self):
        with pytest.raises(ValueError):
            mac_to_host_index("00:00:00:00:00:05")

    def test_mac_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mac_address(2 ** 40)
