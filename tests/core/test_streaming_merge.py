"""StreamingQuantile.merge / LatencyRecorder.merge accuracy and contracts."""

import random

import pytest

from repro.core.metrics import (STREAMING_QUANTILES, LatencyRecorder,
                                StreamingQuantile)
from repro.sim.randomness import percentile


def _samples(seed, n, dist="expo"):
    rng = random.Random(seed)
    if dist == "expo":
        return [rng.expovariate(1.0) for _ in range(n)]
    if dist == "uniform":
        return [rng.uniform(0.0, 10.0) for _ in range(n)]
    raise AssertionError(dist)


@pytest.mark.parametrize("q,rtol", [(50.0, 0.05), (95.0, 0.05), (99.0, 0.10)])
@pytest.mark.parametrize("dist", ["expo", "uniform"])
def test_merge_tracks_exact_percentile(q, rtol, dist):
    a_samples = _samples(1, 2000, dist)
    b_samples = _samples(2, 2000, dist)
    a, b = StreamingQuantile(q), StreamingQuantile(q)
    for x in a_samples:
        a.record(x)
    for x in b_samples:
        b.record(x)
    a.merge(b)
    exact = percentile(sorted(a_samples + b_samples), q)
    assert a.count == 4000
    assert a.value == pytest.approx(exact, rel=rtol)


def test_merge_preserves_extremes():
    a, b = StreamingQuantile(99.0), StreamingQuantile(99.0)
    for x in _samples(3, 500):
        a.record(x)
    for x in _samples(4, 500):
        b.record(x)
    lo = min(a.minimum, b.minimum)
    hi = max(a.maximum, b.maximum)
    a.merge(b)
    assert a.minimum == lo
    assert a.maximum == hi
    # The estimate stays inside the represented sample range.
    assert lo <= a.value <= hi


def test_merge_snapshots_other():
    """Mutating the source digest after a merge must not leak through."""
    a, b = StreamingQuantile(50.0), StreamingQuantile(50.0)
    for x in _samples(3, 100):
        a.record(x)
    for x in _samples(4, 100):
        b.record(x)
    a.merge(b)
    before = a.value
    for _ in range(500):
        b.record(1e9)
    assert a.value == before
    assert a.count == 200


def test_merge_small_other_replays_raw_samples():
    a = StreamingQuantile(50.0)
    for x in _samples(5, 1000):
        a.record(x)
    b = StreamingQuantile(50.0)
    for x in (0.1, 0.2, 0.3):   # < 5 samples: still initializing
        b.record(x)
    n_before = a.count
    a.merge(b)
    assert a.count == n_before + 3


def test_merge_small_self_adopts_other_digest():
    a = StreamingQuantile(50.0)
    for x in (5.0, 6.0):
        a.record(x)
    b = StreamingQuantile(50.0)
    b_samples = _samples(6, 1000)
    for x in b_samples:
        b.record(x)
    a.merge(b)
    assert a.count == 1002
    exact = percentile(sorted(b_samples + [5.0, 6.0]), 50.0)
    assert a.value == pytest.approx(exact, rel=0.1)


def test_merge_both_small_stays_exact():
    a, b = StreamingQuantile(50.0), StreamingQuantile(50.0)
    a.record(1.0)
    a.record(2.0)
    b.record(3.0)
    a.merge(b)
    assert a.count == 3
    assert a.value == pytest.approx(2.0)


def test_merge_empty_other_is_noop():
    a = StreamingQuantile(50.0)
    for x in (1.0, 2.0, 3.0):
        a.record(x)
    a.merge(StreamingQuantile(50.0))
    assert a.count == 3


def test_merge_rejects_quantile_mismatch():
    with pytest.raises(ValueError, match="different quantiles"):
        StreamingQuantile(50.0).merge(StreamingQuantile(99.0))


def test_merged_digest_keeps_recording():
    a, b = StreamingQuantile(95.0), StreamingQuantile(95.0)
    first = _samples(7, 1000)
    second = _samples(8, 1000)
    tail = _samples(9, 1000)
    for x in first:
        a.record(x)
    for x in second:
        b.record(x)
    a.merge(b)
    for x in tail:
        a.record(x)
    exact = percentile(sorted(first + second + tail), 95.0)
    assert a.count == 3000
    assert a.value == pytest.approx(exact, rel=0.05)


# ----------------------------------------------------------------------
# LatencyRecorder.merge
# ----------------------------------------------------------------------
def test_exact_recorder_merge_is_exact():
    a, b = LatencyRecorder("a"), LatencyRecorder("b")
    a_samples = _samples(10, 500)
    b_samples = _samples(11, 500)
    a.extend(a_samples)
    b.extend(b_samples)
    a.merge(b)
    combined = sorted(a_samples + b_samples)
    assert a.count == 1000
    assert a.mean == pytest.approx(sum(combined) / 1000)
    assert a.max == max(combined)
    assert a.p99 == pytest.approx(percentile(combined, 99.0))


def test_streaming_recorder_merge_matches_exact_within_tolerance():
    a = LatencyRecorder("a", streaming=True)
    b = LatencyRecorder("b", streaming=True)
    a_samples = _samples(12, 2000)
    b_samples = _samples(13, 2000)
    a.extend(a_samples)
    b.extend(b_samples)
    a.merge(b)
    combined = sorted(a_samples + b_samples)
    assert a.count == 4000
    assert a.mean == pytest.approx(sum(combined) / 4000)
    for q in STREAMING_QUANTILES:
        assert a.percentile(q) == pytest.approx(
            percentile(combined, q), rel=0.15), q


def test_recorder_merge_rejects_mode_mismatch():
    with pytest.raises(ValueError, match="exact and streaming"):
        LatencyRecorder(streaming=True).merge(LatencyRecorder())


def test_recorder_merge_empty_other_is_noop():
    a = LatencyRecorder()
    a.extend([1.0, 2.0])
    a.merge(LatencyRecorder())
    assert a.count == 2
