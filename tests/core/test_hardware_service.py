"""Tests for the HardwareService facade (ganged pooled FPGAs)."""

import pytest

from repro.core import ConfigurableCloud, HardwareService
from repro.fpga import Image, ShellConfig
from repro.haas import Constraints
from repro.ltl import LtlConfig
from repro.net import TopologyConfig, idle


def make_service(components=2, pool=4):
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=8)
    fast_fail = ShellConfig(ltl=LtlConfig(max_consecutive_timeouts=3))
    client = cloud.add_server(100, enroll=False, shell_config=fast_fail)
    cloud.add_servers(list(range(pool)))
    service = HardwareService(cloud, "accel", Image("accel-v1", "r"),
                              Constraints(count=1),
                              components=components)
    cloud.run(until=1.0)  # deploy images
    return cloud, client, service


class TestHardwareService:
    def test_requests_round_robin_members(self):
        cloud, client, service = make_service()
        got = []
        service.set_handler(lambda p, n: got.append(p))
        service.attach_client(client)
        targets = [service.request(client, f"r{i}".encode(), 32)
                   for i in range(4)]
        cloud.run(until=cloud.env.now + 2e-3)
        assert sorted(got) == [b"r0", b"r1", b"r2", b"r3"]
        assert targets[0] != targets[1]
        assert targets[0] == targets[2]

    def test_request_without_attach_rejected(self):
        cloud, client, service = make_service()
        with pytest.raises(RuntimeError):
            service.request(client, b"x", 8)

    def test_images_deployed_on_members(self):
        cloud, _client, service = make_service()
        for host in service.hosts:
            assert cloud.shell(host).configuration.live_image.name == \
                "accel-v1"

    def test_ltl_failure_drives_haas_replacement(self):
        """The full loop: member dies silently -> client LTL timeouts ->
        HaaS revokes + replaces -> service keeps serving."""
        cloud, client, service = make_service()
        got = []
        service.set_handler(lambda p, n: got.append(p))
        service.attach_client(client)
        service.request(client, b"before", 32)
        cloud.run(until=cloud.env.now + 1e-3)
        assert got == [b"before"]

        victim = service.hosts[0]
        cloud.fabric.detach(victim)  # silent death: frames vanish
        # Drive requests until one lands on the dead member.
        for i in range(2):
            service.request(client, f"probe{i}".encode(), 32)
        cloud.run(until=cloud.env.now + 5e-3)  # detection + replacement

        assert service.failovers >= 1
        assert service.sm.stats.replacements >= 1
        assert victim not in service.hosts
        assert len(service.hosts) == 2

        got.clear()
        for i in range(4):
            service.request(client, f"after{i}".encode(), 32)
        cloud.run(until=cloud.env.now + 3e-3)
        assert sorted(got) == [b"after0", b"after1", b"after2",
                               b"after3"]

    def test_failover_reinstalls_handler_on_replacement(self):
        cloud, client, service = make_service()
        got = []
        service.set_handler(lambda p, n: got.append(p))
        service.attach_client(client)
        victim = service.hosts[0]
        cloud.fabric.detach(victim)
        for i in range(2):
            service.request(client, b"probe", 32)
        cloud.run(until=cloud.env.now + 5e-3)
        replacement = [h for h in service.hosts if h != victim]
        assert replacement
        # New member answers requests (handler installed).
        got.clear()
        for _ in range(2):
            service.request(client, b"post-failover", 32)
        cloud.run(until=cloud.env.now + 3e-3)
        assert b"post-failover" in got
