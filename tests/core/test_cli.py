"""Tests for the ``python -m repro`` experiment CLI."""

import io
from contextlib import redirect_stdout

import pytest

from repro.__main__ import main


class TestCli:
    def test_no_args_lists_registry(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main([])
        output = buffer.getvalue()
        assert code == 0
        assert "E1" in output and "E10" in output
        assert "Fig. 10" in output

    def test_unknown_id_errors(self, capsys):
        code = main(["E99"])
        assert code == 2

    def test_runs_power_experiment(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(["E10"])
        output = buffer.getvalue()
        assert code == 0
        assert "power_virus_w" in output
        assert "within_tdp: True" in output

    def test_runs_area_experiment_rows(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(["E1"])
        output = buffer.getvalue()
        assert code == 0
        assert "Total Area Used" in output
        assert "131350" in output or "131,350" in output
