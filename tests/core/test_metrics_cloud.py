"""Tests for metrics helpers, Server, and the ConfigurableCloud facade."""

import pytest

from repro.core import ConfigurableCloud, LatencyRecorder, normalize
from repro.core.metrics import ThroughputMeter
from repro.net import TopologyConfig, idle


class TestLatencyRecorder:
    def test_percentiles(self):
        recorder = LatencyRecorder()
        recorder.extend([i / 1000 for i in range(1, 101)])
        assert recorder.p50 == pytest.approx(0.0505, rel=0.01)
        assert recorder.p99 <= recorder.p999 <= recorder.max

    def test_mean(self):
        recorder = LatencyRecorder()
        recorder.extend([1.0, 2.0, 3.0])
        assert recorder.mean == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        assert set(recorder.summary()) == {
            "count", "mean", "p50", "p95", "p99", "p999", "max"}


class TestThroughputMeter:
    def test_rate(self):
        meter = ThroughputMeter(started_at=0.0)
        for t in (1.0, 2.0, 3.0, 4.0):
            meter.record(t)
        assert meter.rate() == pytest.approx(1.0)

    def test_zero_elapsed(self):
        assert ThroughputMeter().rate() == 0.0


class TestNormalize:
    def test_divides(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)


class TestConfigurableCloud:
    def _cloud(self):
        return ConfigurableCloud(
            topology=TopologyConfig(background=idle()), seed=3)

    def test_add_server_and_lookup(self):
        cloud = self._cloud()
        server = cloud.add_server(0)
        assert cloud.server(0) is server
        assert cloud.shell(0) is server.shell
        assert server.fpga is server.shell

    def test_duplicate_server_rejected(self):
        cloud = self._cloud()
        cloud.add_server(0)
        with pytest.raises(ValueError):
            cloud.add_server(0)

    def test_add_servers_bulk(self):
        cloud = self._cloud()
        servers = cloud.add_servers([0, 1, 2])
        assert len(servers) == 3
        assert cloud.resource_manager.pool_size == 3

    def test_enroll_false_keeps_out_of_pool(self):
        cloud = self._cloud()
        cloud.add_server(0, enroll=False)
        assert cloud.resource_manager.pool_size == 0

    def test_host_to_host_traffic_through_fpgas(self):
        cloud = self._cloud()
        a = cloud.add_server(0)
        b = cloud.add_server(1)
        got = []
        b.on_packet(lambda p: got.append(p.payload))
        a.send_to(1, b"app data")
        cloud.run(until=1e-3)
        assert got == [b"app data"]
        assert a.packets_sent == 1
        assert b.packets_received == 1

    def test_measure_ltl_rtt_l0(self):
        cloud = self._cloud()
        cloud.add_server(0)
        cloud.add_server(1)
        rtts = cloud.measure_ltl_rtt(0, 1, messages=20)
        assert len(rtts) == 20
        mean = sum(rtts) / len(rtts)
        assert mean == pytest.approx(2.88e-6, rel=0.03)

    def test_measure_rtt_l2_slower_than_l0(self):
        cloud = self._cloud()
        cloud.add_servers([0, 1, 2, 100_000])
        l0 = cloud.measure_ltl_rtt(0, 1, messages=10)
        l2 = cloud.measure_ltl_rtt(2, 100_000, messages=10)
        assert min(l2) > max(l0)

    def test_cores_resource(self):
        cloud = self._cloud()
        server = cloud.add_server(0, num_cores=4)
        assert server.cores.capacity == 4


class TestLatencyRecorderCachedView:
    def test_queries_match_fresh_sort_after_interleaved_updates(self):
        import random as _random
        from repro.sim.randomness import percentile as exact

        rng = _random.Random(3)
        recorder = LatencyRecorder()
        recorder.extend(rng.random() for _ in range(500))
        recorder.summary()            # populate the cached sorted view
        recorder.record(2.5)          # must invalidate it
        recorder.extend(rng.random() for _ in range(100))
        view = sorted(recorder.samples)
        for q in (50, 95, 99, 99.9):
            assert recorder.percentile(q) == exact(view, q)
        summary = recorder.summary()
        assert summary["max"] == max(recorder.samples)
        assert summary["count"] == 601.0


class TestStreamingRecorder:
    def test_tracked_quantiles_close_to_exact(self):
        import random as _random

        rng = _random.Random(11)
        data = [rng.expovariate(1.0) for _ in range(20_000)]
        streaming = LatencyRecorder(streaming=True)
        exact = LatencyRecorder()
        for x in data:
            streaming.record(x)
            exact.record(x)
        assert streaming.p50 == pytest.approx(exact.p50, rel=0.05)
        assert streaming.p95 == pytest.approx(exact.p95, rel=0.05)
        assert streaming.p99 == pytest.approx(exact.p99, rel=0.10)
        assert streaming.p999 == pytest.approx(exact.p999, rel=0.30)
        assert streaming.max == exact.max
        assert streaming.mean == pytest.approx(exact.mean)
        # Constant memory: streaming mode retains no samples.
        assert streaming.samples == []

    def test_untracked_quantile_raises(self):
        recorder = LatencyRecorder(streaming=True)
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(75)

    def test_summary_keys_match_exact_mode(self):
        streaming = LatencyRecorder(streaming=True)
        exact = LatencyRecorder()
        for x in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            streaming.record(x)
            exact.record(x)
        assert set(streaming.summary()) == set(exact.summary())


class TestThroughputMeterWindow:
    def test_first_record_opens_window(self):
        meter = ThroughputMeter()
        assert meter.rate() == 0.0
        # Regression: a meter created mid-simulation used to measure from
        # t=0, silently inflating the window and under-reporting rate.
        meter.record(100.0)
        meter.record(101.0)
        meter.record(102.0)
        assert meter.started_at == 100.0
        assert meter.rate() == pytest.approx(3 / 2.0)

    def test_reset_rebases_window(self):
        meter = ThroughputMeter(started_at=0.0)
        meter.record(1.0)
        meter.reset(10.0)
        assert meter.completions == 0
        assert meter.rate() == 0.0
        meter.record(11.0)
        meter.record(12.0)
        assert meter.rate() == pytest.approx(1.0)
        assert meter.rate(now=14.0) == pytest.approx(0.5)


def test_cloud_uses_caller_supplied_env():
    """Environment defines __len__, so an empty env is falsy — the cloud
    must None-check rather than `env or ...`, which silently discarded
    a caller's env (and with it any scheduler/backend choice)."""
    from repro.sim import Environment
    env = Environment(scheduler="heapq")
    cloud = ConfigurableCloud(env=env, seed=3)
    assert cloud.env is env
