"""Tests for the Server abstraction (host behind the bump-in-the-wire)."""

from repro.core import ConfigurableCloud
from repro.net import TopologyConfig, idle


def make_pair():
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=2)
    return cloud, cloud.add_server(0), cloud.add_server(1)


class TestServer:
    def test_multiple_packet_handlers_all_fire(self):
        cloud, a, b = make_pair()
        first, second = [], []
        b.on_packet(lambda p: first.append(p.payload))
        b.on_packet(lambda p: second.append(p.payload))
        a.send_to(1, b"fan-out")
        cloud.run(until=1e-3)
        assert first == [b"fan-out"] and second == [b"fan-out"]

    def test_counters(self):
        cloud, a, b = make_pair()
        b.on_packet(lambda p: None)
        for _ in range(3):
            a.send_to(1, b"x")
        cloud.run(until=1e-3)
        assert a.packets_sent == 3
        assert b.packets_received == 3
        assert a.packets_received == 0

    def test_send_to_sets_ports(self):
        cloud, a, b = make_pair()
        got = []
        b.on_packet(got.append)
        a.send_to(1, b"x", src_port=1234, dst_port=5678)
        cloud.run(until=1e-3)
        assert got[0].udp.src_port == 1234
        assert got[0].udp.dst_port == 5678

    def test_payload_bytes_override(self):
        cloud, a, b = make_pair()
        got = []
        b.on_packet(got.append)
        a.send_to(1, {"opaque": 1}, payload_bytes=900)
        cloud.run(until=1e-3)
        assert got[0].payload_bytes == 900

    def test_traffic_crosses_both_bridges(self):
        cloud, a, b = make_pair()
        b.on_packet(lambda p: None)
        a.send_to(1, b"x")
        cloud.run(until=1e-3)
        assert a.shell.bridge.stats.nic_to_tor == 1
        assert b.shell.bridge.stats.tor_to_nic == 1
