"""Tests for static and elastic credit pools."""

import pytest

from repro.router.credits import (
    CreditError,
    ElasticCreditPool,
    StaticCreditPool,
    make_credit_pool,
)


class TestStaticCreditPool:
    def test_even_split(self):
        pool = StaticCreditPool(total_credits=8, num_vcs=2)
        assert pool.available(0) == 4
        assert pool.available(1) == 4

    def test_uneven_split_distributes_remainder(self):
        pool = StaticCreditPool(total_credits=5, num_vcs=2)
        assert pool.available(0) + pool.available(1) == 5

    def test_vc_cannot_exceed_its_share(self):
        pool = StaticCreditPool(total_credits=4, num_vcs=2)
        assert pool.try_acquire(0)
        assert pool.try_acquire(0)
        assert not pool.try_acquire(0)   # VC 0 exhausted
        assert pool.try_acquire(1)       # VC 1 unaffected

    def test_release_restores(self):
        pool = StaticCreditPool(total_credits=2, num_vcs=2)
        assert pool.try_acquire(0)
        assert not pool.try_acquire(0)
        pool.release(0)
        assert pool.try_acquire(0)

    def test_release_idle_vc_raises(self):
        pool = StaticCreditPool(total_credits=2, num_vcs=2)
        with pytest.raises(CreditError):
            pool.release(0)

    def test_requires_credit_per_vc(self):
        with pytest.raises(ValueError):
            StaticCreditPool(total_credits=1, num_vcs=2)

    def test_in_use_accounting(self):
        pool = StaticCreditPool(total_credits=4, num_vcs=2)
        pool.try_acquire(0)
        pool.try_acquire(1)
        assert pool.in_use == 2


class TestElasticCreditPool:
    def test_vc_can_borrow_beyond_reservation(self):
        pool = ElasticCreditPool(total_credits=8, num_vcs=2,
                                 reserved_per_vc=1)
        # VC 0 can take its 1 reserved + all 6 shared = 7.
        taken = 0
        while pool.try_acquire(0):
            taken += 1
        assert taken == 7

    def test_reservation_protects_other_vc(self):
        pool = ElasticCreditPool(total_credits=8, num_vcs=2,
                                 reserved_per_vc=1)
        while pool.try_acquire(0):
            pass
        # VC 1's reserved credit is still there: no starvation.
        assert pool.try_acquire(1)
        assert not pool.try_acquire(1)

    def test_release_refills_reserved_before_shared(self):
        """Releases restore the VC's deadlock-avoidance reserve first;
        only then do they repay borrowed shared credits."""
        pool = ElasticCreditPool(total_credits=6, num_vcs=2,
                                 reserved_per_vc=1)
        for _ in range(5):  # 1 reserved + 4 shared
            assert pool.try_acquire(0)
        assert pool.shared_in_use == 4
        pool.release(0)
        # Reserved refilled first: the shared pool is still fully lent out.
        assert pool.shared_in_use == 4
        assert pool.available(0) == 1
        pool.release(0)
        # Reserve already full, so this one repays the shared pool.
        assert pool.shared_in_use == 3
        assert pool.try_acquire(1)  # reserved
        assert pool.try_acquire(1)  # shared, returned by VC 0

    def test_release_ordering_under_churn(self):
        """Reserved-vs-borrowed accounting stays consistent while VCs
        acquire and release in interleaved bursts."""
        pool = ElasticCreditPool(total_credits=12, num_vcs=3,
                                 reserved_per_vc=2)
        held = {vc: 0 for vc in range(3)}
        # Deterministic churn: repeated waves of acquire-most / free-some.
        for wave in range(40):
            for vc in range(3):
                want = (wave + vc) % 5
                while held[vc] < want and pool.try_acquire(vc):
                    held[vc] += 1
            for vc in range(3):
                drop = (wave * 7 + vc) % 3
                for _ in range(min(drop, held[vc])):
                    pool.release(vc)
                    held[vc] -= 1
            assert pool.in_use == sum(held.values())
            assert 0 <= pool.shared_in_use <= 6
            assert pool.shared_in_use == sum(pool._borrowed)
            for vc in range(3):
                assert pool._reserved_used[vc] + pool._borrowed[vc] \
                    == held[vc]
                # Deadlock avoidance: any VC with free reserve can always
                # acquire, no matter how lent-out the shared pool is.
                if pool._reserved_used[vc] < 2:
                    assert pool.try_acquire(vc)
                    pool.release(vc)
        # Drain everything; the pool must return to pristine state.
        for vc in range(3):
            while held[vc]:
                pool.release(vc)
                held[vc] -= 1
        assert pool.in_use == 0
        assert pool.shared_in_use == 0
        assert all(pool.available(vc) == 2 + 6 for vc in range(3))

    def test_release_idle_raises(self):
        pool = ElasticCreditPool(total_credits=4, num_vcs=2)
        with pytest.raises(CreditError):
            pool.release(1)

    def test_reserved_minimum_required(self):
        with pytest.raises(ValueError):
            ElasticCreditPool(total_credits=1, num_vcs=2)
        with pytest.raises(ValueError):
            ElasticCreditPool(total_credits=4, num_vcs=2,
                              reserved_per_vc=0)

    def test_elastic_beats_static_for_bursty_single_vc(self):
        """The paper's design point: with the same total buffering, an
        elastic pool gives one busy VC far more credits than a static
        split."""
        total, vcs = 16, 4
        static = StaticCreditPool(total, vcs)
        elastic = ElasticCreditPool(total, vcs, reserved_per_vc=1)
        static_burst = 0
        while static.try_acquire(0):
            static_burst += 1
        elastic_burst = 0
        while elastic.try_acquire(0):
            elastic_burst += 1
        assert static_burst == 4
        assert elastic_burst == 13
        assert elastic_burst > 3 * static_burst


class TestFactory:
    def test_factory_static(self):
        assert isinstance(make_credit_pool("static", 8, 2),
                          StaticCreditPool)

    def test_factory_elastic(self):
        assert isinstance(make_credit_pool("elastic", 8, 2),
                          ElasticCreditPool)

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            make_credit_pool("magic", 8, 2)
