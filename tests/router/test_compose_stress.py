"""Stress tests for composed ER networks (rings/meshes under load)."""

import random

from repro.router import MeshNetwork, RingNetwork
from repro.sim import Environment


class TestRingUnderLoad:
    def test_all_to_all_burst_no_loss(self):
        env = Environment()
        ring = RingNetwork(env, 6, credits_per_port=8, num_vcs=2)
        got = []
        for i in range(6):
            ring.set_local_handler(i, lambda idx, pl: got.append(
                (idx, pl)))
        expected = 0
        rng = random.Random(0)
        for _ in range(5):
            for src in range(6):
                dst = rng.randrange(6)
                ring.send(src, dst, (src, dst, expected), 64,
                          vc=rng.randrange(2))
                expected += 1
        env.run()
        assert len(got) == expected
        for idx, (src, dst, _seq) in got:
            assert idx == dst

    def test_hot_spot_destination(self):
        """Everyone hammers node 0: all messages still land."""
        env = Environment()
        ring = RingNetwork(env, 5, credits_per_port=8, num_vcs=2)
        got = []
        ring.set_local_handler(0, lambda idx, pl: got.append(pl))
        for src in range(1, 5):
            for i in range(10):
                ring.send(src, 0, (src, i), 96)
        env.run()
        assert len(got) == 40

    def test_per_flow_order_preserved_across_hops(self):
        env = Environment()
        ring = RingNetwork(env, 6, credits_per_port=8, num_vcs=2)
        got = []
        ring.set_local_handler(3, lambda idx, pl: got.append(pl))
        for i in range(15):
            ring.send(0, 3, i, 64, vc=0)
        env.run()
        assert got == list(range(15))


class TestMeshUnderLoad:
    def test_transpose_traffic_pattern(self):
        """(x,y) -> (y,x): a classic adversarial pattern for DOR."""
        env = Environment()
        mesh = MeshNetwork(env, 3, 3, credits_per_port=8, num_vcs=2)
        got = []
        for i in range(9):
            mesh.set_local_handler(i, lambda idx, pl: got.append(
                (idx, pl)))
        sent = 0
        for x in range(3):
            for y in range(3):
                src = mesh.index(x, y)
                dst = mesh.index(y, x)
                if src != dst:
                    mesh.send(src, dst, (src, dst), 64)
                    sent += 1
        env.run()
        assert len(got) == sent
        for idx, (_src, dst) in got:
            assert idx == dst

    def test_long_chain_mesh(self):
        """A 1xN mesh behaves like a pipeline with many hops."""
        env = Environment()
        mesh = MeshNetwork(env, 6, 1, credits_per_port=8, num_vcs=2)
        got = []
        mesh.set_local_handler(5, lambda idx, pl: got.append(pl))
        for i in range(8):
            mesh.send(0, 5, i, 64)
        env.run()
        assert got == list(range(8))
