"""Tests for the Elastic Router crossbar."""

import pytest

from repro.router import ElasticRouter, packetize
from repro.router.flit import Message
from repro.sim import Environment


def make_router(env, **kwargs):
    defaults = dict(num_ports=4, num_vcs=2, credits_per_port=8)
    defaults.update(kwargs)
    return ElasticRouter(env, **defaults)


class TestPacketize:
    def test_single_flit_message(self):
        msg = Message(src_port=0, dst_port=1, vc=0, payload="x",
                      length_bytes=16)
        flits = packetize(msg, flit_bytes=32)
        assert len(flits) == 1
        assert flits[0].is_head and flits[0].is_tail

    def test_multi_flit_message(self):
        msg = Message(src_port=0, dst_port=1, vc=0, payload="x",
                      length_bytes=100)
        flits = packetize(msg, flit_bytes=32)
        assert len(flits) == 4
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Message(src_port=0, dst_port=1, vc=0, payload="", length_bytes=0)

    def test_bad_flit_size_rejected(self):
        msg = Message(src_port=0, dst_port=1, vc=0, payload="x",
                      length_bytes=8)
        with pytest.raises(ValueError):
            packetize(msg, flit_bytes=0)


class TestDelivery:
    def test_point_to_point(self):
        env = Environment()
        router = make_router(env)
        got = []
        router.set_endpoint(2, lambda m: got.append(m.payload))
        router.send(0, 2, "hello", 64)
        env.run()
        assert got == ["hello"]

    def test_u_turn_supported(self):
        env = Environment()
        router = make_router(env)
        got = []
        router.set_endpoint(1, lambda m: got.append(m.payload))
        router.send(1, 1, "loop", 32)
        env.run()
        assert got == ["loop"]

    def test_no_message_loss_under_load(self):
        env = Environment()
        router = make_router(env)
        got = []
        for p in range(4):
            router.set_endpoint(p, lambda m, p=p: got.append(m))
        count = 0
        for src in range(4):
            for dst in range(4):
                for i in range(5):
                    router.inject(src, dst, f"{src}->{dst}#{i}", 96,
                                  vc=i % 2)
                    count += 1
        env.run()
        assert len(got) == count
        assert router.stats.messages_delivered == count

    def test_per_vc_ordering_preserved(self):
        """Messages on the same (src, dst, vc) must arrive in order."""
        env = Environment()
        router = make_router(env)
        got = []
        router.set_endpoint(3, lambda m: got.append(m.payload))
        for i in range(10):
            router.inject(1, 3, i, 64, vc=0)
        env.run()
        assert got == list(range(10))

    def test_no_interleaving_within_vc(self):
        """Wormhole: a multi-flit message owns its (output, VC) until the
        tail; the router itself raises if messages interleave."""
        env = Environment()
        router = make_router(env, credits_per_port=16)
        got = []
        router.set_endpoint(0, lambda m: got.append(m.payload))
        # Two big messages race from different inputs to the same output/VC.
        router.inject(1, 0, "from-1", 320, vc=0)
        router.inject(2, 0, "from-2", 320, vc=0)
        env.run()
        assert sorted(got) == ["from-1", "from-2"]

    def test_different_vcs_share_physical_port(self):
        env = Environment()
        router = make_router(env)
        got = []
        router.set_endpoint(0, lambda m: got.append((m.vc, m.payload)))
        router.inject(1, 0, "vc0", 160, vc=0)
        router.inject(2, 0, "vc1", 160, vc=1)
        env.run()
        assert sorted(got) == [(0, "vc0"), (1, "vc1")]

    def test_send_event_completes_when_buffered(self):
        env = Environment()
        router = make_router(env)
        router.set_endpoint(1, lambda m: None)
        done_at = []

        def sender(env):
            yield router.send(0, 1, "payload", 64)
            done_at.append(env.now)

        env.process(sender(env))
        env.run()
        assert done_at and done_at[0] > 0

    def test_message_latency_scales_with_size(self):
        def deliver_time(length):
            env = Environment()
            router = make_router(env, credits_per_port=64)
            times = []
            router.set_endpoint(1, lambda m: times.append(env.now))
            router.inject(0, 1, "x", length)
            env.run()
            return times[0]

        assert deliver_time(640) > deliver_time(32)

    def test_invalid_port_rejected(self):
        env = Environment()
        router = make_router(env)
        with pytest.raises(ValueError):
            router.send(0, 9, "x", 32)
        with pytest.raises(ValueError):
            router.send(-1, 0, "x", 32)

    def test_invalid_vc_rejected(self):
        env = Environment()
        router = make_router(env)
        with pytest.raises(ValueError):
            router.send(0, 1, "x", 32, vc=5)


class TestFairnessAndStats:
    def test_round_robin_fairness(self):
        """Three inputs hammering one output each get served."""
        env = Environment()
        router = make_router(env, credits_per_port=32)
        got = {1: 0, 2: 0, 3: 0}
        router.set_endpoint(0, lambda m: got.__setitem__(
            m.src_port, got[m.src_port] + 1))
        for i in range(20):
            for src in (1, 2, 3):
                router.inject(src, 0, i, 32, vc=0)
        env.run()
        assert all(v == 20 for v in got.values())

    def test_stats_track_flits(self):
        env = Environment()
        router = make_router(env)
        router.set_endpoint(1, lambda m: None)
        router.inject(0, 1, "x", 96)  # 3 flits at 32 B
        env.run()
        assert router.stats.flits_switched == 3
        assert router.stats.messages_injected == 1
        assert router.stats.messages_delivered == 1

    def test_peak_occupancy_recorded(self):
        env = Environment()
        router = make_router(env)
        router.set_endpoint(1, lambda m: None)
        for _ in range(4):
            router.inject(0, 1, "x", 128)
        env.run()
        assert router.stats.peak_buffer_occupancy > 0

    def test_injection_stalls_counted_when_credits_exhausted(self):
        env = Environment()
        # Tiny credit pool and three inputs converging on one output:
        # buffers back up behind the contended output, exhausting credits.
        router = make_router(env, credits_per_port=2, num_vcs=2)
        router.set_endpoint(3, lambda m: None)
        for _ in range(10):
            for src in (0, 1, 2):
                router.inject(src, 3, "x", 256, vc=0)
        env.run()
        assert router.stats.injection_stall_cycles > 0
        assert router.stats.messages_delivered == 30


class TestCreditPolicyAblation:
    def _run(self, policy, num_messages=30):
        """One hot VC on a contended output: buffering depth matters."""
        env = Environment()
        router = make_router(env, credit_policy=policy,
                             credits_per_port=8, num_vcs=4)
        router.set_endpoint(3, lambda m: None)
        # Competing senders keep output 3 busy so input 0's flits queue.
        for _ in range(num_messages):
            router.inject(1, 3, "bg", 128, vc=1)
            router.inject(2, 3, "bg", 128, vc=2)
        done_times = []

        def hot_sender(env):
            for _ in range(num_messages):
                yield router.send(0, 3, "hot", 128, vc=0)
                done_times.append(env.now)

        env.process(hot_sender(env))
        env.run()
        return done_times, router.stats

    def test_elastic_absorbs_hot_vc_burst_better(self):
        """With equal total buffering, the elastic pool lets the hot VC
        borrow idle VCs' credits: its sender stalls less and hands off
        its burst sooner (the §V-B design rationale)."""
        static_done, static_stats = self._run("static")
        elastic_done, elastic_stats = self._run("elastic")
        assert elastic_stats.injection_stall_cycles < \
            static_stats.injection_stall_cycles
        assert sum(elastic_done) < sum(static_done)


class TestDeadlineDropAbandonsSpan:
    def test_expired_message_span_is_abandoned(self):
        from repro.trace import TraceRecorder
        env = Environment()
        router = make_router(env)
        recorder = TraceRecorder()
        delivered = []
        router.set_endpoint(1, delivered.append)
        ctx = recorder.start(env.now)
        # A deadline already in the past: the message traverses the
        # crossbar but must be dropped (and its span closed) at output.
        router.inject(0, 1, "late", 64, deadline=-1.0, trace=ctx)
        env.run()
        assert delivered == []
        assert router.stats.deadline_drops == 1
        assert recorder.abandoned == 1
        assert ctx.closed
