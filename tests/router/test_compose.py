"""Tests for multi-ER composition (rings and meshes)."""

import pytest

from repro.router import MeshNetwork, RingNetwork
from repro.sim import Environment


class TestRing:
    def _ring(self, n=6):
        env = Environment()
        ring = RingNetwork(env, n, credits_per_port=8, num_vcs=2)
        got = []
        for i in range(n):
            ring.set_local_handler(i, lambda idx, pl: got.append((idx, pl)))
        return env, ring, got

    def test_neighbor_delivery(self):
        env, ring, got = self._ring()
        ring.send(0, 1, "next", 32)
        env.run()
        assert got == [(1, "next")]

    def test_delivery_around_the_ring(self):
        env, ring, got = self._ring()
        ring.send(0, 3, "far", 64)
        env.run()
        assert got == [(3, "far")]

    def test_wraparound_short_way(self):
        env, ring, got = self._ring()
        ring.send(5, 0, "wrap", 32)
        env.run()
        assert got == [(0, "wrap")]

    def test_self_send(self):
        env, ring, got = self._ring()
        ring.send(2, 2, "me", 32)
        env.run()
        assert got == [(2, "me")]

    def test_shortest_direction_choice(self):
        ring = RingNetwork(Environment(), 6)
        assert ring.next_hop_port(0, 1) == RingNetwork.CW
        assert ring.next_hop_port(0, 5) == RingNetwork.CCW
        assert ring.next_hop_port(0, 2) == RingNetwork.CW
        assert ring.next_hop_port(0, 4) == RingNetwork.CCW

    def test_all_pairs_delivered(self):
        env, ring, got = self._ring(5)
        expected = 0
        for src in range(5):
            for dst in range(5):
                if src != dst:
                    ring.send(src, dst, (src, dst), 32)
                    expected += 1
        env.run()
        assert len(got) == expected
        for idx, (src, dst) in got:
            assert idx == dst

    def test_too_small_ring_rejected(self):
        with pytest.raises(ValueError):
            RingNetwork(Environment(), 1)


class TestMesh:
    def _mesh(self, w=3, h=3):
        env = Environment()
        mesh = MeshNetwork(env, w, h, credits_per_port=8, num_vcs=2)
        got = []
        for i in range(w * h):
            mesh.set_local_handler(i, lambda idx, pl: got.append((idx, pl)))
        return env, mesh, got

    def test_corner_to_corner(self):
        env, mesh, got = self._mesh()
        mesh.send(0, 8, "diag", 64)
        env.run()
        assert got == [(8, "diag")]

    def test_dimension_order_routing(self):
        mesh = MeshNetwork(Environment(), 3, 3)
        # From (0,0) to (2,1): X first.
        assert mesh.next_hop_port(0, mesh.index(2, 1)) == MeshNetwork.EAST
        # From (2,0) to (2,2): Y only.
        assert mesh.next_hop_port(mesh.index(2, 0),
                                  mesh.index(2, 2)) == MeshNetwork.NORTH

    def test_coords_roundtrip(self):
        mesh = MeshNetwork(Environment(), 4, 3)
        for i in range(12):
            x, y = mesh.coords(i)
            assert mesh.index(x, y) == i

    def test_all_pairs_small_mesh(self):
        env, mesh, got = self._mesh(2, 2)
        expected = 0
        for src in range(4):
            for dst in range(4):
                if src != dst:
                    mesh.send(src, dst, (src, dst), 32)
                    expected += 1
        env.run()
        assert len(got) == expected

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshNetwork(Environment(), 0, 3)
