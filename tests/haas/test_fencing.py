"""Lease-epoch fencing: stale holders must be rejected at the FPGA."""

from repro.core import ConfigurableCloud
from repro.fpga import Image, ShellConfig
from repro.haas import Constraints, ResourceManager
from repro.net import TopologyConfig, idle

IMAGE = Image(name="svc", role_name="svc-role")


def make_cloud(*indices, lease=60.0, sweep=0.5, quarantine=2.0):
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=1)
    cloud._rm = ResourceManager(cloud.env, cloud.fabric.topology,
                                lease_duration=lease, sweep_period=sweep,
                                quarantine_seconds=quarantine)
    for i in indices:
        cloud.add_server(i, shell_config=ShellConfig(with_ltl=False))
    return cloud


class TestFpgaManagerFence:
    def test_install_is_monotonic(self):
        cloud = make_cloud(0)
        fm = cloud.resource_manager.manager(0)
        fm.install_fence(5)
        fm.install_fence(3)   # a lower fence must never regress it
        assert fm.fence == 5

    def test_current_fence_admitted_stale_rejected(self):
        cloud = make_cloud(0)
        fm = cloud.resource_manager.manager(0)
        fm.install_fence(5)
        assert fm.admit_traffic(5)
        assert fm.admit_traffic(6)
        assert not fm.admit_traffic(4)
        assert fm.fence_rejections == 1

    def test_unfenced_traffic_admitted(self):
        # fence=None marks a caller predating the fencing scheme (or a
        # non-leased probe); it is let through, not rejected.
        cloud = make_cloud(0)
        fm = cloud.resource_manager.manager(0)
        fm.install_fence(5)
        assert fm.admit_traffic(None)
        assert fm.fence_rejections == 0

    def test_stale_configure_is_a_recorded_noop(self):
        cloud = make_cloud(0)
        env, rm = cloud.env, cloud.resource_manager
        env.run(until=12.0)  # initial golden-image configure
        fm = rm.manager(0)
        fm.install_fence(5)
        before = fm.configurations
        env.process(fm.configure(IMAGE, fence=4), name="stale-config")
        env.run(until=env.now + 5.0)
        assert fm.configurations == before
        assert fm.fence_rejections == 1
        rejects = [r for r in rm.journal.records
                   if r.kind == "fence_reject"]
        assert len(rejects) == 1
        assert rejects[0].data["op"] == "configure"


class TestRmFenceDiscipline:
    def test_grants_carry_strictly_increasing_fences(self):
        cloud = make_cloud(0, 1, 2)
        rm = cloud.resource_manager
        leases = [rm.acquire(f"svc-{i}", Constraints(count=1))
                  for i in range(3)]
        fences = [lease.fence for lease in leases]
        assert fences == sorted(fences)
        assert len(set(fences)) == 3

    def test_grant_installs_fence_on_every_host(self):
        cloud = make_cloud(0, 1)
        rm = cloud.resource_manager
        lease = rm.acquire("svc", Constraints(count=2))
        for host in lease.hosts:
            assert rm.manager(host).fence >= lease.fence

    def test_release_raises_barrier_above_old_lease(self):
        cloud = make_cloud(0)
        rm = cloud.resource_manager
        old = rm.acquire("svc", Constraints(count=1))
        host = old.hosts[0]
        rm.release(old)
        fm = rm.manager(host)
        # The freed host's fence now supersedes the released lease: a
        # holder that somehow kept the old grant is already fenced off,
        # even before anyone else is granted the host.
        assert fm.fence > old.fence
        assert not fm.admit_traffic(old.fence)

    def test_next_holder_outranks_evicted_one(self):
        cloud = make_cloud(0)
        env, rm = cloud.env, cloud.resource_manager
        env.run(until=12.0)
        old = rm.acquire("svc-a", Constraints(count=1))
        host = old.hosts[0]
        rm.manager(host).mark_failed("flap", hard=False)  # revokes old
        # Soft failure: the FM monitor power-cycles the board (~10 s)
        # and the quarantine lapses, making the host leasable again.
        env.run(until=env.now + 30.0)
        new = rm.acquire("svc-b", Constraints(count=1))
        assert new.hosts == [host]
        fm = rm.manager(host)
        assert not fm.admit_traffic(old.fence)   # split-brain defense
        assert fm.admit_traffic(new.fence)
