"""Tests for the HaaS control plane: constraints, RM, SM, FM."""

import pytest

from repro.core import ConfigurableCloud
from repro.fpga import Image
from repro.haas import (
    AllocationError,
    Constraints,
    FpgaHealth,
    FpgaManager,
    LeaseState,
    Locality,
    ResourceManager,
    ServiceManager,
    select_hosts,
)
from repro.net import TopologyConfig, idle


def make_cloud(*indices):
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=1)
    for i in indices:
        cloud.add_server(i)
    return cloud


class TestConstraints:
    def test_count_positive(self):
        with pytest.raises(ValueError):
            Constraints(count=0)

    def test_select_any(self):
        cloud = make_cloud(0, 1, 30, 960)
        topo = cloud.fabric.topology
        hosts = select_hosts(topo, [0, 1, 30, 960], Constraints(count=3))
        assert hosts is not None and len(hosts) == 3

    def test_select_same_tor(self):
        cloud = make_cloud()
        topo = cloud.fabric.topology
        hosts = select_hosts(topo, [0, 1, 30, 960],
                             Constraints(count=2,
                                         locality=Locality.SAME_TOR))
        assert hosts == [0, 1]

    def test_select_same_pod(self):
        cloud = make_cloud()
        topo = cloud.fabric.topology
        hosts = select_hosts(topo, [0, 30, 960, 961],
                             Constraints(count=2,
                                         locality=Locality.SAME_POD))
        assert hosts in ([0, 30], [960, 961])

    def test_infeasible_returns_none(self):
        cloud = make_cloud()
        topo = cloud.fabric.topology
        assert select_hosts(topo, [0, 960],
                            Constraints(count=2,
                                        locality=Locality.SAME_TOR)) is None

    def test_exclusions_respected(self):
        cloud = make_cloud()
        topo = cloud.fabric.topology
        hosts = select_hosts(
            topo, [0, 1, 2],
            Constraints(count=2, exclude_hosts=frozenset({1})))
        assert hosts == [0, 2]


class TestResourceManager:
    def test_register_and_pool_size(self):
        cloud = make_cloud(0, 1, 2)
        rm = cloud.resource_manager
        assert rm.pool_size == 3
        assert sorted(rm.free_hosts()) == [0, 1, 2]

    def test_double_register_rejected(self):
        cloud = make_cloud(0)
        rm = cloud.resource_manager
        with pytest.raises(ValueError):
            rm.register(FpgaManager(cloud.env, cloud.shell(0)))

    def test_acquire_allocates(self):
        cloud = make_cloud(0, 1, 2)
        rm = cloud.resource_manager
        lease = rm.acquire("svc", Constraints(count=2))
        assert len(lease.hosts) == 2
        assert rm.allocated_count == 2
        assert len(rm.free_hosts()) == 1

    def test_acquire_infeasible_raises(self):
        cloud = make_cloud(0)
        rm = cloud.resource_manager
        with pytest.raises(AllocationError):
            rm.acquire("svc", Constraints(count=2))
        assert rm.stats.failed_acquires == 1

    def test_release_returns_to_pool(self):
        cloud = make_cloud(0, 1)
        rm = cloud.resource_manager
        lease = rm.acquire("svc", Constraints(count=2))
        rm.release(lease)
        assert lease.state is LeaseState.RELEASED
        assert len(rm.free_hosts()) == 2

    def test_failed_node_revokes_lease(self):
        cloud = make_cloud(0, 1, 2)
        rm = cloud.resource_manager
        revoked = []
        lease = rm.acquire("svc", Constraints(count=2),
                           on_revoked=lambda l, s: revoked.append(l))
        failed_host = lease.hosts[0]
        rm.manager(failed_host).mark_failed()
        assert revoked == [lease]
        assert lease.state is LeaseState.REVOKED
        assert failed_host not in rm.free_hosts()

    def test_lease_expiry_sweeps(self):
        cloud = make_cloud(0, 1)
        rm = cloud.resource_manager
        rm.lease_duration = 100.0
        expired = []
        rm.acquire("svc", Constraints(count=1),
                   on_revoked=lambda l, s: expired.append(l))
        cloud.run(until=200.0)
        assert len(expired) == 1
        assert rm.stats.expirations == 1
        assert len(rm.free_hosts()) == 2

    def test_renew_extends_lease(self):
        cloud = make_cloud(0, 1)
        rm = cloud.resource_manager
        rm.lease_duration = 100.0
        expired = []
        lease = rm.acquire("svc", Constraints(count=1),
                           on_revoked=lambda l, s: expired.append(l))

        def heartbeat(env):
            for _ in range(5):
                yield env.timeout(50.0)
                if lease.state is LeaseState.ACTIVE:
                    rm.renew(lease)

        cloud.env.process(heartbeat(cloud.env))
        cloud.run(until=240.0)
        assert expired == []
        assert lease.is_active(cloud.env.now)


class TestServiceManager:
    def _sm(self, cloud, count=1, components=1):
        rm = cloud.resource_manager
        sm = ServiceManager(cloud.env, "dnn", rm,
                            Image("dnn-v1", "dnn"),
                            Constraints(count=count))
        sm.grow(components)
        return sm

    def test_grow_deploys_image(self):
        cloud = make_cloud(0, 1)
        sm = self._sm(cloud, count=2)
        cloud.run(until=5.0)
        for host in sm.hosts:
            assert cloud.shell(host).configuration.live_image.name \
                == "dnn-v1"

    def test_pick_round_robins(self):
        cloud = make_cloud(0, 1)
        sm = self._sm(cloud, count=2)
        picks = [sm.pick() for _ in range(4)]
        assert picks == [sm.hosts[0], sm.hosts[1]] * 2

    def test_pick_without_capacity_raises(self):
        cloud = make_cloud(0)
        rm = cloud.resource_manager
        sm = ServiceManager(cloud.env, "x", rm, Image("i", "r"))
        with pytest.raises(RuntimeError):
            sm.pick()

    def test_failure_triggers_replacement(self):
        """'Failing nodes are removed from the pool with replacements
        quickly added.'"""
        cloud = make_cloud(0, 1, 2)
        sm = self._sm(cloud, count=1)
        original = sm.hosts[0]
        cloud.resource_manager.manager(original).mark_failed()
        assert sm.stats.components_lost == 1
        assert sm.stats.replacements == 1
        assert sm.hosts and sm.hosts[0] != original

    def test_replacement_exhaustion_tracked(self):
        cloud = make_cloud(0)
        sm = self._sm(cloud, count=1)
        cloud.resource_manager.manager(sm.hosts[0]).mark_failed()
        assert sm.pending_replacements == 1
        assert sm.hosts == []

    def test_shrink_releases(self):
        cloud = make_cloud(0, 1)
        sm = self._sm(cloud, count=1, components=2)
        assert len(sm.hosts) == 2
        sm.shrink(1)
        assert len(sm.hosts) == 1
        assert len(cloud.resource_manager.free_hosts()) == 1


class TestFpgaManager:
    def test_status_snapshot(self):
        cloud = make_cloud(0)
        manager = cloud.resource_manager.manager(0)
        status = manager.status()
        assert status.host == 0
        assert status.health is FpgaHealth.HEALTHY
        assert status.live_image == "golden"
        assert status.link_up

    def test_recover_power_cycles_to_golden(self):
        cloud = make_cloud(0)
        manager = cloud.resource_manager.manager(0)
        cloud.env.process(manager.configure(Image("app", "role")))
        cloud.run(until=2.0)
        assert cloud.shell(0).configuration.live_image.name == "app"
        cloud.env.process(manager.recover())
        cloud.run(until=30.0)
        assert cloud.shell(0).configuration.live_image.name == "golden"
