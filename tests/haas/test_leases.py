"""Unit tests for lease bookkeeping."""

import pytest

from repro.haas import Constraints, Lease, LeaseState


def make_lease(granted_at=0.0, duration=100.0):
    return Lease(service="svc", hosts=[1, 2],
                 constraints=Constraints(count=2),
                 granted_at=granted_at, duration=duration)


class TestLease:
    def test_unique_ids(self):
        assert make_lease().lease_id != make_lease().lease_id

    def test_active_window(self):
        lease = make_lease(granted_at=10.0, duration=50.0)
        assert lease.expires_at == 60.0
        assert lease.is_active(now=10.0)
        assert lease.is_active(now=59.9)
        assert not lease.is_active(now=60.0)

    def test_inactive_states(self):
        lease = make_lease()
        for state in (LeaseState.RELEASED, LeaseState.REVOKED,
                      LeaseState.EXPIRED):
            lease.state = state
            assert not lease.is_active(now=1.0)

    def test_renew_resets_clock(self):
        lease = make_lease(granted_at=0.0, duration=100.0)
        lease.renew(now=80.0)
        assert lease.expires_at == 180.0
        assert lease.is_active(now=150.0)

    def test_renew_of_dead_lease_rejected(self):
        lease = make_lease()
        lease.state = LeaseState.REVOKED
        with pytest.raises(ValueError):
            lease.renew(now=1.0)
