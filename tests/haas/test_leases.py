"""Unit tests for lease bookkeeping."""

import pytest

from repro.haas import (
    EPOCH_STRIDE,
    Constraints,
    Lease,
    LeaseState,
    lease_id_for,
)


def make_lease(granted_at=0.0, duration=100.0):
    return Lease(service="svc", hosts=[1, 2],
                 constraints=Constraints(count=2),
                 granted_at=granted_at, duration=duration)


class TestLease:
    def test_epoch_scoped_ids(self):
        # IDs from different epochs never collide, and within an epoch
        # they are sequential — no process-global counter involved.
        assert lease_id_for(1, 1) != lease_id_for(2, 1)
        assert lease_id_for(1, 2) == lease_id_for(1, 1) + 1
        assert lease_id_for(2, 1) == 2 * EPOCH_STRIDE + 1

    def test_identity_semantics(self):
        # Leases are identity objects: an SM's copy of a grant compares
        # unequal to the RM's original even when every field matches.
        a, b = make_lease(), make_lease()
        assert a != b
        assert a == a

    def test_active_window(self):
        lease = make_lease(granted_at=10.0, duration=50.0)
        assert lease.expires_at == 60.0
        assert lease.is_active(now=10.0)
        assert lease.is_active(now=59.9)
        assert not lease.is_active(now=60.0)

    def test_inactive_states(self):
        lease = make_lease()
        for state in (LeaseState.RELEASED, LeaseState.REVOKED,
                      LeaseState.EXPIRED):
            lease.state = state
            assert not lease.is_active(now=1.0)

    def test_renew_resets_clock(self):
        lease = make_lease(granted_at=0.0, duration=100.0)
        lease.renew(now=80.0)
        assert lease.expires_at == 180.0
        assert lease.is_active(now=150.0)

    def test_renew_of_dead_lease_rejected(self):
        lease = make_lease()
        lease.state = LeaseState.REVOKED
        with pytest.raises(ValueError):
            lease.renew(now=1.0)
