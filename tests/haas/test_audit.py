"""Unit tests for the campaign journal auditor."""

from repro.haas import Journal, audit_journal


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_journal():
    clock = Clock()
    return clock, Journal(name="audit-test", clock=clock)


def grant(journal, lease_id, hosts, fence, service="svc", token=None):
    journal.record("grant", lease_id=lease_id, service=service,
                   hosts=hosts, granted_at=journal._clock(),
                   duration=10.0, epoch=1, fence=fence,
                   constraints=None, token=token)


class TestCleanJournals:
    def test_empty_journal_is_ok(self):
        _, journal = make_journal()
        report = audit_journal(journal)
        assert report.ok
        assert report.grants == 0

    def test_grant_release_cycle_is_ok(self):
        clock, journal = make_journal()
        journal.record("epoch", epoch=1)
        grant(journal, 1, [0], fence=1, token="t1")
        clock.now = 5.0
        journal.record("release", lease_id=1)
        grant(journal, 2, [0], fence=2, token="t2")
        report = audit_journal(journal)
        assert report.ok
        assert (report.grants, report.releases) == (2, 1)
        assert report.epochs_seen == 1

    def test_fence_rejections_counted_not_violations(self):
        _, journal = make_journal()
        grant(journal, 1, [0], fence=1)
        journal.record("fence_reject", host=0, op="traffic",
                       fence=0, current=1)
        report = audit_journal(journal)
        assert report.ok
        assert report.fence_rejections == 1


class TestSafetyViolations:
    def test_double_allocation_detected(self):
        _, journal = make_journal()
        grant(journal, 1, [0, 1], fence=1)
        grant(journal, 2, [1], fence=2)   # host 1 never freed
        report = audit_journal(journal, require_replacement=False)
        assert report.double_allocations == 1
        assert report.by_kind() == {"double_allocation": 1}

    def test_token_granted_twice_detected(self):
        clock, journal = make_journal()
        grant(journal, 1, [0], fence=1, token="tok")
        clock.now = 1.0
        journal.record("release", lease_id=1)
        grant(journal, 2, [1], fence=2, token="tok")  # dedup failed
        report = audit_journal(journal, require_replacement=False)
        assert report.dedup_violations == 1

    def test_retried_grant_same_lease_is_not_a_violation(self):
        _, journal = make_journal()
        grant(journal, 1, [0], fence=1, token="tok")
        report = audit_journal(journal, require_replacement=False)
        assert report.dedup_violations == 0

    def test_fence_regression_detected(self):
        clock, journal = make_journal()
        grant(journal, 1, [0], fence=5)
        clock.now = 1.0
        journal.record("release", lease_id=1)
        grant(journal, 2, [0], fence=5)   # not strictly increasing
        report = audit_journal(journal, require_replacement=False)
        assert not report.ok
        assert "fence_regression" in report.by_kind()

    def test_stale_admit_is_a_hard_violation(self):
        _, journal = make_journal()
        journal.record("stale_admit", host=0, op="traffic",
                       fence=1, current=3)
        report = audit_journal(journal)
        assert report.stale_admits == 1
        assert not report.ok


class TestRevocationRemedies:
    def test_replacement_grant_remedies_revocation(self):
        clock, journal = make_journal()
        grant(journal, 1, [0], fence=1)
        clock.now = 2.0
        journal.record("revoke", lease_id=1, service="svc", cause_host=0)
        clock.now = 3.0
        grant(journal, 2, [1], fence=2)
        clock.now = 30.0
        journal.record("epoch", epoch=1)  # moves end_time past the tail
        assert audit_journal(journal).ok

    def test_quarantine_of_cause_host_remedies_revocation(self):
        clock, journal = make_journal()
        grant(journal, 1, [0], fence=1)
        clock.now = 2.0
        journal.record("revoke", lease_id=1, service="svc", cause_host=0)
        journal.record("quarantine", host=0, until=10.0)
        clock.now = 30.0
        journal.record("epoch", epoch=1)
        assert audit_journal(journal).ok

    def test_unremedied_revocation_detected(self):
        clock, journal = make_journal()
        grant(journal, 1, [0], fence=1)
        clock.now = 2.0
        journal.record("revoke", lease_id=1, service="svc", cause_host=0)
        clock.now = 30.0
        journal.record("epoch", epoch=1)
        report = audit_journal(journal)
        assert report.unremedied_revocations == 1

    def test_tail_grace_exempts_campaign_end(self):
        clock, journal = make_journal()
        grant(journal, 1, [0], fence=1)
        clock.now = 29.0
        journal.record("expire", lease_id=1, service="svc")
        clock.now = 30.0
        journal.record("epoch", epoch=1)
        assert not audit_journal(journal).ok
        assert audit_journal(journal, tail_grace=5.0).ok


class TestLifecycleCounters:
    def test_crash_restart_epochs_counted(self):
        clock, journal = make_journal()
        journal.record("epoch", epoch=1)
        journal.record("crash")
        journal.record("restart", recovered=0)
        journal.record("epoch", epoch=2)
        report = audit_journal(journal)
        assert (report.crashes, report.restarts) == (1, 1)
        assert report.epochs_seen == 2
