"""Tests for the HaaS recovery machinery added for chaos hardening:
lease expiry + renewal races, RM quarantine, the SM replacement retry
loop, the FM periodic health monitor, and RM crash recovery."""

import pytest

from repro.core import ConfigurableCloud
from repro.fpga import Image, ShellConfig
from repro.haas import (
    EPOCH_STRIDE,
    Constraints,
    FpgaHealth,
    LeaseExpired,
    LeaseState,
    ResourceManager,
    ServerUnavailable,
    ServiceManager,
)
from repro.net import TopologyConfig, idle

IMAGE = Image(name="svc", role_name="svc-role")


def make_cloud(*indices, lease=5.0, sweep=0.5, quarantine=2.0):
    """Control-plane-only cloud: shells without LTL (no 10 us timer
    wheel), RM with fast lease/sweep/quarantine for sim-seconds tests."""
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=1)
    cloud._rm = ResourceManager(cloud.env, cloud.fabric.topology,
                                lease_duration=lease, sweep_period=sweep,
                                quarantine_seconds=quarantine)
    for i in indices:
        cloud.add_server(i, shell_config=ShellConfig(with_ltl=False))
    return cloud


def settle(cloud, seconds=12.0):
    """Run past the initial configure (a few seconds of sim time)."""
    cloud.env.run(until=cloud.env.now + seconds)


class TestExpiryAndRenewal:
    def test_missed_heartbeats_expire_lease_exactly_once(self):
        cloud = make_cloud(0, 1, 2)
        env, rm = cloud.env, cloud.resource_manager
        sm = ServiceManager(env, "svc", rm, IMAGE)
        revoked = []
        lease = rm.acquire("svc", sm.constraints,
                           on_revoked=lambda l, s: revoked.append(l))
        held = list(lease.hosts)
        # No heartbeat at all: the sweeper must expire the lease shortly
        # after lease_duration and notify exactly once.
        env.run(until=lease.expires_at + 2 * rm._sweep_period)
        assert revoked == [lease]
        assert lease.state is LeaseState.EXPIRED
        assert rm.stats.expirations == 1
        # Expiry is not a failure: hosts return to the pool unquarantined.
        for host in held:
            assert host in rm.free_hosts()

    def test_heartbeat_keeps_lease_alive(self):
        cloud = make_cloud(0, 1)
        env, rm = cloud.env, cloud.resource_manager
        sm = ServiceManager(env, "svc", rm, IMAGE)
        sm.grow(1)
        sm.start_heartbeat()
        env.run(until=4 * rm.lease_duration)
        assert len(sm.leases) == 1
        assert sm.leases[0].state is LeaseState.ACTIVE
        assert rm.stats.expirations == 0

    def test_renew_all_skips_revoked_lease(self):
        """The renewal race: a lease revoked between heartbeats must not
        kill the heartbeat or resurrect the lease."""
        cloud = make_cloud(0, 1, 2, 3, lease=60.0)
        env, rm = cloud.env, cloud.resource_manager
        sm = ServiceManager(env, "svc", rm, IMAGE)
        sm.grow(2)
        settle(cloud)
        victim = sm.leases[0]
        survivor = sm.leases[1]
        rm.manager(victim.hosts[0]).mark_failed("test kill")
        # The revoked lease object is gone from the SM (replaced), but
        # simulate the race where a stale reference lingers:
        sm.leases.append(victim)
        before = survivor.expires_at
        env.run(until=env.now + 1.0)
        sm.renew_all()  # must not raise
        assert victim.state is LeaseState.REVOKED
        assert survivor.expires_at > before
        sm.leases.remove(victim)

    def test_renew_unknown_lease_still_raises_for_direct_callers(self):
        cloud = make_cloud(0)
        rm = cloud.resource_manager
        sm = ServiceManager(cloud.env, "svc", rm, IMAGE)
        lease = sm.grow(1)[0]
        rm.release(lease)
        with pytest.raises(KeyError):
            rm.renew(lease)

    def test_renew_of_expired_unswept_lease_rejected(self):
        """The expiry race: a renew arriving after ``expires_at`` but
        before the sweeper's next pass must NOT resurrect the lease."""
        cloud = make_cloud(0, 1, lease=2.0, sweep=60.0)
        env, rm = cloud.env, cloud.resource_manager
        lease = rm.acquire("svc", Constraints(count=1))
        held = list(lease.hosts)
        env.run(until=lease.expires_at + 0.5)  # dead, not yet swept
        with pytest.raises(LeaseExpired):
            rm.renew(lease)
        # The rejected renew settled the lease's fate on the spot.
        assert lease.state is LeaseState.EXPIRED
        assert rm.stats.expirations == 1
        assert rm.stats.renew_rejections == 1
        for host in held:
            assert host in rm.free_hosts()

    def test_suspension_past_lease_lifetime_expires_then_replaces(self):
        """Heartbeat suspension x expiry sweep: a stall longer than the
        lease loses the component; the sweep-driven revocation push gets
        it replaced, and resumed heartbeats keep the replacement."""
        cloud = make_cloud(0, 1, 2, lease=4.0, sweep=0.5)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        sm = ServiceManager(env, "svc", rm, IMAGE)
        sm.grow(1)
        sm.start_heartbeat(1.0)
        env.run(until=env.now + 3.0)
        assert rm.stats.expirations == 0  # heartbeat is doing its job
        sm.suspend_heartbeat(6.0)         # > lease duration
        env.run(until=env.now + 6.0 + 2 * rm._sweep_period)
        assert rm.stats.expirations == 1
        assert sm.stats.replacements == 1
        # Heartbeats resumed: the replacement stays alive indefinitely.
        env.run(until=env.now + 3 * rm.lease_duration)
        assert rm.stats.expirations == 1
        assert len(sm.hosts) == 1

    def test_short_suspension_within_lease_slack_is_harmless(self):
        cloud = make_cloud(0, lease=4.0, sweep=0.5)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        sm = ServiceManager(env, "svc", rm, IMAGE)
        sm.grow(1)
        sm.start_heartbeat(1.0)
        env.run(until=env.now + 2.0)
        sm.suspend_heartbeat(2.0)  # < remaining lease slack
        env.run(until=env.now + 8.0)
        assert rm.stats.expirations == 0
        assert sm.stats.replacements == 0


class TestQuarantine:
    def test_failed_host_benched_then_rehabilitated(self):
        cloud = make_cloud(0, 1, lease=60.0, quarantine=3.0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        sm = ServiceManager(env, "svc", rm, IMAGE)
        lease = sm.grow(1)[0]
        victim = lease.hosts[0]
        rm.manager(victim).mark_failed("flaky link", hard=False)
        # Replacement must not re-pick the victim...
        assert victim not in sm.hosts
        assert rm.in_quarantine(victim)
        assert victim not in rm.free_hosts()
        assert rm.stats.quarantines == 1
        # ...but after the FM monitor rehabilitates it (soft failure,
        # cause cleared) and the quarantine lapses, it is leasable again.
        env.run(until=env.now + 30.0)
        assert rm.manager(victim).health is FpgaHealth.HEALTHY
        assert not rm.in_quarantine(victim)
        assert victim in rm.free_hosts()

    def test_expiry_does_not_quarantine(self):
        cloud = make_cloud(0, lease=2.0, sweep=0.2)
        env, rm = cloud.env, cloud.resource_manager
        lease = rm.acquire("svc", ServiceManager(
            env, "svc", rm, IMAGE).constraints)
        env.run(until=lease.expires_at + 1.0)
        assert rm.stats.expirations == 1
        assert rm.stats.quarantines == 0

    def test_lapsed_entries_pruned_by_sweeper(self):
        """The quarantine table must not grow forever: the sweeper
        drops entries once they lapse (not merely stops honoring them)."""
        cloud = make_cloud(0, 1, quarantine=1.0, sweep=0.5)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        rm.manager(0).mark_failed("flaky", hard=False)
        assert 0 in rm._quarantine_until
        env.run(until=env.now + 1.0 + 2 * rm._sweep_period)
        assert not rm.in_quarantine(0)
        assert 0 not in rm._quarantine_until  # entry gone, not stale


class TestReplacementRetry:
    def test_pending_replacement_filled_when_pool_frees(self):
        """Pool exhausted at failure time: the component goes pending
        and the background retry loop fills it once capacity appears."""
        cloud = make_cloud(0, 1, lease=60.0, quarantine=2.0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        sm_a = ServiceManager(env, "a", rm, IMAGE)
        sm_b = ServiceManager(env, "b", rm, IMAGE)
        lease_a = sm_a.grow(1)[0]
        sm_b.grow(1)  # pool now fully allocated
        rm.manager(lease_a.hosts[0]).mark_failed("dead", hard=False)
        assert sm_a.pending_replacements == 1
        assert sm_a.leases == []
        # Competing service releases its component; the retry loop's
        # exponential backoff picks it up.
        sm_b.shrink(1)
        env.run(until=env.now + 10.0)
        assert sm_a.pending_replacements == 0
        assert len(sm_a.leases) == 1
        assert sm_a.stats.replacements == 1

    def test_immediate_replacement_when_spares_exist(self):
        cloud = make_cloud(0, 1, 2, lease=60.0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        sm = ServiceManager(env, "svc", rm, IMAGE)
        lease = sm.grow(1)[0]
        rm.manager(lease.hosts[0]).mark_failed("dead", hard=False)
        # Replacement happened synchronously inside the revocation.
        assert sm.pending_replacements == 0
        assert len(sm.leases) == 1
        assert sm.leases[0].hosts[0] != lease.hosts[0]


class TestFpgaMonitor:
    def test_detach_detected_and_rehabilitated_on_reattach(self):
        cloud = make_cloud(0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        fm = rm.manager(0)
        cloud.fabric.detach(0)
        env.run(until=env.now + 3 * fm.monitor_period)
        assert fm.health is FpgaHealth.FAILED
        cloud.fabric.reattach(0)
        # Soft failure + cause cleared: auto-recover (power cycle ~10 s).
        env.run(until=env.now + 20.0)
        assert fm.health is FpgaHealth.HEALTHY
        assert fm.recoveries >= 1

    def test_hard_failure_not_rehabilitated(self):
        cloud = make_cloud(0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        fm = rm.manager(0)
        fm.mark_failed("board fried", hard=True)
        env.run(until=env.now + 30.0)
        assert fm.health is FpgaHealth.FAILED

    def test_role_hang_escalates_and_recovers(self):
        cloud = ConfigurableCloud(
            topology=TopologyConfig(background=idle()), seed=1)
        cloud._rm = ResourceManager(
            cloud.env, cloud.fabric.topology, lease_duration=30.0,
            sweep_period=1.0, quarantine_seconds=2.0)
        cloud.add_server(0, shell_config=ShellConfig(
            with_ltl=False, enable_seu=True))
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        fm = rm.manager(0)
        shell = cloud.shell(0)
        shell.scrubber.inject_flip(role_hang=True)
        env.run(until=env.now + 3 * fm.monitor_period)
        assert fm.health in (FpgaHealth.DEGRADED, FpgaHealth.FAILED)
        env.run(until=env.now + 20.0)
        assert fm.health is FpgaHealth.HEALTHY
        assert not shell.scrubber.role_hung

    def test_gray_reports_escalate_at_threshold(self):
        cloud = make_cloud(0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        fm = rm.manager(0)
        fm.report_gray()
        assert fm.health is FpgaHealth.HEALTHY  # one report: benign
        fm.report_gray()
        assert fm.health is not FpgaHealth.HEALTHY  # 2 within window
        env.run(until=env.now + 20.0)
        assert fm.health is FpgaHealth.HEALTHY  # recovered after cycle

    def test_gray_reports_outside_window_ignored(self):
        cloud = make_cloud(0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        fm = rm.manager(0)
        fm.report_gray()
        env.run(until=env.now + 2 * fm.gray_report_window)
        fm.report_gray()
        assert fm.health is FpgaHealth.HEALTHY

    def test_health_transitions_recorded(self):
        cloud = make_cloud(0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        fm = rm.manager(0)
        fm.mark_failed("test", hard=False)
        env.run(until=env.now + 20.0)
        states = [(old, new) for _, old, new, _ in fm.transitions]
        assert (FpgaHealth.HEALTHY, FpgaHealth.FAILED) in states
        assert states[-1][1] is FpgaHealth.HEALTHY


class TestUnregisterReregister:
    def test_unregister_of_allocated_host_revokes_its_lease(self):
        cloud = make_cloud(0, 1, lease=60.0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        sm = ServiceManager(env, "svc", rm, IMAGE)
        lease = sm.grow(1)[0]
        victim = lease.hosts[0]
        rm.unregister(victim)
        assert lease.state is LeaseState.REVOKED
        assert not rm.is_allocated(victim)
        # The SM replaced onto the remaining host straight away.
        assert len(sm.hosts) == 1
        assert sm.hosts[0] != victim

    def test_reregistered_host_leasable_with_fence_discipline(self):
        cloud = make_cloud(0, 1, lease=60.0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        sm = ServiceManager(env, "svc", rm, IMAGE)
        old = sm.grow(1)[0]
        victim = old.hosts[0]
        manager = rm.manager(victim)
        rm.unregister(victim)
        rm.register(manager)  # the host re-enrolls (e.g. re-racked)
        assert victim in rm.free_hosts()
        fresh = rm.acquire("other", Constraints(count=1,
                                                exclude_hosts=[]))
        # It may or may not pick the victim, but if it does, the new
        # grant must outrank the revoked one.
        if victim in fresh.hosts:
            assert fresh.fence > old.fence
            assert not manager.admit_traffic(old.fence)


class TestRmCrashRecovery:
    def test_restart_replays_journal_and_bumps_epoch(self):
        cloud = make_cloud(0, 1, 2, lease=60.0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        sm = ServiceManager(env, "svc", rm, IMAGE)
        sm.grow(2)
        held = sorted(sm.hosts)
        rm.crash()
        assert rm.crashed
        with pytest.raises(ServerUnavailable):
            rm.acquire("probe", Constraints(count=1))
        recovered = rm.restart()
        assert recovered == 2
        assert rm.epoch == 2
        # Same hosts, same lease ids — replayed, not re-granted.
        for host in held:
            assert rm.is_allocated(host)
        for lease in sm.leases:
            assert rm.renew(lease) == env.now  # the RM still honors them
        # Post-restart grants come from the new epoch's id space.
        fresh = rm.acquire("other", Constraints(count=1))
        assert fresh.lease_id // EPOCH_STRIDE == 2
        assert fresh.rm_epoch == 2

    def test_restart_reconciles_host_that_died_while_down(self):
        cloud = make_cloud(0, 1, lease=60.0, quarantine=5.0)
        env, rm = cloud.env, cloud.resource_manager
        settle(cloud, 2.0)
        sm = ServiceManager(env, "svc", rm, IMAGE)
        lease = sm.grow(1)[0]
        victim = lease.hosts[0]
        rm.crash()
        cloud.fabric.detach(victim)  # the host dies during the outage
        fm = rm.manager(victim)
        env.run(until=env.now + 3 * fm.monitor_period)
        assert fm.health is FpgaHealth.FAILED
        rm.restart()
        # Replay recovered the lease, reconciliation then revoked it:
        # the dead host must not come back allocated.
        assert not rm.is_allocated(victim)
        assert rm.in_quarantine(victim)
        assert rm.stats.revocations == 1

    def test_double_crash_and_restart_are_idempotent(self):
        cloud = make_cloud(0)
        rm = cloud.resource_manager
        rm.crash()
        rm.crash()            # no-op, not an error
        assert rm.restart() == 0
        assert rm.restart() == 0  # already up: no second epoch bump
        assert rm.stats.crashes == 1
        assert rm.stats.restarts == 1

    def test_sweeper_idles_while_crashed(self):
        cloud = make_cloud(0, lease=1.0, sweep=0.2)
        env, rm = cloud.env, cloud.resource_manager
        lease = rm.acquire("svc", Constraints(count=1))
        rm.crash()
        env.run(until=lease.expires_at + 2.0)
        assert rm.stats.expirations == 0  # a dead RM expires nothing
        rm.restart()
        env.run(until=env.now + 1.0)
        # The recovered lease is past due: the first live sweep acts.
        assert rm.stats.expirations == 1
