"""ServiceManager replacement-retry backoff.

When the pool is exhausted, a Service Manager's lost components go on a
pending list and a single background loop retries with exponential
backoff.  These tests pin the contract: the interval doubles up to
``retry_backoff_max``, a successful replacement resets it, and the loop
deactivates when drained and re-arms (once) on the next loss.
"""

import pytest

from repro.core import ConfigurableCloud
from repro.fpga import Image
from repro.haas import Constraints, ServiceManager
from repro.net import TopologyConfig, idle


def make_cloud(*indices):
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=1)
    for i in indices:
        cloud.add_server(i)
    return cloud


def make_sm(cloud, backoff=0.5, backoff_max=4.0):
    sm = ServiceManager(cloud.env, "svc", cloud.resource_manager,
                        Image("svc-v1", "svc"), Constraints(count=1),
                        retry_backoff=backoff,
                        retry_backoff_max=backoff_max)
    return sm


def record_attempts(cloud, sm, results):
    """Replace ``_try_replace`` with a script; returns the attempt log."""
    attempts = []
    outcomes = list(results)

    def scripted():
        attempts.append(cloud.env.now)
        if outcomes:
            outcome = outcomes.pop(0)
        else:
            outcome = False
        if outcome:
            sm.stats.replacements += 1
        return outcome

    sm._try_replace = scripted
    return attempts


class TestBackoffSchedule:
    def test_interval_doubles_and_caps_at_max(self):
        cloud = make_cloud(0)
        sm = make_sm(cloud, backoff=0.5, backoff_max=4.0)
        attempts = record_attempts(cloud, sm, results=[])
        sm.pending_replacements = 1
        sm._ensure_retry_loop()
        cloud.run(until=20.0)
        gaps = [b - a for a, b in zip(attempts, attempts[1:])]
        # 0.5 -> 1 -> 2 -> 4, then pinned at retry_backoff_max.
        assert attempts[0] == pytest.approx(0.5)
        assert gaps[:3] == pytest.approx([1.0, 2.0, 4.0])
        assert all(g == pytest.approx(4.0) for g in gaps[3:])
        assert len(gaps) >= 5

    def test_success_resets_backoff(self):
        cloud = make_cloud(0)
        sm = make_sm(cloud, backoff=0.5, backoff_max=4.0)
        # Fail twice (backoff reaches 2.0), then one success, then keep
        # failing: the post-success interval must restart at 0.5.
        attempts = record_attempts(
            cloud, sm, results=[False, False, True, False, False])
        sm.pending_replacements = 2
        sm._ensure_retry_loop()
        cloud.run(until=10.0)
        assert attempts[0] == pytest.approx(0.5)   # initial backoff
        assert attempts[1] == pytest.approx(1.5)   # +1.0 (doubled)
        assert attempts[2] == pytest.approx(3.5)   # +2.0 (doubled)
        # The success at 3.5 drains one pending replacement and retries
        # the remaining one in the same wakeup...
        assert attempts[3] == pytest.approx(3.5)
        # ...which failed, so the next sleep is the *reset* base backoff
        # doubled once (0.5 -> 1.0).  Without the reset the wakeup would
        # come a full capped 4.0 s later, at 7.5.
        assert attempts[4] == pytest.approx(4.5)
        assert sm.pending_replacements == 1

    def test_loop_drains_and_rearms(self):
        cloud = make_cloud(0)
        sm = make_sm(cloud, backoff=0.5)
        attempts = record_attempts(cloud, sm, results=[True])
        sm.pending_replacements = 1
        sm._ensure_retry_loop()
        assert sm._retry_loop_active
        cloud.run(until=1.0)
        # Drained: loop exits and deactivates.
        assert sm.pending_replacements == 0
        assert not sm._retry_loop_active
        assert attempts == [pytest.approx(0.5)]
        # A later loss re-arms a fresh loop at the base backoff.
        sm.pending_replacements = 1
        sm._ensure_retry_loop()
        assert sm._retry_loop_active
        cloud.run(until=1.6)
        assert attempts[1] == pytest.approx(1.5)

    def test_ensure_is_idempotent_while_active(self):
        cloud = make_cloud(0)
        sm = make_sm(cloud, backoff=0.5)
        attempts = record_attempts(cloud, sm, results=[])
        sm.pending_replacements = 1
        sm._ensure_retry_loop()
        sm._ensure_retry_loop()
        sm._ensure_retry_loop()
        cloud.run(until=0.6)
        # One loop, one attempt — not three.
        assert attempts == [pytest.approx(0.5)]


class TestBackoffEndToEnd:
    def test_replacement_after_pool_frees_up(self):
        """Pool exhausted at loss time; a later release lets the retry
        loop replace the component and drain itself."""
        cloud = make_cloud(0, 1)
        rm = cloud.resource_manager
        other = rm.acquire("other", Constraints(count=1))
        sm = make_sm(cloud, backoff=0.5, backoff_max=4.0)
        sm.grow(1)
        assert rm.free_hosts() == []

        victim = sm.hosts[0]
        rm.manager(victim).mark_failed()
        assert sm.pending_replacements == 1
        assert sm.hosts == []
        assert sm._retry_loop_active

        def free_later(env):
            yield env.timeout(2.0)
            rm.release(other)

        cloud.env.process(free_later(cloud.env))
        cloud.run(until=10.0)
        assert sm.pending_replacements == 0
        assert not sm._retry_loop_active
        assert sm.stats.replacements == 1
        assert sm.hosts and sm.hosts[0] != victim
