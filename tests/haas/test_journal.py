"""Unit tests for the RM write-ahead journal and its replay."""

from repro.haas import Journal


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_journal(**kwargs):
    clock = FakeClock()
    journal = Journal(name="test", clock=clock, **kwargs)
    return clock, journal


class TestRecording:
    def test_records_are_sequenced_and_timestamped(self):
        clock, journal = make_journal()
        first = journal.record("epoch", epoch=1)
        clock.now = 2.5
        second = journal.record("register", host=0)
        assert (first.seq, first.time) == (1, 0.0)
        assert (second.seq, second.time) == (2, 2.5)
        assert len(journal) == 2

    def test_jsonable_elides_rich_objects(self):
        _, journal = make_journal()
        rec = journal.record("grant", lease_id=7, hosts=[1, 2],
                             constraints=object())
        plain = rec.jsonable()
        assert plain["lease_id"] == 7
        assert plain["hosts"] == [1, 2]
        assert "constraints" not in plain


GRANT = dict(service="svc", granted_at=1.0, duration=10.0,
             epoch=1, fence=1, constraints=None, token="t1")


class TestReplay:
    def test_open_lease_survives_closed_leases_do_not(self):
        clock, journal = make_journal()
        journal.record("epoch", epoch=1)
        journal.record("register", host=0)
        journal.record("register", host=1)
        journal.record("grant", lease_id=1, hosts=[0], **GRANT)
        journal.record("grant", lease_id=2, hosts=[1],
                       **{**GRANT, "fence": 2, "token": "t2"})
        journal.record("release", lease_id=2)
        state = journal.replay()
        assert sorted(state.leases) == [1]
        assert state.leases[1]["hosts"] == [0]
        assert state.registered == [0, 1]
        assert state.max_fence == 2
        assert state.max_epoch == 1

    def test_renew_updates_grant_time(self):
        _, journal = make_journal()
        journal.record("grant", lease_id=1, hosts=[0], **GRANT)
        journal.record("renew", lease_id=1, granted_at=8.0)
        assert journal.replay().leases[1]["granted_at"] == 8.0

    def test_revoke_and_expire_close_leases(self):
        _, journal = make_journal()
        journal.record("grant", lease_id=1, hosts=[0], **GRANT)
        journal.record("grant", lease_id=2, hosts=[1],
                       **{**GRANT, "token": "t2"})
        journal.record("revoke", lease_id=1, cause_host=0)
        journal.record("expire", lease_id=2)
        assert journal.replay().leases == {}

    def test_quarantine_and_unregister(self):
        _, journal = make_journal()
        journal.record("register", host=3)
        journal.record("quarantine", host=3, until=9.0)
        journal.record("unregister", host=3)
        state = journal.replay()
        assert state.quarantine == {3: 9.0}
        assert state.registered == []

    def test_fence_barrier_advances_max_fence(self):
        _, journal = make_journal()
        journal.record("grant", lease_id=1, hosts=[0], **GRANT)
        journal.record("fence_barrier", host=0, fence=5)
        assert journal.replay().max_fence == 5


class TestSnapshots:
    def test_replay_starts_from_latest_snapshot(self):
        _, journal = make_journal()
        journal.record("grant", lease_id=1, hosts=[0], **GRANT)
        # Snapshot that deliberately contradicts the earlier records:
        # replay must trust the snapshot, not re-derive from before it.
        journal.snapshot({"leases": {}, "quarantine": {},
                          "registered": [7], "max_fence": 9,
                          "max_epoch": 3})
        journal.record("grant", lease_id=10, hosts=[7],
                       **{**GRANT, "fence": 10, "token": "t9"})
        state = journal.replay()
        assert sorted(state.leases) == [10]
        assert state.registered == [7]
        assert state.max_fence == 10
        assert state.max_epoch == 3
        # Only the post-snapshot tail was replayed.
        assert state.replayed_records == 1

    def test_maybe_snapshot_compacts_at_interval(self):
        _, journal = make_journal(snapshot_interval=4)
        state_fn = lambda: {"leases": {}, "registered": []}  # noqa: E731
        for i in range(3):
            journal.record("grant", lease_id=i, hosts=[i], **GRANT)
            assert not journal.maybe_snapshot(state_fn)
        journal.record("grant", lease_id=3, hosts=[3], **GRANT)
        assert journal.maybe_snapshot(state_fn)
        # The counter reset: the next record does not trigger another.
        journal.record("grant", lease_id=4, hosts=[4], **GRANT)
        assert not journal.maybe_snapshot(state_fn)

    def test_evidence_records_do_not_count_toward_compaction(self):
        _, journal = make_journal(snapshot_interval=2)
        state_fn = lambda: {}  # noqa: E731
        for _ in range(10):
            journal.record("fence_reject", host=0, op="traffic",
                           fence=0, current=1)
        assert not journal.maybe_snapshot(state_fn)
