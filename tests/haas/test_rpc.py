"""Unit tests for the simulated control-plane RPC seam."""

import pytest

from repro.haas import RpcChannel, RpcConfig, RpcTimeout, ServerUnavailable
from repro.sim import Environment


class EchoServer:
    """Dispatch target that records every delivery it sees."""

    def __init__(self):
        self.calls = []
        self.down = False
        self.fail_with = None

    def __call__(self, channel, method, payload):
        if self.down:
            raise ServerUnavailable("down")
        self.calls.append((method, dict(payload)))
        if self.fail_with is not None:
            raise self.fail_with
        return {"echo": method}


def make_channel(env=None, **config):
    env = env or Environment()
    server = EchoServer()
    channel = RpcChannel(env, server, name="test",
                         config=RpcConfig(**config), seed=1)
    return env, server, channel


class TestInlineMode:
    """The default lossless config: synchronous, zero sim events."""

    def test_default_config_is_inline(self):
        assert RpcConfig().inline
        assert not RpcConfig(loss_probability=0.1).inline
        assert not RpcConfig(duplicate_probability=0.1).inline
        assert not RpcConfig(delay=1e-3).inline

    def test_call_executes_synchronously(self):
        env, server, channel = make_channel()
        result = channel.call("ping", {})
        assert result == {"echo": "ping"}
        assert len(server.calls) == 1
        # No events were scheduled: inline calls are invisible to the
        # simulation clock (this is what keeps seeded digests stable).
        assert env.peek() == float("inf")

    def test_tokens_stamped_into_payload(self):
        _, server, channel = make_channel()
        channel.call("acquire", {})
        channel.call("acquire", {})
        tokens = [payload["token"] for _, payload in server.calls]
        assert len(set(tokens)) == 2
        assert all(token.startswith("test:") for token in tokens)

    def test_application_error_raised(self):
        _, server, channel = make_channel()
        server.fail_with = KeyError("nope")
        with pytest.raises(KeyError):
            channel.call("renew", {})

    def test_application_error_delivered_to_on_error(self):
        _, server, channel = make_channel()
        server.fail_with = KeyError("nope")
        errors = []
        channel.call("renew", {}, on_error=errors.append)
        assert len(errors) == 1
        assert isinstance(errors[0], KeyError)

    def test_server_unavailable_looks_like_timeout(self):
        _, server, channel = make_channel()
        server.down = True
        with pytest.raises(RpcTimeout):
            channel.call("ping", {})
        assert channel.stats.server_unavailable == 1

    def test_partitioned_inline_call_times_out(self):
        env, server, channel = make_channel()
        channel.partition_for(5.0)
        with pytest.raises(RpcTimeout):
            channel.call("ping", {})
        assert server.calls == []
        assert channel.stats.partition_drops > 0


class TestSimulatedMode:
    def test_lossless_delayed_call_completes(self):
        env, server, channel = make_channel(delay=1e-3)
        results = []
        channel.call("ping", {}, on_result=results.append)
        assert results == []  # asynchronous now
        env.run(until=1.0)
        assert results == [{"echo": "ping"}]

    def test_loss_is_survived_by_retries(self):
        # Heavy loss: some legs drop, retries still land the call.
        env, server, channel = make_channel(
            delay=1e-3, loss_probability=0.4, call_timeout=0.05,
            max_retries=10, backoff_base=0.01, backoff_max=0.05)
        results, errors = [], []
        for _ in range(10):
            channel.call("ping", {}, on_result=results.append,
                         on_error=errors.append)
        env.run(until=20.0)
        assert len(results) == 10
        assert errors == []
        assert channel.stats.retries > 0
        assert channel.stats.requests_lost + channel.stats.responses_lost > 0

    def test_duplicates_reach_server_but_one_response_wins(self):
        env, server, channel = make_channel(
            delay=1e-3, duplicate_probability=1.0)
        results = []
        channel.call("ping", {}, on_result=results.append)
        env.run(until=1.0)
        # Every leg duplicated: the server saw the request twice...
        assert len(server.calls) == 2
        # ...but the caller saw exactly one completion.
        assert results == [{"echo": "ping"}]
        assert channel.stats.requests_duplicated == 1

    def test_exhausted_retries_deliver_timeout(self):
        env, server, channel = make_channel(
            delay=1e-3, loss_probability=0.1, call_timeout=0.05,
            max_retries=2)
        server.down = True
        errors = []
        channel.call("ping", {}, on_error=errors.append)
        env.run(until=5.0)
        assert len(errors) == 1
        assert isinstance(errors[0], RpcTimeout)
        assert channel.stats.timeouts == 1

    def test_partition_heals_on_schedule(self):
        env, server, channel = make_channel(
            delay=1e-3, call_timeout=0.05, max_retries=30,
            backoff_base=0.05, backoff_max=0.2)
        channel.partition_for(2.0)
        results = []
        channel.call("ping", {}, on_result=results.append)
        env.run(until=1.0)
        assert results == []          # still stranded
        env.run(until=6.0)
        assert results == [{"echo": "ping"}]  # retries crossed the heal


class TestPush:
    def test_inline_push_delivers(self):
        env, server, channel = make_channel()
        got = []
        channel.push(got.append, 42)
        assert got == [42]
        assert channel.stats.pushes == 1

    def test_partitioned_push_is_lost(self):
        env, server, channel = make_channel()
        channel.partition_for(10.0)
        got = []
        channel.push(got.append, 42)
        assert got == []
        assert channel.stats.pushes_lost == 1

    def test_simulated_push_retries_first_arrival_wins(self):
        env, server, channel = make_channel(
            delay=1e-3, duplicate_probability=1.0)
        got = []
        channel.push(got.append, 42)
        env.run(until=5.0)
        assert got == [42]  # resends and duplicates deduplicated


class TestEpochObservation:
    def test_epoch_change_fires_callback(self):
        env, server, channel = make_channel(delay=1e-3)
        epoch = [1]
        changes = []
        channel.epoch_probe = lambda: epoch[0]
        channel.on_epoch_change = lambda new: changes.append(new)
        channel.call("ping", {})
        env.run(until=0.1)
        assert changes == []          # first observation: no change
        epoch[0] = 2
        channel.call("ping", {})
        env.run(until=0.2)
        assert changes == [2]
