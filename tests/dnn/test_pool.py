"""Tests for the DNN pool and the oversubscription study (Fig. 12)."""

import pytest

from repro.dnn.pool import (
    DnnPool,
    RemoteNetworkModel,
    oversubscription_sweep,
    run_oversubscription_point,
)
from repro.sim import Environment, RandomStreams


class TestDnnPool:
    def test_requests_complete(self):
        env = Environment()
        pool = DnnPool(env, num_fpgas=2,
                       rng=RandomStreams(seed=1).stream("dnn-pool"))
        for _ in range(10):
            env.process(pool.request())
        env.run()
        assert pool.completed == 10
        assert pool.latency.count == 10

    def test_join_shortest_queue_balances(self):
        env = Environment()
        pool = DnnPool(env, num_fpgas=4,
                       rng=RandomStreams(seed=2).stream("dnn-pool"))
        for _ in range(40):
            env.process(pool.request())
        env.run()
        # With JSQ, finishing 40 identical requests on 4 FPGAs takes about
        # 10 rounds of the mean service time.
        mean = pool.accelerators[0].mean_service_time
        assert env.now == pytest.approx(10 * mean, rel=0.35)

    def test_remove_fpga_shrinks_pool(self):
        env = Environment()
        pool = DnnPool(env, num_fpgas=3,
                       rng=RandomStreams(seed=3).stream("dnn-pool"))
        pool.remove_fpga()
        assert pool.num_fpgas == 2
        with pytest.raises(ValueError):
            pool.remove_fpga()
            pool.remove_fpga()

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            DnnPool(Environment(), num_fpgas=0,
                    rng=RandomStreams(seed=4).stream("dnn-pool"))

    def test_remote_adds_latency(self):
        from repro.dnn.accelerator import DnnAcceleratorConfig
        deterministic = DnnAcceleratorConfig(service_sigma=1e-9)
        env = Environment()
        local = DnnPool(env, num_fpgas=1,
                        rng=RandomStreams(seed=5).stream("dnn-pool"),
                        accelerator_config=deterministic)
        env.process(local.request())
        env.run()
        local_latency = local.latency.samples[0]

        env2 = Environment()
        remote_model = RemoteNetworkModel(tail_probability=0.0,
                                          retransmit_probability=0.0)
        remote = DnnPool(env2, num_fpgas=1, remote=remote_model,
                         rng=RandomStreams(seed=5).stream("dnn-pool"),
                         accelerator_config=deterministic)
        env2.process(remote.request())
        env2.run()
        assert remote.latency.samples[0] > local_latency


class TestRemoteNetworkModel:
    def test_base_delay_components(self):
        model = RemoteNetworkModel(round_trip=3e-6, request_bytes=1000,
                                   response_bytes=0,
                                   ltl_bandwidth_bps=8e9,
                                   per_message_overhead=1e-6)
        assert model.base_delay() == pytest.approx(3e-6 + 1e-6 + 2e-6)

    def test_sample_at_least_base(self):
        import random
        model = RemoteNetworkModel(tail_probability=0.0,
                                   retransmit_probability=0.0)
        rng = random.Random(0)
        for _ in range(50):
            assert model.sample(rng) >= 0.9 * model.base_delay()

    def test_tail_events_appear(self):
        import random
        model = RemoteNetworkModel(tail_probability=1.0)
        rng = random.Random(0)
        sample = model.sample(rng)
        assert sample >= model.tail_min


class TestOversubscription:
    def test_one_to_one_remote_overheads(self):
        """§V-E: at 1:1, remote adds ~1% avg, ~4.7% 95th, ~32% 99th —
        we assert the *shape*: small avg, modest 95th, large 99th."""
        local = run_oversubscription_point(8, 8, remote=None,
                                           requests_per_client=400)
        remote = run_oversubscription_point(
            8, 8, remote=RemoteNetworkModel(), requests_per_client=400)
        avg = remote.latency.mean / local.latency.mean - 1
        p95 = remote.latency.p95 / local.latency.p95 - 1
        p99 = remote.latency.p99 / local.latency.p99 - 1
        assert 0.0 < avg < 0.08
        assert avg < p99
        assert 0.10 < p99 < 0.60

    def test_latency_spikes_near_3x(self):
        """Fig. 12: flat-ish until the pool approaches saturation at
        ~3 stress clients per FPGA, then latency spikes."""
        low = run_oversubscription_point(8, 8,
                                         remote=RemoteNetworkModel(),
                                         requests_per_client=200)
        near = run_oversubscription_point(9, 3,
                                          remote=RemoteNetworkModel(),
                                          requests_per_client=200)
        assert near.latency.p99 > 2.5 * low.latency.p99

    def test_sweep_monotone_oversubscription(self):
        results = oversubscription_sweep(
            [1.0, 2.0], base_fpgas=6, remote=RemoteNetworkModel(),
            requests_per_client=120)
        assert results[0].oversubscription == pytest.approx(1.0)
        assert results[1].oversubscription == pytest.approx(2.0)
        assert results[1].latency.mean >= results[0].latency.mean * 0.9

    def test_result_row(self):
        result = run_oversubscription_point(2, 2, requests_per_client=50)
        row = result.row()
        assert row["clients"] == 2.0
        assert "p99" in row
