"""Tests for the MLP substrate and DNN accelerator timing."""

import random

import numpy as np
import pytest

from repro.dnn.accelerator import DnnAccelerator, DnnAcceleratorConfig
from repro.dnn.mlp import Mlp, relu, softmax, synthetic_classification


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.array_equal(relu(x), [0.0, 0.0, 2.0])

    def test_softmax_sums_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probs.sum() == pytest.approx(1.0)

    def test_softmax_stable_for_large_inputs(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        assert np.all(np.isfinite(probs))


class TestMlp:
    def test_forward_shape(self):
        mlp = Mlp([16, 32, 4])
        out = mlp.forward(np.zeros((5, 16)))
        assert out.shape == (5, 4)

    def test_forward_rows_are_distributions(self):
        mlp = Mlp([8, 16, 3], seed=1)
        out = mlp.forward(np.random.default_rng(0).normal(size=(7, 8)))
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_parameter_count(self):
        mlp = Mlp([4, 8, 2])
        assert mlp.parameter_count == 4 * 8 + 8 + 8 * 2 + 2

    def test_madds(self):
        mlp = Mlp([4, 8, 2])
        assert mlp.madds_per_inference == 4 * 8 + 8 * 2

    def test_training_reduces_loss(self):
        x, labels = synthetic_classification(400, num_features=8,
                                             num_classes=3, seed=0)
        mlp = Mlp([8, 24, 3], seed=0)
        losses = mlp.fit(x, labels, epochs=20, seed=0)
        assert losses[-1] < losses[0] * 0.5

    def test_trained_model_accuracy(self):
        x, labels = synthetic_classification(600, num_features=8,
                                             num_classes=3, seed=1)
        mlp = Mlp([8, 24, 3], seed=1)
        mlp.fit(x, labels, epochs=30, seed=1)
        accuracy = float(np.mean(mlp.predict(x) == labels))
        assert accuracy > 0.85

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            Mlp([8])

    def test_forward_matches_manual_reference(self):
        mlp = Mlp([2, 3, 2], seed=5)
        x = np.array([[0.5, -0.2]])
        h = np.maximum(x @ mlp.weights[0] + mlp.biases[0], 0.0)
        logits = h @ mlp.weights[1] + mlp.biases[1]
        expected = np.exp(logits - logits.max())
        expected /= expected.sum()
        assert np.allclose(mlp.forward(x), expected)


class TestAccelerator:
    def test_mean_service_time_formula(self):
        config = DnnAcceleratorConfig(clock_hz=100e6, madds_per_cycle=1000,
                                      per_request_overhead=10e-6)
        accel = DnnAccelerator(config, madds_per_inference=1_000_000)
        assert accel.mean_service_time == pytest.approx(10e-6 + 10e-6)

    def test_capacity_is_inverse_service(self):
        accel = DnnAccelerator()
        assert accel.capacity_rps == pytest.approx(
            1.0 / accel.mean_service_time)

    def test_sampled_times_positive_and_near_mean(self):
        accel = DnnAccelerator()
        rng = random.Random(0)
        samples = [accel.sample_service_time(rng) for _ in range(2000)]
        assert all(s > 0 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(
            accel.mean_service_time, rel=0.05)

    def test_madds_inferred_from_model(self):
        mlp = Mlp([16, 64, 4])
        accel = DnnAccelerator(model=mlp)
        assert accel.madds_per_inference == mlp.madds_per_inference

    def test_infer_requires_model(self):
        with pytest.raises(RuntimeError):
            DnnAccelerator().infer(np.zeros(4))

    def test_infer_runs_real_model(self):
        mlp = Mlp([4, 8, 2], seed=0)
        accel = DnnAccelerator(model=mlp)
        out = accel.infer(np.zeros((1, 4)))
        assert out.shape == (1, 2)
