"""Tests for model-parallel DNN inference over LTL."""

import numpy as np
import pytest

from repro.core import ConfigurableCloud
from repro.dnn import DistributedMlp, Mlp, split_layers
from repro.net import TopologyConfig, idle


def make_pipeline(num_stages=3, layer_sizes=(16, 64, 32, 4), seed=6):
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=seed)
    hosts = list(range(num_stages))
    cloud.add_servers(hosts)
    client = cloud.add_server(100, enroll=False)
    model = Mlp(list(layer_sizes), seed=0)
    dmlp = DistributedMlp(cloud, hosts, model)
    return cloud, client, model, dmlp


class TestSplitLayers:
    def test_even_split(self):
        assert split_layers(4, 2) == [[0, 1], [2, 3]]

    def test_uneven_split_front_loads(self):
        assert split_layers(5, 2) == [[0, 1, 2], [3, 4]]

    def test_one_stage(self):
        assert split_layers(3, 1) == [[0, 1, 2]]

    def test_stage_per_layer(self):
        assert split_layers(3, 3) == [[0], [1], [2]]

    def test_too_many_stages_rejected(self):
        with pytest.raises(ValueError):
            split_layers(2, 3)

    def test_partition_is_complete(self):
        stages = split_layers(7, 3)
        flattened = [layer for stage in stages for layer in stage]
        assert flattened == list(range(7))


class TestDistributedInference:
    def test_output_matches_single_device(self):
        cloud, client, model, dmlp = make_pipeline()
        x = np.random.default_rng(1).normal(size=(1, 16))
        outputs = []
        dmlp.submit(x, callback=outputs.append, client_host=100)
        cloud.run(until=5e-3)
        assert len(outputs) == 1
        assert np.allclose(outputs[0], model.forward(x))

    def test_local_injection_matches_too(self):
        cloud, _client, model, dmlp = make_pipeline()
        x = np.random.default_rng(2).normal(size=(1, 16))
        outputs = []
        dmlp.submit(x, callback=outputs.append)  # co-located client
        cloud.run(until=5e-3)
        assert np.allclose(outputs[0], model.forward(x))

    def test_single_stage_pipeline(self):
        cloud, client, model, dmlp = make_pipeline(num_stages=1)
        x = np.zeros((1, 16))
        outputs = []
        dmlp.submit(x, callback=outputs.append, client_host=100)
        cloud.run(until=5e-3)
        assert np.allclose(outputs[0], model.forward(x))

    def test_many_inflight_all_complete(self):
        cloud, client, model, dmlp = make_pipeline()
        x = np.zeros((1, 16))
        for _ in range(25):
            dmlp.submit(x, client_host=100)
        cloud.run(until=0.1)
        assert dmlp.completed == 25
        assert dmlp.latency.count == 25

    def test_pipelining_beats_serial_latency_sum(self):
        """Throughput: N overlapped inferences finish far faster than
        N x single-inference latency."""
        cloud, client, model, dmlp = make_pipeline()
        x = np.zeros((1, 16))
        dmlp.submit(x, client_host=100)
        cloud.run(until=5e-3)
        single = dmlp.latency.samples[0]

        start = cloud.env.now
        for _ in range(20):
            dmlp.submit(x, client_host=100)
        cloud.run(until=start + 0.1)
        elapsed = max(dmlp.latency.samples[1:]) + 0  # max request latency
        # All 20 overlapped within much less than 20x the single latency.
        completion_span = cloud.env.now  # upper bound, loose
        assert dmlp.completed == 21
        assert elapsed < 20 * single

    def test_stage_madds_sum_to_model(self):
        cloud, _client, model, dmlp = make_pipeline()
        total = sum(dmlp.stage_madds(i) for i in range(len(dmlp.hosts)))
        assert total == model.madds_per_inference

    def test_latency_grows_with_chain_length(self):
        def single_latency(num_stages):
            cloud, client, model, dmlp = make_pipeline(
                num_stages=num_stages,
                layer_sizes=(16, 32, 32, 32, 4), seed=7)
            x = np.zeros((1, 16))
            dmlp.submit(x, client_host=100)
            cloud.run(until=10e-3)
            return dmlp.latency.samples[0]

        # More LTL hops and per-stage overheads => higher latency.
        assert single_latency(4) > single_latency(1)
