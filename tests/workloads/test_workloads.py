"""Tests for arrival processes and the five-day trace."""

import pytest

from repro.sim import Environment
from repro.workloads import (
    DiurnalTraceConfig,
    PoissonArrivals,
    apply_load_balancer_cap,
    closed_loop_arrivals,
    five_day_trace,
)


class TestPoissonArrivals:
    def test_generates_limit(self):
        env = Environment()
        count = []
        PoissonArrivals(env, rate_per_second=1000,
                        submit=lambda: count.append(env.now), limit=50)
        env.run()
        assert len(count) == 50

    def test_rate_approximates_target(self):
        env = Environment()
        times = []
        PoissonArrivals(env, rate_per_second=1000,
                        submit=lambda: times.append(env.now), limit=2000)
        env.run()
        duration = times[-1] - times[0]
        assert 2000 / duration == pytest.approx(1000, rel=0.15)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(Environment(), 0, lambda: None)


class TestClosedLoop:
    def test_concurrency_respected(self):
        env = Environment()
        active = []
        peak = []

        def one():
            def proc():
                active.append(1)
                peak.append(len(active))
                yield env.timeout(1.0)
                active.pop()
            return proc()

        closed_loop_arrivals(env, concurrency=3, run_one=one, total=12)
        env.run()
        assert max(peak) == 3
        assert len(peak) == 12

    def test_bad_concurrency(self):
        with pytest.raises(ValueError):
            closed_loop_arrivals(Environment(), 0, lambda: None, 10)


class TestFiveDayTrace:
    def test_length(self):
        config = DiurnalTraceConfig()
        trace = five_day_trace(config)
        assert len(trace) == config.days * config.windows_per_day

    def test_deterministic(self):
        a = five_day_trace(DiurnalTraceConfig(seed=9))
        b = five_day_trace(DiurnalTraceConfig(seed=9))
        assert [s.software_offered for s in a] == \
            [s.software_offered for s in b]

    def test_diurnal_variation_present(self):
        trace = five_day_trace()
        day0 = [s.software_offered for s in trace if s.day == 0]
        assert max(day0) > 1.4 * min(day0)

    def test_mean_load_near_base(self):
        trace = five_day_trace()
        mean = sum(s.software_offered for s in trace) / len(trace)
        assert mean == pytest.approx(1.0, rel=0.15)

    def test_fpga_dc_sees_higher_demand(self):
        config = DiurnalTraceConfig()
        trace = five_day_trace(config)
        assert all(s.fpga_offered == pytest.approx(
            s.software_offered * config.fpga_demand_multiplier)
            for s in trace)

    def test_loads_positive(self):
        assert all(s.software_offered > 0 for s in five_day_trace())

    def test_time_axis_monotone(self):
        trace = five_day_trace()
        times = [s.time_days for s in trace]
        assert times == sorted(times)
        assert times[-1] < 5.0

    def test_load_balancer_cap(self):
        assert apply_load_balancer_cap(2.5, 1.2) == 1.2
        assert apply_load_balancer_cap(0.8, 1.2) == 0.8
