"""Surge workload profiles and the NHPP (thinning) arrival process."""

import random

import pytest

from repro.sim import Environment
from repro.workloads import (
    DiurnalSpikeProfile,
    FlashCrowdProfile,
    VariableRateArrivals,
)


class TestFlashCrowdProfile:
    def test_piecewise_rates(self):
        p = FlashCrowdProfile(baseline_qps=100.0, surge_multiplier=5.0,
                              surge_start=1.0, surge_duration=2.0,
                              ramp=0.1)
        assert p.rate(0.5) == pytest.approx(100.0)
        assert p.rate(2.0) == pytest.approx(500.0)
        assert p.rate(10.0) == pytest.approx(100.0)
        # Mid-ramp is halfway between baseline and peak.
        assert p.rate(1.05) == pytest.approx(300.0)
        assert p.peak_qps == pytest.approx(500.0)
        assert p.surge_end == pytest.approx(3.0)

    def test_rate_never_exceeds_peak(self):
        p = FlashCrowdProfile(baseline_qps=50.0, surge_multiplier=4.0)
        times = [i * 1e-3 for i in range(int(5e3))]
        assert max(p.rate(t) for t in times) <= p.peak_qps + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdProfile(baseline_qps=0.0)
        with pytest.raises(ValueError):
            FlashCrowdProfile(baseline_qps=10.0, surge_multiplier=0.5)


class TestDiurnalSpikeProfile:
    def test_cycle_peaks_at_phase(self):
        p = DiurnalSpikeProfile(baseline_qps=100.0, amplitude=0.3,
                                period=2.0, peak_phase=0.5)
        assert p.rate(1.0) == pytest.approx(130.0)   # peak
        assert p.rate(0.0) == pytest.approx(70.0)    # trough
        assert p.peak_qps == pytest.approx(130.0)

    def test_spike_rides_the_cycle(self):
        p = DiurnalSpikeProfile(baseline_qps=100.0, amplitude=0.0,
                                spike_multiplier=3.0, spike_start=1.0,
                                spike_duration=0.5)
        assert p.rate(0.5) == pytest.approx(100.0)
        assert p.rate(1.2) == pytest.approx(300.0)
        assert p.rate(1.6) == pytest.approx(100.0)


class TestVariableRateArrivals:
    def test_mean_rate_matches_profile(self):
        env = Environment()
        count = [0]
        profile = FlashCrowdProfile(baseline_qps=1000.0,
                                    surge_multiplier=3.0,
                                    surge_start=1.0, surge_duration=1.0)
        VariableRateArrivals(env, profile.rate,
                             max_rate=profile.peak_qps * 1.001,
                             submit=lambda: count.__setitem__(
                                 0, count[0] + 1),
                             rng=random.Random(7), until=3.0)
        env.run()
        # Expected arrivals: 1000*1 + 3000*1 + 1000*1 (+ramp slivers).
        expected = 5000.0
        assert count[0] == pytest.approx(expected, rel=0.10)

    def test_deterministic_given_seed(self):
        times = []
        for _ in range(2):
            env = Environment()
            arrivals = []
            VariableRateArrivals(
                env, lambda t: 500.0, max_rate=500.0,
                submit=lambda: arrivals.append(env.now),
                rng=random.Random(3), until=1.0)
            env.run()
            times.append(arrivals)
        assert times[0] == times[1]

    def test_envelope_violation_raises(self):
        env = Environment()
        VariableRateArrivals(env, lambda t: 1000.0, max_rate=100.0,
                             submit=lambda: None,
                             rng=random.Random(0), until=1.0)
        with pytest.raises(ValueError, match="envelope"):
            env.run()

    def test_invalid_envelope(self):
        env = Environment()
        with pytest.raises(ValueError):
            VariableRateArrivals(env, lambda t: 1.0, max_rate=0.0,
                                 submit=lambda: None)
