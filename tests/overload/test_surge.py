"""End-to-end surge protection: the ISSUE 6 gates as a unit test.

A smaller, faster sibling of ``benchmarks/bench_overload_surge.py``:
deterministic seeds, one protected and one unprotected run of the same
flash crowd, asserting protection holds and its absence collapses.
"""

import random

import pytest

from repro.dnn.pool import DnnPool
from repro.overload import HedgeConfig, HedgeController, ServiceLevel
from repro.ranking.service import (
    AccelerationMode,
    OverloadConfig,
    RankingServiceConfig,
    RankingServer,
    run_surge,
    saturation_qps,
)
from repro.sim import Environment
from repro.workloads import FlashCrowdProfile


def surge_config(protected: bool) -> RankingServiceConfig:
    overload = OverloadConfig() if protected else OverloadConfig(
        admission_enabled=False, deadline_enforcement=False)
    return RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA,
                                overload=overload)


@pytest.fixture(scope="module")
def flash_crowd():
    capacity = saturation_qps(surge_config(protected=True))
    return FlashCrowdProfile(baseline_qps=0.6 * capacity,
                             surge_multiplier=5.0)


@pytest.fixture(scope="module")
def protected_result(flash_crowd):
    return run_surge(surge_config(True), flash_crowd, seed=42)


@pytest.fixture(scope="module")
def unprotected_result(flash_crowd):
    return run_surge(surge_config(False), flash_crowd, seed=42)


class TestProtectedSurge:
    def test_goodput_holds_through_the_surge(self, protected_result):
        pre = protected_result.phases["pre"]
        surge = protected_result.phases["surge"]
        assert pre.goodput_qps > 0
        assert surge.goodput_qps >= 0.85 * pre.goodput_qps

    def test_admitted_p99_bounded(self, protected_result):
        pre = protected_result.phases["pre"]
        surge = protected_result.phases["surge"]
        assert surge.latency.p99 <= 3.0 * pre.latency.p99

    def test_ladder_actually_engaged(self, protected_result):
        server = protected_result.server
        assert server.rejected > 0
        assert server.degraded_queries > 0

    def test_recovers_after_the_surge(self, protected_result):
        pre = protected_result.phases["pre"]
        post = protected_result.phases["post"]
        assert post.goodput_qps >= 0.9 * pre.goodput_qps

    def test_deterministic_replay(self, flash_crowd, protected_result):
        again = run_surge(surge_config(True), flash_crowd, seed=42)
        assert again.row() == protected_result.row()


class TestUnprotectedCollapse:
    def test_goodput_collapses(self, unprotected_result,
                               protected_result):
        """The regression guard: without the ladder the same crowd
        drives deadline-goodput to the floor — proving the protected
        numbers measure the protection, not a lenient workload."""
        pre = unprotected_result.phases["pre"]
        surge = unprotected_result.phases["surge"]
        assert surge.goodput_qps < 0.30 * pre.goodput_qps
        assert protected_result.phases["surge"].goodput_qps > \
            10 * surge.goodput_qps

    def test_queue_never_drains(self, unprotected_result):
        post = unprotected_result.phases["post"]
        # The unbounded queue is still digesting the crowd after it
        # passed; within-deadline completions stay collapsed.
        assert post.goodput_qps < 0.30 * \
            unprotected_result.phases["pre"].goodput_qps

    def test_nothing_was_shed(self, unprotected_result):
        server = unprotected_result.server
        assert server.rejected == 0
        assert server.degraded_queries == 0
        assert server.deadline_stats.total == 0


class TestRunSurgeContract:
    def test_requires_overload_config(self, flash_crowd):
        with pytest.raises(ValueError):
            run_surge(RankingServiceConfig(
                mode=AccelerationMode.LOCAL_FPGA), flash_crowd)


class TestHedgedPool:
    def test_hedging_tames_a_limplocked_fpga(self):
        """4-FPGA pool, one member 8x slow: hedging must cut P99 while
        staying inside its 5% extra-backend-load budget."""
        p99 = {}
        extra = {}
        for label in ("plain", "hedged"):
            env = Environment()
            pool = DnnPool(env, num_fpgas=4, rng=random.Random(1))
            pool.set_slow(0, 8.0)
            hedge = HedgeController(HedgeConfig())
            mean = pool.accelerators[0].mean_service_time
            period = mean / (0.4 * pool.num_fpgas)

            def client(env, pool=pool, hedge=hedge, label=label):
                for _ in range(1000):
                    if label == "hedged":
                        env.process(pool.request_hedged(hedge))
                    else:
                        env.process(pool.request())
                    yield env.timeout(period)

            env.process(client(env))
            env.run()
            p99[label] = pool.latency.p99
            extra[label] = pool.backend_served - pool.completed
            if label == "hedged":
                assert hedge.stats.hedge_fraction <= 0.05 + 1e-9
        assert p99["hedged"] < p99["plain"]
        assert extra["plain"] == 0
        assert extra["hedged"] <= 0.05 * 1000

    def test_deadline_drops_in_pool(self):
        env = Environment()
        pool = DnnPool(env, num_fpgas=1, rng=random.Random(0))

        def client(env):
            # Already-expired work is refused at the door.
            result = yield from pool.request(deadline=-1.0)
            assert result is None

        env.process(client(env))
        env.run()
        assert pool.deadline_drops == 1
        assert pool.completed == 0
