"""Hedged-request controller: P95 delay, budget, win accounting."""

import pytest

from repro.overload import HedgeConfig, HedgeController


class TestHedgeDelay:
    def test_no_delay_until_min_samples(self):
        hedge = HedgeController(HedgeConfig(min_samples=50))
        for _ in range(49):
            hedge.observe(1e-3)
        assert hedge.hedge_delay() is None
        hedge.observe(1e-3)
        assert hedge.hedge_delay() is not None

    def test_delay_tracks_p95(self):
        hedge = HedgeController(HedgeConfig(min_samples=50))
        for i in range(1000):
            hedge.observe(1e-3 if i % 20 else 10e-3)  # 5% slow tail
        delay = hedge.hedge_delay()
        # P95 sits at the fast/slow boundary; the delay must be at
        # least the typical latency and well under the slow tail.
        assert 1e-3 <= delay <= 10e-3

    def test_min_delay_floor(self):
        hedge = HedgeController(HedgeConfig(min_samples=10,
                                            min_delay=5e-3))
        for _ in range(20):
            hedge.observe(1e-6)
        assert hedge.hedge_delay() == pytest.approx(5e-3)


class TestHedgeBudget:
    def test_budget_is_a_hard_fraction_of_primaries(self):
        hedge = HedgeController(HedgeConfig(budget_fraction=0.05))
        for _ in range(100):
            hedge.on_primary()
        issued = 0
        while hedge.try_acquire_hedge():
            issued += 1
        # floor(0.05 * 100) = 5 hedges, never more.
        assert issued == 5
        assert hedge.stats.hedges_suppressed_budget >= 1

    def test_budget_grows_with_primaries(self):
        hedge = HedgeController(HedgeConfig(budget_fraction=0.05))
        for _ in range(19):
            hedge.on_primary()
        assert not hedge.try_acquire_hedge()  # floor(0.95) = 0
        hedge.on_primary()
        assert hedge.try_acquire_hedge()      # floor(1.0) = 1
        assert not hedge.try_acquire_hedge()

    def test_hedge_fraction_stat(self):
        hedge = HedgeController(HedgeConfig(budget_fraction=0.10))
        for _ in range(100):
            hedge.on_primary()
        for _ in range(10):
            assert hedge.try_acquire_hedge()
        assert hedge.stats.hedge_fraction == pytest.approx(0.10)

    def test_win_accounting(self):
        hedge = HedgeController(HedgeConfig())
        hedge.on_primary()
        hedge.on_win(hedge_won=True, loser_cancelled_unstarted=True)
        hedge.on_primary()
        hedge.on_win(hedge_won=False, loser_cancelled_unstarted=False)
        assert hedge.stats.hedge_wins == 1
        assert hedge.stats.primary_wins == 1
        assert hedge.stats.hedges_cancelled_unstarted == 1
