"""Admission control: CoDel standing-queue detection + the ladder."""

import pytest

from repro.overload import (
    AdmissionConfig,
    AdmissionController,
    CoDelController,
    ServiceLevel,
)


def feed(controller, delay, start, count, spacing):
    """Feed ``count`` equal delays spaced ``spacing`` apart."""
    t = start
    for _ in range(count):
        controller.on_delay(delay, t) if isinstance(
            controller, CoDelController) \
            else controller.on_queue_delay(delay, t)
        t += spacing
    return t


class TestCoDel:
    def test_transient_burst_does_not_engage(self):
        cfg = AdmissionConfig(target_delay=1e-3, interval=50e-3)
        codel = CoDelController(cfg)
        # Delays oscillate: every interval contains one below-target
        # sample, so the *minimum* stays under target.
        t = 0.0
        for i in range(100):
            delay = 5e-3 if i % 5 else 0.1e-3
            codel.on_delay(delay, t)
            t += 5e-3
        assert not codel.engaged

    def test_standing_queue_engages_after_full_interval(self):
        cfg = AdmissionConfig(target_delay=1e-3, interval=50e-3)
        codel = CoDelController(cfg)
        t = feed(codel, delay=5e-3, start=0.0, count=10, spacing=10e-3)
        assert not codel.engaged  # min above target for < full interval
        feed(codel, delay=5e-3, start=t, count=10, spacing=10e-3)
        assert codel.engaged

    def test_disengages_when_queue_drains(self):
        cfg = AdmissionConfig(target_delay=1e-3, interval=50e-3)
        codel = CoDelController(cfg)
        t = feed(codel, delay=5e-3, start=0.0, count=30, spacing=10e-3)
        assert codel.engaged
        feed(codel, delay=0.1e-3, start=t, count=10, spacing=10e-3)
        assert not codel.engaged


class TestAdmissionController:
    def test_all_full_when_idle(self):
        ctrl = AdmissionController(AdmissionConfig())
        for i in range(50):
            assert ctrl.admit(i * 1e-3) is ServiceLevel.FULL
        assert ctrl.stats.shed == 0

    def test_predicted_delay_sheds_at_the_door(self):
        """The instantaneous prediction must shed without waiting for
        the (lagging) CoDel signal."""
        cfg = AdmissionConfig(target_delay=0.5e-3, shed_threshold=2.0)
        ctrl = AdmissionController(cfg)
        assert ctrl.admit(0.0, predicted_delay=5e-3) is ServiceLevel.SHED
        assert ctrl.stats.shed == 1

    def test_predicted_delay_degrades_below_shed_bound(self):
        cfg = AdmissionConfig(target_delay=0.5e-3, shed_threshold=2.0)
        ctrl = AdmissionController(cfg)
        # Above target but below target*shed_threshold: degrade.
        level = ctrl.admit(0.0, predicted_delay=0.75e-3)
        assert level is ServiceLevel.DEGRADED

    def test_unhealthy_fpga_degrades_immediately(self):
        cfg = AdmissionConfig(control_period=1e-3)
        ctrl = AdmissionController(cfg)
        ctrl.fpga_healthy = False
        # Let one control period elapse so the ladder re-evaluates.
        ctrl.on_queue_delay(0.0, 2e-3)
        assert ctrl.admit(3e-3) is ServiceLevel.DEGRADED

    def test_shed_fraction_is_deterministic_debt(self):
        ctrl = AdmissionController(AdmissionConfig())
        ctrl.shed_fraction = 0.4
        levels = [ctrl.admit(0.0) for _ in range(10)]
        # Debt accumulator: exactly 4 of every 10, no randomness.
        assert levels.count(ServiceLevel.SHED) == 4
        ctrl2 = AdmissionController(AdmissionConfig())
        ctrl2.shed_fraction = 0.4
        assert [ctrl2.admit(0.0) for _ in range(10)] == levels

    def test_shed_fraction_ramps_under_standing_overload(self):
        cfg = AdmissionConfig(target_delay=0.5e-3, interval=20e-3,
                              control_period=5e-3)
        ctrl = AdmissionController(cfg)
        feed(ctrl, delay=5e-3, start=0.0, count=100, spacing=5e-3)
        assert ctrl.shed_fraction > 0.0
        assert ctrl.level is ServiceLevel.DEGRADED
        # And decays once the queue drains.
        feed(ctrl, delay=0.05e-3, start=1.0, count=100, spacing=5e-3)
        assert ctrl.shed_fraction == 0.0
        assert ctrl.level is ServiceLevel.FULL

    def test_shed_fraction_never_exceeds_cap(self):
        cfg = AdmissionConfig(target_delay=0.5e-3, interval=20e-3,
                              control_period=5e-3, max_shed_fraction=0.9)
        ctrl = AdmissionController(cfg)
        feed(ctrl, delay=50e-3, start=0.0, count=500, spacing=5e-3)
        assert ctrl.shed_fraction <= 0.9 + 1e-12
