"""Deadline primitives and their propagation through the stack."""

import pytest

from repro.ltl import LtlConfig, LtlEngine, DirectTransport, connect_pair
from repro.overload import (
    MAX_DEADLINE_US,
    NO_DEADLINE_US,
    Deadline,
    DeadlineStats,
    decode_deadline_us,
    encode_deadline_us,
    expires_at_of,
)
from repro.router.elastic_router import ElasticRouter
from repro.sim import Environment


class TestDeadline:
    def test_from_budget(self):
        d = Deadline.from_budget(now=2.0, budget=0.008)
        assert d.expires_at == pytest.approx(2.008)
        assert d.budget == pytest.approx(0.008)
        assert d.issued_at == pytest.approx(2.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.from_budget(now=0.0, budget=0.0)
        with pytest.raises(ValueError):
            Deadline.from_budget(now=0.0, budget=-1.0)

    def test_expiry_is_strict(self):
        d = Deadline.from_budget(now=0.0, budget=1.0)
        assert not d.expired(1.0)     # exactly at the deadline: still ok
        assert d.expired(1.0 + 1e-9)
        assert d.remaining(0.25) == pytest.approx(0.75)

    def test_expires_at_of_normalizes(self):
        d = Deadline.from_budget(now=0.0, budget=0.5)
        assert expires_at_of(d) == pytest.approx(0.5)
        assert expires_at_of(0.75) == pytest.approx(0.75)
        assert expires_at_of(None) is None


class TestWireEncoding:
    def test_none_is_zero(self):
        assert encode_deadline_us(None) == NO_DEADLINE_US
        assert decode_deadline_us(NO_DEADLINE_US) is None

    def test_round_trip_microseconds(self):
        expiry = 1.234567
        us = encode_deadline_us(expiry)
        assert decode_deadline_us(us) == pytest.approx(expiry, abs=1e-6)

    def test_tiny_deadline_stays_a_deadline(self):
        # Rounding to 0 would silently mean "no deadline" on the wire.
        assert encode_deadline_us(1e-9) == 1

    def test_saturates_at_u32(self):
        assert encode_deadline_us(1e9) == MAX_DEADLINE_US

    def test_stats_attribute_drops(self):
        stats = DeadlineStats()
        stats.drop("core_queue")
        stats.drop("core_queue")
        stats.drop("remote")
        assert stats.dropped == {"core_queue": 2, "remote": 1}
        assert stats.total == 3


def make_ltl_pair(env):
    transport = DirectTransport(env, delay=1e-6)
    a = LtlEngine(env, host_index=0, config=LtlConfig())
    b = LtlEngine(env, host_index=1, config=LtlConfig())
    transport.register(a)
    transport.register(b)
    conn_ab, _ = connect_pair(a, b)
    return a, b, conn_ab


class TestLtlPropagation:
    def test_deadline_rides_the_frame_header(self):
        env = Environment()
        a, b, conn = make_ltl_pair(env)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        a.send_message(conn, b"work", 4, deadline=1.0)
        env.run(until=1e-3)
        assert got == [b"work"]
        assert a.stats.deadline_expired_tx == 0
        assert b.stats.deadline_expired_rx == 0

    def test_expired_at_send_refused_before_seq(self):
        """Tx-side refusal happens before sequence assignment, so the
        go-back-N window stays gapless."""
        env = Environment()
        a, b, conn = make_ltl_pair(env)
        got = []
        b.on_message = lambda c, p, n: got.append(p)

        def driver():
            yield env.timeout(0.5)
            # Expired half a second ago.
            assert a.send_message(conn, b"late", 4, deadline=0.25) == -1
            # A live message right after still flows in order.
            a.send_message(conn, b"fresh", 5, deadline=1.0)

        env.process(driver())
        env.run(until=0.6)
        assert a.stats.deadline_expired_tx == 1
        assert got == [b"fresh"]

    def test_expired_in_flight_dropped_at_delivery(self):
        """A deadline that expires while the message crosses the wire is
        dropped at the receiver (still ACKed — the protocol is fine,
        the *work* is dead)."""
        env = Environment()
        transport = DirectTransport(env, delay=5e-4)  # slow wire
        a = LtlEngine(env, host_index=0, config=LtlConfig())
        b = LtlEngine(env, host_index=1, config=LtlConfig())
        transport.register(a)
        transport.register(b)
        conn, _ = connect_pair(a, b)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        # Expires in 0.1 ms; the wire takes 0.5 ms.
        a.send_message(conn, b"doomed", 6, deadline=1e-4)
        env.run(until=5e-3)
        assert got == []
        assert b.stats.deadline_expired_rx == 1
        # The sender saw the ACK: nothing left unacked, no failure.
        state = a.send_table.lookup(conn)
        assert not state.unacked


class TestRouterPropagation:
    def test_expired_message_dropped_at_delivery(self):
        env = Environment()
        router = ElasticRouter(env, name="er", num_ports=2)
        got = []
        router.set_endpoint(1, lambda msg: got.append(msg))

        def driver():
            yield env.timeout(1e-3)
            router.send(0, 1, payload=b"dead", length_bytes=64,
                        deadline=5e-4)
            router.send(0, 1, payload=b"live", length_bytes=64,
                        deadline=1.0)

        env.process(driver())
        env.run(until=2e-3)
        assert [m.payload for m in got] == [b"live"]
        assert router.stats.deadline_drops == 1


class TestRxDeadlineAbandonsSpan:
    def test_rx_expired_message_span_counted_by_recorder(self):
        """A traced message whose deadline expires in flight must close
        its span at the rx drop point — the recorder counts it instead
        of leaking an open span (and the residual gate staying honest)."""
        from repro.trace import TraceRecorder
        env = Environment()
        transport = DirectTransport(env, delay=5e-4)  # slow wire
        a = LtlEngine(env, host_index=0, config=LtlConfig())
        b = LtlEngine(env, host_index=1, config=LtlConfig())
        transport.register(a)
        transport.register(b)
        conn, _ = connect_pair(a, b)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        recorder = TraceRecorder()
        ctx = recorder.start(env.now)
        a.send_message(conn, b"doomed", 6, deadline=1e-4, trace=ctx)
        env.run(until=5e-3)
        assert got == []
        assert b.stats.deadline_expired_rx == 1
        assert recorder.abandoned == 1
        assert ctx.closed
