"""Mode + hash correctness against NIST SP 800-38A/38D and RFC vectors."""

import pytest

from repro.crypto.gf128 import block_to_int, gf_mult, ghash, int_to_block
from repro.crypto.modes import (
    AuthenticationError,
    cbc_decrypt,
    cbc_encrypt,
    cbc_hmac_decrypt,
    cbc_hmac_encrypt,
    ctr_crypt,
    gcm_decrypt,
    gcm_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.sha1 import hmac_sha1, sha1

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
NIST_PT = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a"
                        "ae2d8a571e03ac9c9eb76fac45af8e51")


class TestPkcs7:
    def test_pad_length_multiple(self):
        assert len(pkcs7_pad(b"abc")) == 16
        assert len(pkcs7_pad(bytes(16))) == 32

    def test_roundtrip(self):
        for n in range(0, 33):
            data = bytes(range(n % 256))[:n]
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_bad_padding_detected(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(16))
        with pytest.raises(ValueError):
            pkcs7_unpad(b"short")


class TestCbc:
    def test_nist_f21_blocks(self):
        ct = cbc_encrypt(KEY, IV, NIST_PT)
        assert ct[:16].hex() == "7649abac8119b246cee98e9b12e9197d"
        assert ct[16:32].hex() == "5086cb9b507219ee95db113a917678b2"

    def test_roundtrip_odd_lengths(self):
        for n in (0, 1, 15, 16, 17, 100):
            data = bytes(range(n % 256))[:n]
            assert cbc_decrypt(KEY, IV, cbc_encrypt(KEY, IV, data)) == data

    def test_iv_must_be_block_sized(self):
        with pytest.raises(ValueError):
            cbc_encrypt(KEY, b"short", b"data")

    def test_ciphertext_block_multiple_required(self):
        with pytest.raises(ValueError):
            cbc_decrypt(KEY, IV, b"not-a-multiple!")

    def test_same_plaintext_different_iv_differs(self):
        other_iv = bytes(16)
        assert cbc_encrypt(KEY, IV, b"hello") != \
            cbc_encrypt(KEY, other_iv, b"hello")


class TestCtr:
    COUNTER = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")

    def test_nist_f51(self):
        ct = ctr_crypt(KEY, self.COUNTER, NIST_PT)
        assert ct[:16].hex() == "874d6191b620e3261bef6864990db6ce"
        assert ct[16:32].hex() == "9806f66b7970fdff8617187bb9fffdff"

    def test_involution(self):
        data = b"stream cipher mode" * 3
        assert ctr_crypt(KEY, self.COUNTER,
                         ctr_crypt(KEY, self.COUNTER, data)) == data


class TestGcm:
    # NIST GCM test case 4 (AES-128, with AAD).
    K = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    N = bytes.fromhex("cafebabefacedbaddecaf888")
    PT = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39")
    AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    CT = bytes.fromhex(
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091")
    TAG = bytes.fromhex("5bc94fbc3221a5db94fae95ae7121a47")

    def test_nist_case4_encrypt(self):
        ct, tag = gcm_encrypt(self.K, self.N, self.PT, self.AAD)
        assert ct == self.CT and tag == self.TAG

    def test_nist_case1_empty(self):
        ct, tag = gcm_encrypt(bytes(16), bytes(12), b"")
        assert ct == b""
        assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"

    def test_decrypt_verifies(self):
        assert gcm_decrypt(self.K, self.N, self.CT, self.TAG,
                           self.AAD) == self.PT

    def test_tampered_ciphertext_rejected(self):
        bad = bytearray(self.CT)
        bad[0] ^= 1
        with pytest.raises(AuthenticationError):
            gcm_decrypt(self.K, self.N, bytes(bad), self.TAG, self.AAD)

    def test_tampered_tag_rejected(self):
        bad = bytearray(self.TAG)
        bad[-1] ^= 1
        with pytest.raises(AuthenticationError):
            gcm_decrypt(self.K, self.N, self.CT, bytes(bad), self.AAD)

    def test_wrong_aad_rejected(self):
        with pytest.raises(AuthenticationError):
            gcm_decrypt(self.K, self.N, self.CT, self.TAG, b"other")

    def test_nonce_must_be_12_bytes(self):
        with pytest.raises(ValueError):
            gcm_encrypt(self.K, bytes(16), b"x")


class TestGf128:
    def test_mult_identity(self):
        one = 1 << 127  # x^0 in the reflected representation
        x = block_to_int(bytes(range(16)))
        assert gf_mult(x, one) == x

    def test_mult_commutative(self):
        a = block_to_int(bytes(range(16)))
        b = block_to_int(bytes(range(16, 32)))
        assert gf_mult(a, b) == gf_mult(b, a)

    def test_mult_zero(self):
        assert gf_mult(0, 12345) == 0

    def test_ghash_requires_block_multiple(self):
        with pytest.raises(ValueError):
            ghash(bytes(16), b"odd")

    def test_block_int_roundtrip(self):
        raw = bytes(range(16))
        assert int_to_block(block_to_int(raw)) == raw


class TestSha1:
    def test_fips_vectors(self):
        assert sha1(b"abc").hex() == \
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        assert sha1(b"").hex() == \
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        assert sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex() == \
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    def test_million_a(self):
        assert sha1(b"a" * 1_000_000).hex() == \
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"

    def test_hmac_rfc2202_case1(self):
        assert hmac_sha1(b"\x0b" * 20, b"Hi There").hex() == \
            "b617318655057264e28bc0b6fb378c8ef146be00"

    def test_hmac_rfc2202_case2(self):
        assert hmac_sha1(b"Jefe", b"what do ya want for nothing?").hex() \
            == "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"

    def test_hmac_long_key(self):
        # Keys longer than the block size are hashed first (RFC case 6).
        key = b"\xaa" * 80
        msg = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac_sha1(key, msg).hex() == \
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"


class TestCbcHmacComposite:
    def test_roundtrip(self):
        ct, mac = cbc_hmac_encrypt(KEY, b"mac-key", IV, b"payload" * 10)
        assert cbc_hmac_decrypt(KEY, b"mac-key", IV, ct, mac) == \
            b"payload" * 10

    def test_bad_mac_rejected(self):
        ct, mac = cbc_hmac_encrypt(KEY, b"mac-key", IV, b"payload")
        with pytest.raises(AuthenticationError):
            cbc_hmac_decrypt(KEY, b"mac-key", IV, ct,
                             bytes(len(mac)))

    def test_wrong_mac_key_rejected(self):
        ct, mac = cbc_hmac_encrypt(KEY, b"mac-key", IV, b"payload")
        with pytest.raises(AuthenticationError):
            cbc_hmac_decrypt(KEY, b"other", IV, ct, mac)
