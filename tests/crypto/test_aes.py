"""AES correctness against FIPS-197 vectors."""

import pytest

from repro.crypto.aes import AES, INV_SBOX, SBOX


class TestSbox:
    def test_known_entries(self):
        # FIPS-197 table values.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_inverse_is_inverse(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))


class TestFips197:
    PT = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ct = AES(key).encrypt_block(self.PT)
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192_appendix_c2(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f1011121314151617")
        ct = AES(key).encrypt_block(self.PT)
        assert ct.hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256_appendix_c3(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f"
                            "101112131415161718191a1b1c1d1e1f")
        ct = AES(key).encrypt_block(self.PT)
        assert ct.hex() == "8ea2b7ca516745bfeafc49904b496089"

    def test_fips197_example_key(self):
        # The worked example in FIPS-197 section B.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert AES(key).encrypt_block(pt).hex() == \
            "3925841d02dc09fbdc118597196a0b32"


class TestRoundtrip:
    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts_encrypt(self, key_len):
        key = bytes(range(key_len))
        cipher = AES(key)
        for i in range(5):
            block = bytes((i * 17 + j) % 256 for j in range(16))
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_distinct_blocks_distinct_ciphertexts(self):
        cipher = AES(bytes(16))
        a = cipher.encrypt_block(bytes(16))
        b = cipher.encrypt_block(b"\x01" + bytes(15))
        assert a != b


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            AES(bytes(15))

    def test_bad_block_length(self):
        cipher = AES(bytes(16))
        with pytest.raises(ValueError):
            cipher.encrypt_block(bytes(15))
        with pytest.raises(ValueError):
            cipher.decrypt_block(bytes(17))

    def test_round_counts(self):
        assert AES(bytes(16)).rounds == 10
        assert AES(bytes(24)).rounds == 12
        assert AES(bytes(32)).rounds == 14
