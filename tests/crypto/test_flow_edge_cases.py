"""Edge cases in the flow tap: DRAM-resident entries, latency hook,
nonce/IV plumbing, and oversized flow tables."""

import pytest

from repro.crypto import (
    EncryptedPayload,
    EncryptionTap,
    FlowKey,
    FlowTable,
    FpgaCryptoEngine,
)
from repro.net.packet import make_udp_packet


def make_flow_packet(payload=b"p" * 64, src_port=10, dst_port=20):
    return make_udp_packet(
        0, 1, "10.0.0.1", "10.0.0.2", "02:00:00:00:00:00",
        "02:00:00:00:00:01", src_port, dst_port, payload)


class TestLatencyHook:
    def test_no_flow_no_latency(self):
        tap = EncryptionTap()
        packet = make_flow_packet()
        assert tap._latency(packet) == 0.0

    def test_sram_flow_latency_is_engine_latency(self):
        tap = EncryptionTap()
        packet = make_flow_packet()
        tap.flows.setup_flow(FlowKey.of_packet(packet), bytes(16))
        expected = tap.engine.latency("aes-gcm-128",
                                      packet.payload_bytes)
        assert tap._latency(packet) == pytest.approx(expected)

    def test_dram_flow_pays_lookup(self):
        table = FlowTable(sram_capacity=0)
        tap = EncryptionTap(flow_table=table)
        packet = make_flow_packet()
        table.setup_flow(FlowKey.of_packet(packet), bytes(16))
        sram_equiv = tap.engine.latency("aes-gcm-128",
                                        packet.payload_bytes)
        assert tap._latency(packet) == pytest.approx(
            sram_equiv + table.dram_lookup_latency)


class TestOutboundInbound:
    def test_outbound_changes_wire_size(self):
        tap = EncryptionTap()
        packet = make_flow_packet(payload=b"z" * 100)
        tap.flows.setup_flow(FlowKey.of_packet(packet), bytes(16))
        before = packet.payload_bytes
        tap.outbound(packet)
        assert isinstance(packet.payload, EncryptedPayload)
        # GCM adds 12 B nonce + 16 B tag.
        assert packet.payload_bytes == before + 28

    def test_inbound_passthrough_for_foreign_encrypted_flow(self):
        """A packet encrypted for someone else's flow bridges through
        untouched (we cannot decrypt it)."""
        tap_owner = EncryptionTap()
        packet = make_flow_packet()
        tap_owner.flows.setup_flow(FlowKey.of_packet(packet), bytes(16))
        tap_owner.outbound(packet)

        stranger = EncryptionTap()  # no flow installed
        result = stranger.inbound(packet)
        assert result is packet
        assert isinstance(result.payload, EncryptedPayload)
        assert stranger.decrypted == 0

    def test_outbound_skips_non_bytes_payload(self):
        tap = EncryptionTap()
        packet = make_flow_packet()
        tap.flows.setup_flow(FlowKey.of_packet(packet), bytes(16))
        packet.payload = {"opaque": True}
        packet.payload_bytes = 64
        tap.outbound(packet)
        assert packet.payload == {"opaque": True}
        assert tap.encrypted == 0

    def test_distinct_nonces_produce_distinct_ciphertexts(self):
        tap = EncryptionTap()
        key = FlowKey("10.0.0.1", "10.0.0.2", 10, 20)
        tap.flows.setup_flow(key, bytes(16))
        ct = set()
        for _ in range(5):
            packet = make_flow_packet(payload=b"same plaintext")
            tap.outbound(packet)
            ct.add(bytes(packet.payload.ciphertext))
        assert len(ct) == 5

    def test_cbc_suite_roundtrip_through_tap(self):
        tap = EncryptionTap()
        packet = make_flow_packet(payload=b"cbc payload " * 8)
        key = FlowKey.of_packet(packet)
        tap.flows.setup_flow(key, bytes(16), mac_key=b"m",
                             suite="aes-cbc-128-sha1")
        tap.outbound(packet)
        assert packet.payload.suite == "aes-cbc-128-sha1"
        result = tap.inbound(packet)
        assert result.payload == b"cbc payload " * 8


class TestFlowKey:
    def test_of_packet_requires_udp(self):
        from repro.net.packet import EthernetHeader, Packet
        bare = Packet(eth=EthernetHeader("02:00:00:00:00:00",
                                         "02:00:00:00:00:01"),
                      payload=b"x")
        assert FlowKey.of_packet(bare) is None

    def test_reversed_is_involution(self):
        key = FlowKey("10.0.0.1", "10.0.0.2", 10, 20)
        assert key.reversed().reversed() == key
