"""Tests for §IV timing models and the transparent per-flow tap."""

import pytest

from repro.crypto import (
    EncryptedPayload,
    EncryptionTap,
    FlowKey,
    FlowTable,
    FpgaCryptoEngine,
    SoftwareCryptoModel,
)
from repro.fpga import Shell
from repro.net import DatacenterFabric, TopologyConfig, idle
from repro.sim import Environment


class TestSoftwareModel:
    """The paper's §IV arithmetic."""

    def test_gcm128_five_cores_at_40g(self):
        model = SoftwareCryptoModel()
        cores = model.cores_for_line_rate("aes-gcm-128", 40e9,
                                          full_duplex=True)
        assert cores == pytest.approx(5.25, abs=0.01)
        assert round(cores) == 5

    def test_cbc_sha1_fifteen_cores_full_duplex(self):
        model = SoftwareCryptoModel()
        cores = model.cores_for_line_rate("aes-cbc-128-sha1", 40e9,
                                          full_duplex=True)
        assert cores >= 15.0 - 1e-9

    def test_half_duplex_halves_cores(self):
        model = SoftwareCryptoModel()
        assert model.cores_for_line_rate("aes-gcm-128", full_duplex=False) \
            == pytest.approx(2.625, abs=0.01)

    def test_software_cbc_sha1_latency_4us(self):
        model = SoftwareCryptoModel()
        assert model.packet_latency("aes-cbc-128-sha1", 1500) \
            == pytest.approx(4.0e-6, rel=0.02)

    def test_gcm_latency_below_cbc(self):
        model = SoftwareCryptoModel()
        assert model.packet_latency("aes-gcm-128", 1500) < \
            model.packet_latency("aes-cbc-128-sha1", 1500)

    def test_256_slower_than_128(self):
        model = SoftwareCryptoModel()
        assert model.cores_for_line_rate("aes-gcm-256") > \
            model.cores_for_line_rate("aes-gcm-128")

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError):
            SoftwareCryptoModel().packet_latency("rot13", 100)

    def test_ceiling_helper(self):
        model = SoftwareCryptoModel()
        assert model.cores_for_line_rate_int("aes-gcm-128") == 6


class TestFpgaEngine:
    def test_cbc_sha1_11us_for_1500B(self):
        """'The worst case half-duplex FPGA crypto latency for
        AES-CBC-128-SHA1 is 11 us for a 1500B packet.'"""
        engine = FpgaCryptoEngine()
        assert engine.cbc_sha1_latency(1500) == pytest.approx(
            11e-6, rel=0.01)

    def test_gcm_much_faster_than_cbc(self):
        """GCM pipelines perfectly: no 33-cycle interleave penalty."""
        engine = FpgaCryptoEngine()
        assert engine.gcm_latency(1500) < engine.cbc_sha1_latency(1500) / 10

    def test_fpga_cbc_slower_than_software_latency(self):
        """The paper's honest caveat: FPGA CBC *latency* (11 us) loses to
        software (4 us) even though FPGA throughput wins."""
        engine = FpgaCryptoEngine()
        software = SoftwareCryptoModel()
        assert engine.cbc_sha1_latency(1500) > \
            software.packet_latency("aes-cbc-128-sha1", 1500)

    def test_throughput_is_line_rate(self):
        engine = FpgaCryptoEngine()
        assert engine.throughput_bps("aes-gcm-128") >= 38e9
        assert engine.throughput_bps("aes-cbc-128-sha1") >= 38e9

    def test_latency_dispatch(self):
        engine = FpgaCryptoEngine()
        assert engine.latency("aes-gcm-128", 1500) == \
            engine.gcm_latency(1500)
        with pytest.raises(KeyError):
            engine.latency("des", 100)

    def test_cores_freed(self):
        engine = FpgaCryptoEngine()
        software = SoftwareCryptoModel()
        assert engine.cpu_cores_freed("aes-cbc-128-sha1", software) >= 15


class TestFlowTable:
    def test_lookup_both_directions(self):
        table = FlowTable()
        key = FlowKey("10.0.0.1", "10.0.0.2", 100, 200)
        entry = table.setup_flow(key, bytes(16))
        pkt_key = key.reversed()
        assert pkt_key.src_ip == "10.0.0.2"
        # lookup by reversed key finds the same entry
        assert table._flows.get(key) is entry

    def test_sram_overflow_to_dram(self):
        table = FlowTable(sram_capacity=2)
        entries = [
            table.setup_flow(FlowKey("10.0.0.1", "10.0.0.2", i, 1),
                             bytes(16))
            for i in range(4)]
        assert [e.in_sram for e in entries] == [True, True, False, False]

    def test_nonce_counter_monotone(self):
        table = FlowTable()
        entry = table.setup_flow(
            FlowKey("10.0.0.1", "10.0.0.2", 1, 2), bytes(16))
        nonces = {entry.next_nonce() for _ in range(100)}
        assert len(nonces) == 100

    def test_remove_flow(self):
        table = FlowTable()
        key = FlowKey("10.0.0.1", "10.0.0.2", 1, 2)
        table.setup_flow(key, bytes(16))
        table.remove_flow(key)
        assert len(table) == 0


class TestEncryptionTapEndToEnd:
    def _pair_with_flow(self, suite="aes-gcm-128"):
        env = Environment()
        fabric = DatacenterFabric(env, TopologyConfig(background=idle()))
        a = Shell(env, 0, fabric)
        b = Shell(env, 1, fabric)
        tap_a, tap_b = EncryptionTap(), EncryptionTap()
        tap_a.install(a.bridge)
        tap_b.install(b.bridge)
        packet = a.attachment.make_packet(
            1, b"confidential " * 30, src_port=4242, dst_port=4343)
        key = FlowKey.of_packet(packet)
        secret = bytes(range(16))
        tap_a.flows.setup_flow(key, secret, mac_key=b"mac", suite=suite)
        tap_b.flows.setup_flow(key, secret, mac_key=b"mac", suite=suite)
        return env, a, b, tap_a, tap_b, packet

    @pytest.mark.parametrize("suite", ["aes-gcm-128", "aes-cbc-128-sha1"])
    def test_transparent_roundtrip(self, suite):
        env, a, b, tap_a, tap_b, packet = self._pair_with_flow(suite)
        got = []
        b.nic_receive = lambda p: got.append(p.payload)
        a.send_from_nic(packet)
        env.run(until=1e-3)
        assert got == [b"confidential " * 30]
        assert tap_a.encrypted == 1 and tap_b.decrypted == 1

    def test_ciphertext_on_the_wire(self):
        """Between the taps the payload really is encrypted."""
        env, a, b, tap_a, tap_b, packet = self._pair_with_flow()
        seen_on_wire = []
        original_receive = b._receive_from_tor

        def snoop(pkt):
            seen_on_wire.append(pkt.payload)
            original_receive(pkt)

        b.attachment.fabric._handlers[1] = snoop
        # Re-wire the TOR port delivery to the snoop.
        coords = b.attachment.fabric.topology.coords(1)
        tor = b.attachment.fabric.topology.tor(coords.pod, coords.tor)
        tor.ports[1].deliver = snoop
        b.nic_receive = lambda p: None
        a.send_from_nic(packet)
        env.run(until=1e-3)
        assert len(seen_on_wire) == 1
        assert isinstance(seen_on_wire[0], EncryptedPayload)

    def test_non_flow_traffic_untouched(self):
        env, a, b, tap_a, tap_b, _packet = self._pair_with_flow()
        got = []
        b.nic_receive = lambda p: got.append(p.payload)
        other = a.attachment.make_packet(1, b"not in a flow",
                                         src_port=1, dst_port=2)
        a.send_from_nic(other)
        env.run(until=1e-3)
        assert got == [b"not in a flow"]
        assert tap_a.encrypted == 0

    def test_forged_packet_dropped(self):
        env, a, b, tap_a, tap_b, packet = self._pair_with_flow()
        # Corrupt the key at the receiver: auth must fail, packet dropped.
        for entry in tap_b.flows._flows.values():
            entry.key = bytes(16)
        got = []
        b.nic_receive = lambda p: got.append(p)
        a.send_from_nic(packet)
        env.run(until=1e-3)
        assert got == []
        assert tap_b.auth_failures == 1

    def test_crypto_latency_applied_to_flow(self):
        """CBC flows pay the 33-interleave pipeline latency in transit."""
        env, a, b, tap_a, tap_b, packet = self._pair_with_flow(
            suite="aes-cbc-128-sha1")
        times = []
        b.nic_receive = lambda p: times.append(env.now)
        a.send_from_nic(packet)
        env.run(until=1e-3)
        # Two CBC traversals (~2.3 us each for ~400 B) dominate the path.
        assert times[0] > 2 * tap_a.engine.cbc_sha1_latency(
            packet.payload_bytes) * 0.5
