"""Tests for the FPGA consolidation study."""

import pytest

from repro.ranking import (
    ConsolidationConfig,
    consolidation_sweep,
    run_consolidation_point,
)


class TestConsolidationPoint:
    def test_all_queries_complete(self):
        result = run_consolidation_point(
            ConsolidationConfig(num_servers=2, num_fpgas=2),
            queries_per_server=100)
        assert result.queries_completed == 200

    def test_one_to_one_underutilized(self):
        """The §III-A claim: a single server leaves its FPGA idle most
        of the time."""
        result = run_consolidation_point(
            ConsolidationConfig(num_servers=1, num_fpgas=1),
            queries_per_server=200)
        assert result.fpga_utilization < 0.6

    def test_utilization_grows_with_consolidation(self):
        sweep = consolidation_sweep([1, 2, 3], num_fpgas=2,
                                    queries_per_server=150)
        utils = [r.fpga_utilization for r in sweep]
        assert utils == sorted(utils)
        assert utils[-1] > utils[0] * 1.5

    def test_two_to_one_latency_stays_flat(self):
        """Doubling servers per FPGA costs little latency while the pool
        has headroom."""
        one, two = consolidation_sweep([1, 2], num_fpgas=2,
                                       queries_per_server=200)
        assert two.latency.p99 < 2.5 * one.latency.p99

    def test_saturation_spikes_latency(self):
        sweep = consolidation_sweep([2, 4], num_fpgas=2,
                                    queries_per_server=200)
        comfortable, saturated = sweep
        assert saturated.fpga_utilization > 0.9
        assert saturated.latency.p99 > 3 * comfortable.latency.p99

    def test_deterministic(self):
        config = ConsolidationConfig(num_servers=2, num_fpgas=1)
        a = run_consolidation_point(config, queries_per_server=80,
                                    seed=4)
        b = run_consolidation_point(config, queries_per_server=80,
                                    seed=4)
        assert a.latency.samples == b.latency.samples

    def test_row_keys(self):
        result = run_consolidation_point(
            ConsolidationConfig(num_servers=1, num_fpgas=1),
            queries_per_server=50)
        row = result.row()
        assert set(row) == {"servers_per_fpga", "fpga_utilization",
                            "p99_ms", "mean_ms", "completed"}
