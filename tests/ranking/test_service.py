"""Tests for the ranking-service queueing simulation (Figs. 6-8, 11)."""

import pytest

from repro.ranking.service import (
    AccelerationMode,
    RankingServiceConfig,
    latency_vs_throughput,
    run_open_loop,
    saturation_qps,
)


def config(mode):
    return RankingServiceConfig(mode=mode)


class TestSaturation:
    def test_fpga_capacity_roughly_2x_software(self):
        """The Fig. 6 headline: 'throughput can be safely increased by
        2.25x' — capacity ratio lands a bit above that."""
        sw = saturation_qps(config(AccelerationMode.SOFTWARE))
        fp = saturation_qps(config(AccelerationMode.LOCAL_FPGA))
        assert 1.9 <= fp / sw <= 2.8

    def test_remote_capacity_matches_local(self):
        """Remote adds latency, not throughput loss (Fig. 11)."""
        fp = saturation_qps(config(AccelerationMode.LOCAL_FPGA))
        rm = saturation_qps(config(AccelerationMode.REMOTE_FPGA))
        assert rm == pytest.approx(fp, rel=0.05)

    def test_more_cores_more_capacity(self):
        small = RankingServiceConfig(mode=AccelerationMode.SOFTWARE,
                                     num_cores=4)
        large = RankingServiceConfig(mode=AccelerationMode.SOFTWARE,
                                     num_cores=16)
        assert saturation_qps(large) > 2 * saturation_qps(small)


class TestOpenLoop:
    def test_low_load_latency_near_service_time(self):
        cfg = config(AccelerationMode.SOFTWARE)
        capacity = saturation_qps(cfg)
        result = run_open_loop(cfg, 0.2 * capacity, num_queries=800)
        # p50 at light load ~ unqueued service time (sub-2 ms here).
        assert result.latency.p50 < 2e-3

    def test_latency_grows_with_load(self):
        cfg = config(AccelerationMode.SOFTWARE)
        capacity = saturation_qps(cfg)
        light = run_open_loop(cfg, 0.3 * capacity, num_queries=800,
                              seed=1)
        heavy = run_open_loop(cfg, 0.95 * capacity, num_queries=800,
                              seed=1)
        assert heavy.latency.p99 > light.latency.p99

    def test_fpga_latency_lower_at_equal_load(self):
        sw_cfg = config(AccelerationMode.SOFTWARE)
        fp_cfg = config(AccelerationMode.LOCAL_FPGA)
        rate = 0.9 * saturation_qps(sw_cfg)
        sw = run_open_loop(sw_cfg, rate, num_queries=800, seed=2)
        fp = run_open_loop(fp_cfg, rate, num_queries=800, seed=2)
        assert fp.latency.p99 < sw.latency.p99

    def test_remote_overhead_small_at_service_level(self):
        """Fig. 11: 'the latency overhead of remote accesses is
        minimal' at millisecond query scale."""
        fp_cfg = config(AccelerationMode.LOCAL_FPGA)
        rm_cfg = config(AccelerationMode.REMOTE_FPGA)
        rate = 0.5 * saturation_qps(fp_cfg)
        fp = run_open_loop(fp_cfg, rate, num_queries=800, seed=3)
        rm = run_open_loop(rm_cfg, rate, num_queries=800, seed=3)
        assert rm.latency.mean < 1.25 * fp.latency.mean

    def test_row_contains_summary(self):
        cfg = config(AccelerationMode.SOFTWARE)
        result = run_open_loop(cfg, 1000, num_queries=200)
        row = result.row()
        for key in ("p99", "offered_qps", "achieved_qps", "mean"):
            assert key in row

    def test_deterministic_given_seed(self):
        cfg = config(AccelerationMode.SOFTWARE)
        a = run_open_loop(cfg, 2000, num_queries=300, seed=7)
        b = run_open_loop(cfg, 2000, num_queries=300, seed=7)
        assert a.latency.samples == b.latency.samples


class TestSweep:
    def test_latency_vs_throughput_rows(self):
        cfg = config(AccelerationMode.SOFTWARE)
        results = latency_vs_throughput(cfg, [1000, 3000],
                                        num_queries=300)
        assert len(results) == 2
        assert results[0].offered_qps == 1000

    def test_fig6_shape(self):
        """The Fig. 6 shape: at the software 99th-percentile latency
        target, the FPGA sustains >= 1.8x the software throughput."""
        sw_cfg = config(AccelerationMode.SOFTWARE)
        fp_cfg = config(AccelerationMode.LOCAL_FPGA)
        sw_capacity = saturation_qps(sw_cfg)
        target_rate = 0.9 * sw_capacity
        sw = run_open_loop(sw_cfg, target_rate, num_queries=1000, seed=4)
        latency_target = sw.latency.p99
        # Drive the FPGA config at ~2x the software rate: still under
        # the latency target.
        fp = run_open_loop(fp_cfg, 1.8 * target_rate, num_queries=1000,
                           seed=4)
        assert fp.latency.p99 <= latency_target
