"""Tests for the synthetic corpus and the FSM (Aho-Corasick) features."""

import pytest

from repro.ranking.corpus import SyntheticCorpus, ZipfSampler
from repro.ranking.fsm import AhoCorasick, query_patterns


class TestZipfSampler:
    def test_range(self):
        sampler = ZipfSampler(vocabulary_size=100)
        assert all(0 <= sampler.sample() < 100 for _ in range(500))

    def test_skew_toward_low_ranks(self):
        sampler = ZipfSampler(vocabulary_size=1000)
        draws = [sampler.sample() for _ in range(5000)]
        low = sum(1 for d in draws if d < 10)
        high = sum(1 for d in draws if d >= 500)
        assert low > high

    def test_empty_vocab_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)


class TestSyntheticCorpus:
    def test_deterministic_given_seed(self):
        a = SyntheticCorpus(seed=5).make_document()
        b = SyntheticCorpus(seed=5).make_document()
        assert a.terms == b.terms and a.quality == b.quality

    def test_different_seeds_differ(self):
        a = SyntheticCorpus(seed=1).make_document()
        b = SyntheticCorpus(seed=2).make_document()
        assert a.terms != b.terms

    def test_document_ids_unique(self):
        corpus = SyntheticCorpus(seed=0)
        ids = {corpus.make_document().doc_id for _ in range(20)}
        assert len(ids) == 20

    def test_query_shape(self):
        corpus = SyntheticCorpus(seed=0)
        for _ in range(20):
            query = corpus.make_query()
            assert 2 <= len(query.terms) <= 5
            assert all(0 <= t < corpus.vocabulary_size
                       for t in query.terms)

    def test_on_topic_documents_contain_query_terms_more(self):
        corpus = SyntheticCorpus(seed=3)
        query = corpus.make_query(topic=5)
        on_topic = [corpus.make_document(topic=5) for _ in range(20)]
        off_topic = [corpus.make_document(topic=40) for _ in range(20)]
        qset = set(query.terms)

        def hits(docs):
            return sum(sum(1 for t in d.terms if t in qset) for d in docs)

        assert hits(on_topic) > hits(off_topic)

    def test_result_set_size(self):
        corpus = SyntheticCorpus(seed=0)
        query = corpus.make_query()
        docs = corpus.make_result_set(query, 15)
        assert len(docs) == 15

    def test_size_bytes(self):
        corpus = SyntheticCorpus(seed=0)
        doc = corpus.make_document()
        assert doc.size_bytes == 4 * doc.length


class TestAhoCorasick:
    def test_single_pattern_count(self):
        """'Count the number of occurrences of query term two.'"""
        automaton = AhoCorasick([(7,)])
        stats = automaton.scan([1, 7, 3, 7, 7, 2])
        assert stats.counts[0] == 3

    def test_multi_pattern(self):
        automaton = AhoCorasick([(1,), (2,), (1, 2)])
        stats = automaton.scan([1, 2, 1, 2, 3, 1])
        assert stats.counts[0] == 3   # term 1
        assert stats.counts[1] == 2   # term 2
        assert stats.counts[2] == 2   # bigram (1,2)

    def test_overlapping_matches(self):
        automaton = AhoCorasick([(1, 1)])
        stats = automaton.scan([1, 1, 1, 1])
        assert stats.counts[0] == 3

    def test_first_positions(self):
        automaton = AhoCorasick([(5,), (9,)])
        stats = automaton.scan([9, 1, 5, 9])
        assert stats.first_positions[0] == 2
        assert stats.first_positions[1] == 0

    def test_no_matches(self):
        automaton = AhoCorasick([(42,)])
        stats = automaton.scan([1, 2, 3])
        assert stats.counts == {}
        assert stats.scanned == 3

    def test_suffix_pattern_found_via_failure_links(self):
        # (2,3) is a suffix of a failed (1,2,3)-prefix walk.
        automaton = AhoCorasick([(1, 2, 4), (2, 3)])
        stats = automaton.scan([1, 2, 3])
        assert stats.counts.get(1, 0) == 1

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([()])

    def test_no_patterns_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick([])

    def test_matches_against_naive_count(self):
        import random
        rng = random.Random(0)
        text = [rng.randrange(4) for _ in range(300)]
        patterns = [(0,), (1, 2), (2, 2), (0, 1, 2)]
        automaton = AhoCorasick(patterns)
        stats = automaton.scan(text)
        for index, pattern in enumerate(patterns):
            naive = sum(
                1 for i in range(len(text) - len(pattern) + 1)
                if tuple(text[i:i + len(pattern)]) == pattern)
            assert stats.counts.get(index, 0) == naive, pattern


class TestQueryPatterns:
    def test_unigrams_then_bigrams(self):
        patterns = query_patterns([1, 2, 3])
        assert patterns == [(1,), (2,), (3,), (1, 2), (2, 3)]

    def test_duplicates_removed(self):
        patterns = query_patterns([1, 1, 2])
        assert patterns == [(1,), (2,), (1, 1), (1, 2)]
