"""Tests for the boosted-stump scorer and the FFU/DPF role models."""

import random

import pytest

from repro.ranking.corpus import SyntheticCorpus
from repro.sim import RandomStreams
from repro.ranking.features import FeatureExtractor
from repro.ranking.ffu import (
    FfuConfig,
    FfuDpfRole,
    QueryWork,
    SoftwareTimingModel,
    WorkloadModel,
)
from repro.ranking.model import BoostedStumpModel, Stump, \
    synthetic_relevance


class TestStump:
    def test_split(self):
        from repro.ranking.features import NUM_FEATURES, FeatureVector
        stump = Stump(feature=0, threshold=1.0, left_value=-1.0,
                      right_value=2.0)
        low = FeatureVector([0.5] + [0.0] * (NUM_FEATURES - 1))
        high = FeatureVector([3.0] + [0.0] * (NUM_FEATURES - 1))
        assert stump.predict(low) == -1.0
        assert stump.predict(high) == 2.0


class TestBoostedModel:
    def _training_set(self, n_queries=6, docs_per_query=25):
        corpus = SyntheticCorpus(seed=11)
        features, labels = [], []
        for _ in range(n_queries):
            query = corpus.make_query()
            docs = corpus.make_result_set(query, docs_per_query)
            extractor = FeatureExtractor(query)
            for doc in docs:
                features.append(extractor.extract(doc))
                labels.append(synthetic_relevance(
                    query.terms, doc.terms, doc.quality))
        return features, labels

    def test_fit_reduces_error(self):
        features, labels = self._training_set()
        model = BoostedStumpModel(num_rounds=40,
                                  rng=RandomStreams(seed=11).stream("model"))
        model.fit(features, labels)
        mean = sum(labels) / len(labels)
        baseline_sse = sum((l - mean) ** 2 for l in labels)
        fitted_sse = sum((l - model.predict(f)) ** 2
                         for f, l in zip(features, labels))
        assert fitted_sse < 0.5 * baseline_sse

    def test_ranking_recovers_truth(self):
        corpus = SyntheticCorpus(seed=21)
        query = corpus.make_query()
        docs = corpus.make_result_set(query, 40)
        extractor = FeatureExtractor(query)
        vectors = extractor.extract_all(docs)
        labels = [synthetic_relevance(query.terms, d.terms, d.quality)
                  for d in docs]
        model = BoostedStumpModel(
            num_rounds=30,
            rng=RandomStreams(seed=12).stream("model")).fit(vectors, labels)
        predicted = model.rank(vectors)
        truth = sorted(range(40), key=lambda i: -labels[i])
        overlap = len(set(predicted[:10]) & set(truth[:10]))
        assert overlap >= 6

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            BoostedStumpModel(
                rng=RandomStreams(seed=13).stream("model")).fit([], [])

    def test_mismatched_lengths_rejected(self):
        features, labels = self._training_set(n_queries=1,
                                              docs_per_query=3)
        with pytest.raises(ValueError):
            BoostedStumpModel(
                rng=RandomStreams(seed=13).stream("model")).fit(
                features, labels[:-1])


class TestQueryWork:
    def test_dp_cells_formula(self):
        work = QueryWork(num_docs=10, total_terms=100, query_terms=3)
        assert work.dp_cells == 2 * 3 * 100 + 100

    def test_document_bytes(self):
        assert QueryWork(1, 250, 3).document_bytes == 1000


class TestWorkloadModel:
    def test_sample_ranges(self):
        model = WorkloadModel()
        rng = random.Random(0)
        for _ in range(100):
            work = model.sample(rng)
            assert work.num_docs >= 10
            assert 2 <= work.query_terms <= 8
            assert work.total_terms >= work.num_docs * 30

    def test_mean_near_config(self):
        model = WorkloadModel(mean_docs=200)
        rng = random.Random(1)
        docs = [model.sample(rng).num_docs for _ in range(400)]
        assert sum(docs) / len(docs) == pytest.approx(200, rel=0.2)


class TestFfuTiming:
    def test_fpga_faster_than_software(self):
        """The headline: hardware feature extraction is ~10x software."""
        role = FfuDpfRole()
        software = SoftwareTimingModel()
        work = QueryWork(num_docs=200, total_terms=60_000, query_terms=3)
        assert role.local_service_time(work) < \
            software.feature_time(work) / 4

    def test_compute_scales_with_work(self):
        role = FfuDpfRole()
        small = QueryWork(10, 3000, 3)
        large = QueryWork(400, 120_000, 3)
        assert role.compute_time(large) > role.compute_time(small)

    def test_transfer_time_uses_pcie(self):
        role = FfuDpfRole(FfuConfig(pcie_bandwidth_bytes=1e9,
                                    pcie_setup=0.0))
        work = QueryWork(1, 250, 3)  # 1000 B
        assert role.transfer_time(work) == pytest.approx(1e-6)

    def test_functional_output_matches_software(self):
        """The role computes bit-identical features to software."""
        corpus = SyntheticCorpus(seed=9)
        query = corpus.make_query()
        docs = corpus.make_result_set(query, 5)
        role = FfuDpfRole()
        hardware = role.extract(query, docs)
        software = FeatureExtractor(query).extract_all(docs)
        assert [fv.values for fv in hardware] == \
            [fv.values for fv in software]

    def test_software_post_scales_with_docs(self):
        model = SoftwareTimingModel()
        assert model.post_time(QueryWork(500, 1, 3)) > \
            model.post_time(QueryWork(10, 1, 3))
