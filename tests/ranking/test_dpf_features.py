"""Tests for the DP feature engine and feature assembly."""

import pytest

from repro.ranking.corpus import Document, Query, SyntheticCorpus
from repro.ranking.dpf import (
    DpFeatureEngine,
    lcs_length,
    local_alignment_score,
    min_covering_window,
    proximity_score,
)
from repro.ranking.features import (
    FEATURE_NAMES,
    NUM_FEATURES,
    FeatureExtractor,
    FeatureVector,
)


class TestLocalAlignment:
    def test_exact_substring_scores_full(self):
        # 3 consecutive matches at +2 each.
        assert local_alignment_score([1, 2, 3], [9, 1, 2, 3, 9]) == 6.0

    def test_no_overlap_scores_zero(self):
        assert local_alignment_score([1, 2], [3, 4, 5]) == 0.0

    def test_gap_penalty_applied(self):
        with_gap = local_alignment_score([1, 2, 3], [1, 2, 9, 3])
        contiguous = local_alignment_score([1, 2, 3], [1, 2, 3])
        assert 0 < with_gap < contiguous

    def test_empty_inputs(self):
        assert local_alignment_score([], [1]) == 0.0
        assert local_alignment_score([1], []) == 0.0

    def test_local_not_global(self):
        # A strong local match amid garbage scores as well as alone.
        assert local_alignment_score([5, 6], [1, 2, 5, 6, 3, 4]) == \
            local_alignment_score([5, 6], [5, 6])


class TestLcs:
    def test_classic(self):
        assert lcs_length([1, 2, 3, 4], [2, 4, 3, 4]) == 3

    def test_disjoint(self):
        assert lcs_length([1, 2], [3, 4]) == 0

    def test_identical(self):
        assert lcs_length([1, 2, 3], [1, 2, 3]) == 3

    def test_empty(self):
        assert lcs_length([], [1, 2]) == 0


class TestMinWindow:
    def test_adjacent_terms(self):
        assert min_covering_window([1, 2], [5, 1, 2, 5]) == 2

    def test_spread_terms(self):
        assert min_covering_window([1, 2], [1, 9, 9, 2]) == 4

    def test_missing_term_returns_none(self):
        assert min_covering_window([1, 7], [1, 2, 3]) is None

    def test_duplicate_query_terms(self):
        assert min_covering_window([1, 1], [5, 1, 5]) == 1

    def test_picks_smallest_of_many(self):
        assert min_covering_window([1, 2], [1, 9, 2, 1, 2]) == 2

    def test_proximity_score_range(self):
        assert proximity_score([1, 2], [1, 2]) == 1.0
        assert proximity_score([1, 2], [1, 9, 9, 9, 2]) < 1.0
        assert proximity_score([1, 2], [3]) == 0.0


class TestDpEngine:
    def test_compute_bundles_all_features(self):
        engine = DpFeatureEngine()
        values = engine.compute([1, 2], [1, 9, 2])
        assert values.alignment_score > 0
        assert values.lcs_length == 2
        assert values.min_window == 3
        assert 0 < values.proximity_score <= 1

    def test_cells_accumulate(self):
        engine = DpFeatureEngine()
        engine.compute([1, 2], [1, 2, 3])
        assert engine.cells_computed == 2 * 2 * 3 + 3

    def test_as_dict_keys(self):
        values = DpFeatureEngine().compute([1], [1])
        assert set(values.as_dict()) == {
            "dp_alignment", "dp_lcs", "dp_min_window", "dp_proximity"}


class TestFeatureExtractor:
    def _fixture(self):
        query = Query(query_id=0, terms=[3, 4])
        on_topic = Document(doc_id=0, terms=[3, 4, 3, 9, 4], quality=0.5)
        off_topic = Document(doc_id=1, terms=[7, 8, 9, 10], quality=0.5)
        return query, on_topic, off_topic

    def test_vector_length(self):
        query, doc, _ = self._fixture()
        fv = FeatureExtractor(query).extract(doc)
        assert len(fv.values) == NUM_FEATURES
        assert len(FEATURE_NAMES) == NUM_FEATURES

    def test_on_topic_scores_higher_on_hits(self):
        query, on_topic, off_topic = self._fixture()
        extractor = FeatureExtractor(query)
        hit = extractor.extract(on_topic).as_dict()
        miss = extractor.extract(off_topic).as_dict()
        assert hit["unigram_hits"] > miss["unigram_hits"]
        assert hit["unigram_coverage"] == 1.0
        assert miss["unigram_coverage"] == 0.0
        assert hit["dp_proximity"] > miss["dp_proximity"]

    def test_bigram_feature(self):
        query, on_topic, _ = self._fixture()
        fv = FeatureExtractor(query).extract(on_topic).as_dict()
        assert fv["bigram_hits"] == 1.0  # (3,4) once

    def test_extract_all(self):
        corpus = SyntheticCorpus(seed=0)
        query = corpus.make_query()
        docs = corpus.make_result_set(query, 5)
        vectors = FeatureExtractor(query).extract_all(docs)
        assert len(vectors) == 5

    def test_wrong_feature_count_rejected(self):
        with pytest.raises(ValueError):
            FeatureVector([1.0, 2.0])

    def test_indexing(self):
        query, doc, _ = self._fixture()
        fv = FeatureExtractor(query).extract(doc)
        assert fv[0] == fv.values[0]
