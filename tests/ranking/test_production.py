"""Tests for the five-day production study (Figs. 7-8 substrate)."""

import pytest

from repro.ranking.production import run_five_day_study
from repro.workloads import DiurnalTraceConfig


@pytest.fixture(scope="module")
def small_study():
    return run_five_day_study(
        DiurnalTraceConfig(days=2, windows_per_day=8),
        queries_per_window=150, seed=3)


class TestFiveDayStudy:
    def test_window_counts(self, small_study):
        assert len(small_study.software) == 16
        assert len(small_study.fpga) == 16

    def test_time_axes_aligned(self, small_study):
        for sw, fp in zip(small_study.software, small_study.fpga):
            assert sw.time_days == fp.time_days

    def test_software_cap_applied(self, small_study):
        for window in small_study.software:
            assert window.admitted_load <= 1.35 + 1e-9
            assert window.admitted_load <= window.offered_load + 1e-9

    def test_fpga_absorbs_full_offered_load(self, small_study):
        for window in small_study.fpga:
            assert window.admitted_load == window.offered_load

    def test_fpga_latency_below_software_per_window(self, small_study):
        sw_mean = sum(w.mean_latency for w in small_study.software)
        fp_mean = sum(w.mean_latency for w in small_study.fpga)
        assert fp_mean < sw_mean

    def test_latency_target_positive(self, small_study):
        assert small_study.latency_target > 0
        assert small_study.base_qps > 0

    def test_deterministic(self):
        config = DiurnalTraceConfig(days=1, windows_per_day=4)
        a = run_five_day_study(config, queries_per_window=80, seed=9)
        b = run_five_day_study(config, queries_per_window=80, seed=9)
        assert [w.p999_latency for w in a.software] == \
            [w.p999_latency for w in b.software]
