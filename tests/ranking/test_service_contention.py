"""Contention-focused tests on the ranking service's FPGA stage."""

import pytest

from repro.ranking import (
    AccelerationMode,
    RankingServiceConfig,
    run_open_loop,
    saturation_qps,
)


class TestFpgaSlotContention:
    def test_fewer_slots_lower_capacity_when_fpga_bound(self):
        """A slow, single-slot role makes the FPGA the bottleneck
        instead of the host cores."""
        from repro.ranking import FfuConfig
        slow_role = FfuConfig(fsm_lanes=2, dp_cells_per_cycle=512)
        plenty = RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA,
                                      ffu=slow_role,
                                      fpga_pipeline_slots=8)
        starved = RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA,
                                       ffu=slow_role,
                                       fpga_pipeline_slots=1)
        assert saturation_qps(starved) < saturation_qps(plenty)

    def test_default_config_is_core_bound(self):
        """The paper's observation: 'the software portion of ranking
        saturates the host server before the FPGA is saturated' — so
        adding FPGA slots beyond the default changes nothing."""
        default = RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA)
        extra = RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA,
                                     fpga_pipeline_slots=16)
        assert saturation_qps(extra) == pytest.approx(
            saturation_qps(default), rel=0.05)

    def test_remote_latency_dominated_by_compute_not_network(self):
        """At ms-scale queries, the LTL hop is lost in the noise."""
        remote = RankingServiceConfig(mode=AccelerationMode.REMOTE_FPGA)
        server_rate = 0.3 * saturation_qps(remote)
        result = run_open_loop(remote, server_rate, num_queries=500)
        network_floor = remote.remote.round_trip \
            + remote.remote.per_message_overhead
        assert result.latency.mean > 50 * network_floor


class TestWorkloadSensitivity:
    def test_bigger_candidate_sets_cost_more(self):
        from repro.ranking import WorkloadModel
        small = RankingServiceConfig(
            mode=AccelerationMode.SOFTWARE,
            workload=WorkloadModel(mean_docs=100))
        large = RankingServiceConfig(
            mode=AccelerationMode.SOFTWARE,
            workload=WorkloadModel(mean_docs=400))
        assert saturation_qps(large) < saturation_qps(small)

    def test_acceleration_gain_grows_with_feature_share(self):
        """The heavier the feature stage, the more the FPGA helps."""
        from repro.ranking import SoftwareTimingModel

        def gain(fsm_cost):
            software = SoftwareTimingModel(
                fsm_seconds_per_term=fsm_cost)
            sw = RankingServiceConfig(mode=AccelerationMode.SOFTWARE,
                                      software=software)
            fp = RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA,
                                      software=software)
            return saturation_qps(fp) / saturation_qps(sw)

        assert gain(6.0e-9) > gain(1.5e-9)
