"""Determinism guarantees of the calendar-queue scheduler.

The kernel orders every entry by ``(time, priority, seq)`` no matter
which layer (head slot, calendar bucket, overflow heap) it lands in.
These tests pin the observable contract: same-instant FIFO, URGENT
before NORMAL, ``call_at``/``call_later`` interleaving, and — the
integration-level check — a bit-identical Fig. 10 digest whether the
calendar queue or the pure-heapq fallback runs the simulation.
"""

import hashlib

from repro.core.cloud import ConfigurableCloud
from repro.experiments.fig10 import DEFAULT_TIER_PAIRS
from repro.sim import Environment
from repro.sim.events import NORMAL, URGENT, Event


class TestSameInstantFifo:
    def test_call_later_same_instant_fifo(self):
        env = Environment()
        order = []
        for i in range(50):
            env.call_later(1e-6, order.append, i)
        env.run()
        assert order == list(range(50))

    def test_fifo_across_layers(self):
        """FIFO holds even when same-instant entries straddle the head
        slot, a calendar bucket and the overflow heap."""
        env = Environment(bucket_width=4e-6, horizon=512e-6)
        order = []
        when = 1e-3  # beyond the horizon: first entries overflow
        for i in range(10):
            env.call_at(when, order.append, i)
        # Drag *now* forward so the same instant is now bucketable and
        # later entries take the calendar/head path instead.
        env.call_later(when / 2, lambda: None)
        for i in range(10, 20):
            env.call_at(when, order.append, i)
        env.run()
        assert order == list(range(20))

    def test_fifo_under_heapq_fallback(self):
        env = Environment(scheduler="heapq")
        order = []
        for i in range(50):
            env.call_later(1e-6, order.append, i)
        env.run()
        assert order == list(range(50))


class TestPriorities:
    def _run_with_priorities(self, **env_kwargs):
        env = Environment(**env_kwargs)
        order = []

        def make(tag):
            event = Event(env)
            event.callbacks.append(lambda _e: order.append(tag))
            event._ok = True
            event._value = None
            return event

        # NORMAL scheduled first, URGENT second — URGENT must still win.
        env.schedule(make("normal-0"), NORMAL, delay=1e-6)
        env.schedule(make("urgent-0"), URGENT, delay=1e-6)
        env.schedule(make("normal-1"), NORMAL, delay=1e-6)
        env.schedule(make("urgent-1"), URGENT, delay=1e-6)
        env.run()
        return order

    def test_urgent_before_normal_same_instant(self):
        assert self._run_with_priorities() == [
            "urgent-0", "urgent-1", "normal-0", "normal-1"]

    def test_urgent_before_normal_heapq(self):
        assert self._run_with_priorities(scheduler="heapq") == [
            "urgent-0", "urgent-1", "normal-0", "normal-1"]


class TestCallAtCallLaterInterleaving:
    def _interleave(self, **env_kwargs):
        env = Environment(**env_kwargs)
        order = []
        # Mixed absolute/relative scheduling landing on shared instants,
        # inserted out of time order, spanning bucket and overflow ranges.
        env.call_at(3e-6, order.append, "at-3us")
        env.call_later(1e-6, order.append, "later-1us")
        env.call_at(1e-6, order.append, "at-1us")       # ties later-1us
        env.call_later(3e-6, order.append, "later-3us")  # ties at-3us
        env.call_at(2e-3, order.append, "at-2ms")        # overflow range
        env.call_later(0.0, order.append, "later-0")
        env.call_later(2e-3, order.append, "later-2ms")  # ties at-2ms
        env.run()
        return order

    def test_interleaved_global_order(self):
        expected = ["later-0", "later-1us", "at-1us", "at-3us",
                    "later-3us", "at-2ms", "later-2ms"]
        assert self._interleave() == expected
        assert self._interleave(scheduler="heapq") == expected

    def test_calendar_matches_heapq_on_dense_schedule(self):
        def run(scheduler):
            env = Environment(scheduler=scheduler)
            order = []
            # Deterministic pseudo-random delays via integer hashing —
            # dense ties plus a spread wider than the calendar horizon.
            for i in range(400):
                delay = ((i * 2654435761) % 1024) * 1e-6
                env.call_later(delay, order.append, (i, round(delay, 9)))
            env.run()
            return order

        assert run("calendar") == run("heapq")


class TestFig10Digest:
    @staticmethod
    def _digest(scheduler):
        env = Environment(scheduler=scheduler)
        cloud = ConfigurableCloud(env=env, seed=10)
        samples = []
        for _tier, (_reach, pairs) in DEFAULT_TIER_PAIRS.items():
            for src, dst in pairs:
                for host in (src, dst):
                    if host not in cloud.servers:
                        cloud.add_server(host, enroll=False)
                samples.extend(
                    cloud.measure_ltl_rtt(src, dst, messages=8))
        payload = repr((samples, env.events_processed, env.now))
        return hashlib.sha256(payload.encode()).hexdigest()

    def test_fig10_bit_identical_calendar_vs_heapq(self):
        """The paper-headline workload must not care which scheduler
        backend ran it: every RTT sample, the event count and the final
        clock must agree to the bit."""
        assert self._digest("calendar") == self._digest("heapq")
