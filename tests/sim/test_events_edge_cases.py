"""Edge cases on Event/AnyOf/AllOf and error handling."""

import pytest

from repro.sim import Environment, SimulationError


class TestEventLifecycle:
    def test_double_succeed_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)
        event._defused = True
        env.run()

    def test_fail_requires_exception(self):
        env = Environment()
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_event_value_carried(self):
        env = Environment()

        def proc(env):
            event = env.event()
            event.succeed({"k": 1})
            result = yield event
            return result

        p = env.process(proc(env))
        env.run()
        assert p.value == {"k": 1}

    def test_failed_event_waited_by_process(self):
        env = Environment()

        def proc(env):
            event = env.event()
            event.fail(RuntimeError("expected"))
            try:
                yield event
            except RuntimeError as exc:
                return f"caught {exc}"

        p = env.process(proc(env))
        env.run()
        assert p.value == "caught expected"

    def test_unwaited_failed_event_raises_at_step(self):
        env = Environment()
        event = env.event()
        event.fail(ValueError("nobody caught me"))
        with pytest.raises(ValueError):
            env.run()


class TestAnyOfAllOfFailures:
    def test_any_of_fails_if_child_fails_first(self):
        env = Environment()

        def proc(env):
            bad = env.event()
            bad.fail(RuntimeError("child failed"))
            slow = env.timeout(10.0)
            try:
                yield env.any_of([bad, slow])
            except RuntimeError:
                return "propagated"

        p = env.process(proc(env))
        env.run()
        assert p.value == "propagated"

    def test_all_of_fails_fast(self):
        env = Environment()

        def proc(env):
            fast_fail = env.timeout(1.0)
            never = env.event()
            composite = env.all_of([fast_fail, never])

            def poison(env):
                yield env.timeout(0.5)
                never.fail(RuntimeError("boom"))

            env.process(poison(env))
            try:
                yield composite
            except RuntimeError:
                return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.5

    def test_any_of_empty_succeeds_immediately(self):
        env = Environment()

        def proc(env):
            result = yield env.any_of([])
            return result

        p = env.process(proc(env))
        env.run()
        assert p.value == {}

    def test_all_of_with_pre_completed_events(self):
        env = Environment()
        done1 = env.event()
        done1.succeed("a")
        env.run()  # process it

        def proc(env):
            result = yield env.all_of([done1, env.timeout(1.0, "b")])
            return sorted(str(v) for v in result.values())

        p = env.process(proc(env))
        env.run()
        assert p.value == ["a", "b"]


class TestRunEdgeCases:
    def test_run_until_never_triggered_event_raises(self):
        env = Environment()
        env.timeout(1.0)
        orphan = env.event()
        with pytest.raises(SimulationError,
                           match="ended before the awaited"):
            env.run(until=orphan)

    def test_run_until_failed_event_reraises(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            raise KeyError("inside")

        p = env.process(proc(env))
        with pytest.raises(KeyError):
            env.run(until=p)

    def test_run_until_already_processed_event(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert env.run(until=p) == "done"
