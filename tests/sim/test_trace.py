"""Tests for the execution tracer."""

import pytest

from repro.sim import Environment
from repro.sim.trace import Tracer


def busy_program(env, steps=5):
    def proc(env):
        for _ in range(steps):
            yield env.timeout(1.0)

    env.process(proc(env), name="busy")


class TestTracer:
    def test_records_processed_events(self):
        env = Environment()
        tracer = Tracer(env)
        busy_program(env)
        env.run()
        assert len(tracer.records) > 0
        assert tracer.counts["Timeout"] >= 5

    def test_does_not_change_semantics(self):
        plain = Environment()
        busy_program(plain)
        plain.run()

        traced = Environment()
        Tracer(traced)
        busy_program(traced)
        traced.run()
        assert traced.now == plain.now

    def test_capacity_bounds_memory(self):
        env = Environment()
        tracer = Tracer(env, capacity=10)
        busy_program(env, steps=50)
        env.run()
        assert len(tracer.records) == 10

    def test_uninstall_stops_recording(self):
        env = Environment()
        tracer = Tracer(env)
        busy_program(env, steps=2)
        env.run()
        seen = len(tracer.records)
        tracer.uninstall()
        busy_program(env, steps=3)
        env.run()
        assert len(tracer.records) == seen
        tracer.uninstall()  # idempotent

    def test_since_filters_by_time(self):
        env = Environment()
        tracer = Tracer(env)
        busy_program(env, steps=4)
        env.run()
        late = tracer.since(3.0)
        assert late
        assert all(r.time >= 3.0 for r in late)

    def test_summary_histogram(self):
        env = Environment()
        tracer = Tracer(env)
        busy_program(env)
        env.run()
        summary = tracer.summary()
        assert summary.get("Timeout", 0) >= 5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(Environment(), capacity=0)
