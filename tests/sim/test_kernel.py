"""Tests for the discrete-event kernel (Environment, run/step)."""

import pytest

from repro.sim import EmptySchedule, Environment, SimulationError


class TestEnvironmentBasics:
    def test_initial_time_defaults_to_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_configurable(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_peek_empty_is_infinite(self):
        assert Environment().peek() == float("inf")

    def test_step_on_empty_schedule_raises(self):
        with pytest.raises(EmptySchedule):
            Environment().step()

    def test_timeout_advances_time(self):
        env = Environment()
        env.timeout(2.5)
        env.run()
        assert env.now == 2.5

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_run_until_time_stops_exactly(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_raises(self):
        env = Environment()
        env.timeout(1.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=0.5)

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            return "result"

        process = env.process(proc(env))
        assert env.run(until=process) == "result"

    def test_events_at_same_time_fifo(self):
        env = Environment()
        order = []

        def make(tag):
            def proc(env):
                yield env.timeout(1.0)
                order.append(tag)
            return proc

        for tag in ("a", "b", "c"):
            env.process(make(tag)(env))
        env.run()
        assert order == ["a", "b", "c"]


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(0.5)
            return 42

        p = env.process(proc(env))
        env.run()
        assert p.value == 42
        assert not p.is_alive

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        times = []

        def proc(env):
            for _ in range(3):
                yield env.timeout(1.0)
                times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [1.0, 2.0, 3.0]

    def test_process_waits_on_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(2.0)
            return "child-done"

        def parent(env):
            result = yield env.process(child(env))
            return (env.now, result)

        p = env.process(parent(env))
        env.run()
        assert p.value == (2.0, "child-done")

    def test_exception_propagates_to_waiter(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        def waiter(env):
            try:
                yield env.process(failing(env))
            except RuntimeError as exc:
                return str(exc)

        p = env.process(waiter(env))
        env.run()
        assert p.value == "boom"

    def test_unhandled_process_exception_surfaces(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1.0)
            raise ValueError("unhandled")

        env.process(failing(env))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_yield_non_event_raises(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_process_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_waiting_on_already_processed_event(self):
        env = Environment()
        results = []

        def early(env):
            yield env.timeout(1.0)
            return "early"

        child = env.process(early(env))

        def late(env):
            yield env.timeout(5.0)
            value = yield child  # long since completed
            results.append((env.now, value))

        env.process(late(env))
        env.run()
        assert results == [(5.0, "early")]


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        from repro.sim import Interrupt
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        def interrupter(env, target):
            yield env.timeout(1.0)
            target.interrupt(cause="wake-up")

        target = env.process(sleeper(env))
        env.process(interrupter(env, target))
        env.run()
        assert target.value == ("interrupted", "wake-up", 1.0)

    def test_interrupt_dead_process_raises(self):
        env = Environment()

        def quick(env):
            yield env.timeout(0.1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestCompositeEvents:
    def test_any_of_first_wins(self):
        env = Environment()

        def proc(env):
            fast = env.timeout(1.0, value="fast")
            slow = env.timeout(5.0, value="slow")
            result = yield env.any_of([fast, slow])
            return (env.now, list(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (1.0, ["fast"])

    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc(env):
            events = [env.timeout(t) for t in (1.0, 3.0, 2.0)]
            yield env.all_of(events)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 3.0

    def test_all_of_empty_completes_immediately(self):
        env = Environment()

        def proc(env):
            yield env.all_of([])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0
