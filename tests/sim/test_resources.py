"""Tests for Store, PriorityStore, Resource and Container."""

import pytest

from repro.sim import Container, Environment, PriorityStore, Resource, Store


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        results = []

        def consumer(env):
            item = yield store.get()
            results.append(item)

        env.process(consumer(env))
        store.put("x")
        env.run()
        assert results == ["x"]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [1, 2, 3]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env):
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(3.0, "late")]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        events = []

        def producer(env):
            yield store.put("a")
            events.append(("a-in", env.now))
            yield store.put("b")
            events.append(("b-in", env.now))

        def consumer(env):
            yield env.timeout(2.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert events == [("a-in", 0.0), ("b-in", 2.0)]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)

    def test_try_get_nonblocking(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() is None
        store.put("item")
        env.run()
        assert store.try_get() == "item"

    def test_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestPriorityStore:
    def test_returns_smallest_first(self):
        env = Environment()
        store = PriorityStore(env)
        for item in (3, 1, 2):
            store.put(item)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [1, 2, 3]


class TestResource:
    def test_capacity_enforced(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        active = []
        peak = []

        def user(env):
            with resource.request() as req:
                yield req
                active.append(1)
                peak.append(len(active))
                yield env.timeout(1.0)
                active.pop()

        for _ in range(5):
            env.process(user(env))
        env.run()
        assert max(peak) == 2

    def test_fifo_grant_order(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        order = []

        def user(env, tag):
            with resource.request() as req:
                yield req
                order.append(tag)
                yield env.timeout(1.0)

        for tag in "abc":
            env.process(user(env, tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_release_idempotent(self):
        env = Environment()
        resource = Resource(env, capacity=1)

        def user(env):
            req = resource.request()
            yield req
            req.release()
            req.release()  # second release is a no-op

        env.process(user(env))
        env.run()
        assert resource.count == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_count_tracks_users(self):
        env = Environment()
        resource = Resource(env, capacity=3)

        def holder(env):
            req = resource.request()
            yield req
            yield env.timeout(10.0)

        env.process(holder(env))
        env.process(holder(env))
        env.run(until=1.0)
        assert resource.count == 2


class TestContainer:
    def test_get_blocks_until_level(self):
        env = Environment()
        container = Container(env, capacity=100, init=0)
        got = []

        def consumer(env):
            yield container.get(10)
            got.append(env.now)

        def producer(env):
            yield env.timeout(5.0)
            yield container.put(10)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [5.0]
        assert container.level == 0

    def test_put_blocks_at_capacity(self):
        env = Environment()
        container = Container(env, capacity=10, init=10)
        times = []

        def producer(env):
            yield container.put(5)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(2.0)
            yield container.get(5)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [2.0]

    def test_oversized_put_fails(self):
        env = Environment()
        container = Container(env, capacity=5)
        event = container.put(10)
        assert event.triggered and not event.ok
        event._defused = True

    def test_invalid_amounts(self):
        env = Environment()
        container = Container(env, capacity=5)
        with pytest.raises(ValueError):
            container.put(0)
        with pytest.raises(ValueError):
            container.get(-1)

    def test_init_bounds(self):
        with pytest.raises(ValueError):
            Container(Environment(), capacity=5, init=6)
