"""Tests for unit helpers and deterministic random streams."""

import pytest

from repro.sim import RandomStreams, percentile
from repro.sim.units import (
    GB,
    Gbps,
    KB,
    MB,
    US,
    cycles_to_seconds,
    seconds_to_us,
    serialization_delay,
    us_to_seconds,
)


class TestUnits:
    def test_serialization_delay_40g(self):
        # 1500 B at 40 Gb/s = 300 ns.
        assert serialization_delay(1500, 40e9) == pytest.approx(300e-9)

    def test_serialization_delay_zero_bytes(self):
        assert serialization_delay(0, 40e9) == 0.0

    def test_serialization_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            serialization_delay(100, 0)

    def test_us_roundtrip(self):
        assert seconds_to_us(us_to_seconds(3.5)) == pytest.approx(3.5)

    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(300e6, 300e6) == pytest.approx(1.0)

    def test_cycles_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(100, 0)

    def test_size_constants(self):
        assert KB == 1024 and MB == KB ** 2 and GB == KB ** 3

    def test_rate_constants(self):
        assert Gbps == 1e9 and US == 1e-6


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=7).stream("x")
        b = RandomStreams(seed=7).stream("x")
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        streams = RandomStreams(seed=7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=0)
        assert streams.stream("x") is streams.stream("x")

    def test_creation_order_does_not_matter(self):
        s1 = RandomStreams(seed=3)
        s1.stream("first")
        value1 = s1.stream("second").random()
        s2 = RandomStreams(seed=3)
        value2 = s2.stream("second").random()
        assert value1 == value2

    def test_spawn_namespaces(self):
        parent = RandomStreams(seed=1)
        child_a = parent.spawn("a")
        child_b = parent.spawn("b")
        assert child_a.stream("x").random() != child_b.stream("x").random()


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 99) == 5.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_extremes(self):
        data = sorted([3.0, 1.0, 2.0])
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 3.0

    def test_interpolation(self):
        data = [0.0, 10.0]
        assert percentile(data, 25) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestHashRandomizationInvariance:
    def test_streams_stable_across_pythonhashseed(self):
        """Child-stream seeds must not depend on string-hash salting.

        Regression: deriving child seeds with ``hash((seed, name))`` made
        every run irreproducible across processes (PYTHONHASHSEED salts
        str hashing).  Seeds now derive from SHA-256, so two interpreters
        with different hash seeds must produce identical streams.
        """
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        code = (
            "from repro.sim.randomness import RandomStreams\n"
            "s = RandomStreams(seed=7)\n"
            "print(s.stream('alpha').random(),"
            " s.spawn('beta').stream('alpha').random())\n"
        )
        outputs = []
        for hash_seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=src_dir)
            outputs.append(subprocess.check_output(
                [sys.executable, "-c", code], env=env, text=True))
        assert outputs[0] == outputs[1]

    def test_derive_seed_is_deterministic_and_name_sensitive(self):
        from repro.sim.randomness import _derive_seed

        assert _derive_seed(7, "a") == _derive_seed(7, "a")
        assert _derive_seed(7, "a") != _derive_seed(7, "b")
        assert _derive_seed(7, "a") != _derive_seed(8, "a")
