"""Topology partitioning for sharded simulation (repro.sim.shard).

Covers the partition invariants the window protocol's correctness rests
on: every host and TOR in exactly one shard, rack-locality preserved,
cross-shard LTL connections registered as boundary seams on both sides,
and the computed lookahead equal to the true minimum seam-path latency.
"""

import itertools

import pytest

from repro.net.addressing import host_index_to_coords
from repro.net.topology import TopologyConfig
from repro.sim.shard import (
    BoundaryPathModel,
    PingTask,
    ShardSpec,
    ShardWorld,
    compute_lookahead,
    plan_shards,
    validate_workload,
)


def _coords(config, host):
    return host_index_to_coords(
        host, config.hosts_per_tor, config.tors_per_pod)


class TestPlanShards:
    def test_every_host_in_exactly_one_shard(self):
        config = TopologyConfig()
        active = [0, 1, 25, 30, 48, 5000, 100_000, 100_001, 200_000]
        plan = plan_shards(config, active, 4)
        seen = [h for shard in plan.hosts for h in shard]
        assert sorted(seen) == sorted(active)          # covering
        assert len(seen) == len(set(seen))             # disjoint
        for shard, hosts in enumerate(plan.hosts):
            for host in hosts:
                assert plan.shard_of_host(host) == shard

    def test_every_tor_in_exactly_one_shard(self):
        config = TopologyConfig()
        active = list(range(0, 24 * 10))  # 10 full racks
        plan = plan_shards(config, active, 3)
        assert len(plan.tor_to_shard) == 10
        for host in active:
            coords = _coords(config, host)
            assert plan.shard_of_host(host) == \
                plan.tor_to_shard[(coords.pod, coords.tor)]

    def test_rack_locality_preserved(self):
        """Hosts under one TOR always share a shard — same-rack traffic
        never crosses a seam, which the lookahead bound relies on."""
        config = TopologyConfig()
        active = list(range(0, 24 * 6))
        plan = plan_shards(config, active, 4)
        for host in active:
            peer = (host + 1) if (host % 24) < 23 else host - 1
            assert plan.shard_of_host(host) == plan.shard_of_host(peer)

    def test_shard_count_clamped_to_tor_count(self):
        config = TopologyConfig()
        plan = plan_shards(config, [0, 1, 2, 30], 8)  # only 2 racks
        assert plan.num_shards == 2

    def test_rejects_bad_input(self):
        config = TopologyConfig()
        with pytest.raises(ValueError, match="at least one shard"):
            plan_shards(config, [0], 0)
        with pytest.raises(ValueError, match="no active hosts"):
            plan_shards(config, [], 2)
        with pytest.raises(ValueError, match="outside the datacenter"):
            plan_shards(config, [config.total_hosts], 2)

    def test_is_boundary(self):
        config = TopologyConfig()
        plan = plan_shards(config, [0, 1, 30], 2)
        assert not plan.is_boundary(0, 1)      # same rack
        assert plan.is_boundary(0, 30)         # rack 0 vs rack 1


class TestLookahead:
    def test_single_shard_has_no_bound(self):
        config = TopologyConfig()
        plan = plan_shards(config, [0, 30], 1)
        assert compute_lookahead(config, plan, seed=0) == float("inf")

    def test_equals_true_minimum_over_seam_pairs(self):
        """The closed-form bound must equal the brute-force minimum of
        the seam path model over every actual cross-shard host pair."""
        config = TopologyConfig()
        for seed, active, shards in (
                (0, [0, 30, 25, 5000, 100_000], 2),
                (7, [0, 30, 48, 72], 4),
                (3, [0, 960, 1920, 100_000, 200_000], 3)):
            plan = plan_shards(config, active, shards)
            model = BoundaryPathModel(config, seed)
            brute = min(
                model.min_delay(a, b)
                for a, b in itertools.permutations(active, 2)
                if plan.is_boundary(a, b))
            assert compute_lookahead(config, plan, seed) == \
                pytest.approx(brute, abs=1e-15)

    def test_split_pod_uses_same_pod_floor(self):
        config = TopologyConfig()
        lat = config.latency
        plan = plan_shards(config, [0, 30], 2)  # two racks, one pod
        expected = (2 * lat.host_tor_distance_m / 2.0e8
                    + 2 * lat.tor_l1_distance_m / 2.0e8
                    + 2 * lat.tor_latency + lat.l1_latency)
        assert compute_lookahead(config, plan, 0) == \
            pytest.approx(expected, rel=1e-12)

    def test_whole_pod_partition_crosses_l2(self):
        """Pods kept whole: every seam crosses L2, so the bound grows by
        the L2 traversal and both pods' fiber runs."""
        config = TopologyConfig()
        per_pod = config.hosts_per_pod
        plan = plan_shards(config, [0, per_pod, 2 * per_pod], 3)
        same_pod = compute_lookahead(
            config, plan_shards(config, [0, 30], 2), 0)
        bound = compute_lookahead(config, plan, 0)
        assert bound > same_pod + config.latency.l2_latency

    def test_lookahead_below_every_sampled_delay(self):
        """No sampled seam traversal may undercut the bound (the window
        protocol's safety condition)."""
        import random
        config = TopologyConfig()
        active = [0, 30, 5000, 100_000]
        plan = plan_shards(config, active, 2)
        bound = compute_lookahead(config, plan, seed=1)
        model = BoundaryPathModel(config, 1, rng=random.Random(42))
        for a, b in itertools.permutations(active, 2):
            if not plan.is_boundary(a, b):
                continue
            for size in (64, 256, 1500):
                assert model.delay(a, b, size) >= bound

    def test_same_tor_pair_rejected_by_path_model(self):
        config = TopologyConfig()
        model = BoundaryPathModel(config, 0)
        with pytest.raises(ValueError, match="share a TOR"):
            model.min_delay(0, 1)


class TestBoundarySeams:
    def _worlds(self, workload, num_shards=2, seed=0):
        config = TopologyConfig()
        connections = [(t.src, t.dst, 0) for t in workload]
        active = sorted({t.src for t in workload}
                        | {t.dst for t in workload})
        plan = plan_shards(config, active, num_shards)
        worlds = [ShardWorld(ShardSpec(
            shard_id=s, seed=seed, topology=config,
            local_hosts=plan.hosts[s], host_to_shard=plan.host_to_shard,
            connections=connections, workload=workload))
            for s in range(plan.num_shards)]
        return plan, worlds

    def test_cross_shard_connections_registered_both_sides(self):
        workload = [PingTask(src=0, dst=30, messages=1),
                    PingTask(src=25, dst=5000, messages=1)]
        plan, worlds = self._worlds(workload)
        for a, b, _vc in [(0, 30, 0), (25, 5000, 0)]:
            sa, sb = plan.shard_of_host(a), plan.shard_of_host(b)
            if sa == sb:
                assert b not in worlds[sa].boundary_peers
                assert a not in worlds[sb].boundary_peers
            else:
                assert b in worlds[sa].boundary_peers
                assert a in worlds[sb].boundary_peers

    def test_intra_shard_connection_is_not_a_seam(self):
        # Hosts 0 and 1 share a rack, hence a shard: plain connect.
        workload = [PingTask(src=0, dst=1, messages=1),
                    PingTask(src=30, dst=48, messages=1)]
        plan, worlds = self._worlds(workload)
        shard = plan.shard_of_host(0)
        assert 1 not in worlds[shard].boundary_peers

    def test_connection_ids_agree_across_the_seam(self):
        """Each side's installed send connection must point at the id
        the peer's shard installed for the matching receive half."""
        workload = [PingTask(src=0, dst=30, messages=1),
                    PingTask(src=25, dst=5000, messages=1)]
        plan, worlds = self._worlds(workload)
        for a, b in ((0, 30), (25, 5000)):
            wa = worlds[plan.shard_of_host(a)]
            wb = worlds[plan.shard_of_host(b)]
            ltl_a = wa.cloud.shell(a).ltl
            ltl_b = wb.cloud.shell(b).ltl
            send_a = ltl_a.send_table.lookup(
                wa.cloud.shell(a)._send_conns[b])
            recv_b = ltl_b.recv_table.lookup(send_a.remote_connection_id)
            assert recv_b.remote_host == a
            assert recv_b.remote_connection_id == send_a.connection_id

    def test_workload_validation_rejects_duplicate_sources(self):
        with pytest.raises(ValueError, match="only one PingTask"):
            validate_workload([PingTask(src=0, dst=30),
                               PingTask(src=0, dst=48)])
