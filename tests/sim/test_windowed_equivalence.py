"""Windowed stepping must be exactly equivalent to one long run.

The shard driver advances every shard with repeated bounded
``run(until=window_end)`` calls.  These tests pin the contract that made
that safe:

* N bounded runs over exact window boundaries produce bit-identical
  state (events processed, clock, schedule length, observable event
  order) to a single ``run(until=horizon)``;
* events landing at exactly a window boundary execute *inside* that
  window (the stop sentinel sorts after every same-instant URGENT and
  NORMAL event);
* a run terminated by an exception removes its own stop sentinel —
  the regression fixed here left a phantom entry in the calendar queue
  that corrupted ``len``/``peek`` and the next run's event accounting.
"""

import pytest

from repro.core.cloud import ConfigurableCloud
from repro.sim import Environment, URGENT


def _exact_boundaries(horizon, windows):
    """Window end times whose last element is exactly ``horizon``.

    Accumulating ``t += horizon / windows`` drifts in the last ulp and
    would make the final ``env.now`` differ from the one-shot run for
    reasons unrelated to the kernel; divide fresh each time instead.
    """
    bounds = [horizon * (i + 1) / windows for i in range(windows)]
    bounds[-1] = horizon  # multiply-then-divide can be off by one ulp
    return bounds


def _kernel_digest(windows, scheduler="calendar", wrap_step=False):
    """Run a same-instant-heavy workload windowed; digest all state."""
    env = Environment(scheduler=scheduler)
    if wrap_step:
        # Mimic Tracer: an instance-level step wrapper forces run() off
        # the inlined fast path onto the step()-per-event fallback.
        inner = env.step
        env.step = lambda: inner()
    log = []

    def ticker(env, tag, period):
        i = 0
        while True:
            yield env.timeout(period)
            log.append((env.now, tag, i))
            i += 1

    def cascade(env):
        # call_later(0) chains landing exactly on window boundaries.
        for i in range(40):
            yield env.timeout(5e-6)
            env.call_later(0.0, log.append, (env.now, "cb", i))
            ev = env.event()
            env.schedule(ev, URGENT)
            ev.callbacks.append(lambda e: log.append((env.now, "urgent", 0)))

    env.process(ticker(env, "a", 1e-6))
    env.process(ticker(env, "b", 1e-6))
    env.process(cascade(env))
    horizon = 200e-6
    if windows is None:
        env.run(until=horizon)
    else:
        for t in _exact_boundaries(horizon, windows):
            env.run(until=t)
    return (env.events_processed, env.now, len(env), tuple(log))


class TestWindowedEquivalence:
    @pytest.mark.parametrize("windows", [2, 7, 50, 200, 400])
    def test_windowed_matches_one_shot(self, windows):
        assert _kernel_digest(windows) == _kernel_digest(None)

    @pytest.mark.parametrize("windows", [2, 50, 400])
    def test_windowed_matches_one_shot_heapq(self, windows):
        one = _kernel_digest(None, scheduler="heapq")
        many = _kernel_digest(windows, scheduler="heapq")
        assert many == one
        # Scheduler backends agree with each other too.
        assert one == _kernel_digest(None)

    @pytest.mark.parametrize("windows", [2, 50])
    def test_windowed_matches_one_shot_wrapped_step(self, windows):
        one = _kernel_digest(None, wrap_step=True)
        assert _kernel_digest(windows, wrap_step=True) == one

    def test_zero_width_windows_are_noops(self):
        env = Environment()
        env.process(_drip(env))
        env.run(until=50e-6)
        snapshot = (env.events_processed, env.now, len(env))
        for _ in range(3):
            env.run(until=env.now)  # zero-width window
        assert (env.events_processed, env.now, len(env)) == snapshot

    def test_boundary_instant_events_run_inside_window(self):
        """An event due at exactly ``until`` executes in that window."""
        env = Environment()
        fired = []
        env.call_later(10e-6, fired.append, "normal")
        ev = env.event()
        ev.callbacks.append(lambda e: fired.append("urgent"))
        env.schedule(ev, URGENT, delay=10e-6)
        env.run(until=10e-6)
        assert fired == ["urgent", "normal"]
        assert len(env) == 0

    def test_fig10_workload_windowed_bit_identical(self):
        """End-to-end: the Fig. 10 measurement path, windowed vs not."""

        def digest(windows):
            cloud = ConfigurableCloud(seed=7)
            for h in (0, 1, 2, 40):
                cloud.add_server(h, enroll=False)
            cloud.connect(0, 1)
            cloud.connect(2, 40)
            shell_a, shell_c = cloud.shell(0), cloud.shell(2)

            def driver(env):
                for _ in range(30):
                    shell_a.remote_send(1, b"\x00" * 64, 64)
                    shell_c.remote_send(40, b"\x01" * 64, 64)
                    yield env.timeout(50e-6)

            cloud.env.process(driver(cloud.env), name="drv")
            horizon = 30 * 50e-6 + 5e-3
            if windows is None:
                cloud.env.run(until=horizon)
            else:
                for t in _exact_boundaries(horizon, windows):
                    cloud.env.run(until=t)
            rtts = tuple(shell_a.ltl.rtt_samples()) + \
                tuple(shell_c.ltl.rtt_samples())
            return (cloud.env.events_processed, cloud.env.now,
                    len(cloud.env), rtts)

        one = digest(None)
        assert one[3], "workload produced no RTT samples"
        for windows in (3, 61):
            assert digest(windows) == one


def _drip(env):
    while True:
        yield env.timeout(1e-6)


#: Exactly representable tick (~0.95us): sums of DT never drift, so
#: event counts at window boundaries are deterministic, not ulp-luck.
DT = 2.0 ** -20


class TestStopSentinelCleanup:
    def _env_with_bomb(self, scheduler="calendar"):
        env = Environment(scheduler=scheduler)

        def boom(env):
            yield env.timeout(5 * DT)
            raise RuntimeError("boom")

        def drip(env):
            while True:
                yield env.timeout(DT)

        env.process(boom(env))
        env.process(drip(env))
        return env

    @pytest.mark.parametrize("scheduler", ["calendar", "heapq"])
    def test_exception_leaves_no_sentinel(self, scheduler):
        env = self._env_with_bomb(scheduler)
        with pytest.raises(RuntimeError):
            env.run(until=100 * DT)
        # The drip process is still scheduled; the sentinel must not be.
        assert env.peek() == 6 * DT
        assert len(env) == 1

    def test_events_processed_exact_across_failed_window(self):
        env = self._env_with_bomb()
        with pytest.raises(RuntimeError):
            env.run(until=100 * DT)
        processed = env.events_processed
        # Resume with a fresh window: the stale sentinel (pre-fix) was
        # popped here and silently counted as a simulation event.
        env.run(until=100 * DT)
        # drip fires at 6..100 DT inclusive: 95 events, nothing more.
        assert env.events_processed - processed == 95

    def test_exception_far_before_horizon_overflow_sentinel(self):
        """Sentinel beyond the calendar horizon lives in the overflow
        heap; removal must find it there."""
        env = self._env_with_bomb()
        with pytest.raises(RuntimeError):
            env.run(until=10.0)  # far past the 512us calendar horizon
        assert len(env) == 1
        assert env.peek() == 6 * DT
        env.run(until=64 * DT)
        assert env.now == 64 * DT

    def test_sentinel_removed_when_it_is_head(self):
        env = Environment()

        def boom(env):
            yield env.timeout(5e-6)
            raise RuntimeError("boom")

        env.process(boom(env))
        with pytest.raises(RuntimeError):
            env.run(until=100e-6)
        # Nothing else scheduled: the sentinel sat in the head slot.
        assert len(env) == 0
        assert env.peek() == float("inf")
        ep = env.events_processed
        env.run(until=200e-6)
        assert env.events_processed == ep

    def test_run_until_resumes_after_exception(self):
        """Windowed stepping across a failed window equals a healthy
        windowed run of the surviving processes."""

        def digest(with_bomb):
            env = Environment()
            log = []

            def ticker(env):
                i = 0
                while True:
                    yield env.timeout(1e-6)
                    log.append((env.now, i))
                    i += 1

            env.process(ticker(env))
            if with_bomb:
                def boom(env):
                    yield env.timeout(5.5e-6)
                    raise RuntimeError("boom")
                env.process(boom(env))
                with pytest.raises(RuntimeError):
                    env.run(until=10e-6)
            env.run(until=10e-6)
            env.run(until=20e-6)
            return (env.now, tuple(log))

        healthy = digest(False)
        failed = digest(True)
        assert failed[0] == healthy[0]
        assert failed[1] == healthy[1]
