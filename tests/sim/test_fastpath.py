"""Regressions for the kernel fast path: deferred callbacks, the
events-processed counter, and ``run(until=...)`` on failed events."""

import pytest

from repro.sim import Environment
from repro.sim.kernel import EmptySchedule


class TestCallLater:
    def test_runs_in_delay_order(self):
        env = Environment()
        seen = []
        env.call_later(2.0, seen.append, "late")
        env.call_later(1.0, seen.append, "early")
        env.run()
        assert seen == ["early", "late"]
        assert env.now == 2.0

    def test_same_instant_fifo_with_events(self):
        env = Environment()
        order = []
        env.call_later(1.0, order.append, "deferred")
        timeout = env.timeout(1.0)
        timeout.callbacks.append(lambda ev: order.append("timeout"))
        env.run()
        assert order == ["deferred", "timeout"]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.call_later(-1e-9, lambda: None)

    def test_call_at_absolute_time(self):
        env = Environment(initial_time=5.0)
        seen = []
        env.call_at(7.5, seen.append, "x")
        env.run()
        assert seen == ["x"] and env.now == 7.5

    def test_call_at_past_rejected(self):
        env = Environment(initial_time=5.0)
        with pytest.raises(ValueError):
            env.call_at(4.9, lambda: None)

    def test_deferred_may_schedule_more_work(self):
        env = Environment()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                env.call_later(1.0, chain, n + 1)

        env.call_later(1.0, chain, 0)
        env.run()
        assert seen == [0, 1, 2, 3] and env.now == 4.0


class TestEventsProcessedCounter:
    def test_counts_deferred_and_events_in_run(self):
        env = Environment()
        for _ in range(3):
            env.call_later(0.0, lambda: None)
        env.timeout(1.0)
        env.run()
        assert env.events_processed == 4

    def test_counts_in_step_loop(self):
        env = Environment()
        env.call_later(0.0, lambda: None)
        env.timeout(1.0)
        env.step()
        env.step()
        assert env.events_processed == 2
        with pytest.raises(EmptySchedule):
            env.step()
        assert env.events_processed == 2

    def test_process_workload_counter_is_deterministic(self):
        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1e-6)

        counts = []
        for _ in range(2):
            env = Environment()
            env.process(ticker(env, 100))
            env.run()
            counts.append(env.events_processed)
        assert counts[0] == counts[1] > 100


class TestRunUntilFailedEvent:
    def test_rerun_with_processed_failed_event(self):
        env = Environment()

        def boom(env):
            yield env.timeout(1.0)
            raise RuntimeError("kaput")

        proc = env.process(boom(env))
        with pytest.raises(RuntimeError, match="kaput"):
            env.run(until=proc)
        # Regression: passing the same already-processed failed event to a
        # second run() must re-raise the original failure (defused), not
        # crash or silently return.
        with pytest.raises(RuntimeError, match="kaput"):
            env.run(until=proc)
        # The failure counted as handled: draining the rest of the
        # schedule does not resurface it.
        env.run()

    def test_rerun_with_processed_succeeded_event(self):
        env = Environment()

        def ok(env):
            yield env.timeout(1.0)
            return 42

        proc = env.process(ok(env))
        assert env.run(until=proc) == 42
        assert env.run(until=proc) == 42
