"""Overlay ablation reports: the decomposition survives removing stages."""

import pytest

from repro.trace.overlay import OVERLAYS, run_overlay

MESSAGES = 60


@pytest.fixture(scope="module")
def reports():
    return {name: run_overlay(name, messages=MESSAGES) for name in OVERLAYS}


def test_full_path_attributes_at_least_five_hops(reports):
    report = reports["full"]
    report.check(max_residual=0.01, min_hops=5)
    assert report.spans == MESSAGES


@pytest.mark.parametrize("name", list(OVERLAYS))
def test_every_overlay_accounts_honestly(reports, name):
    report = reports[name]
    assert report.spans == MESSAGES
    assert report.hop_sum_total + report.residual_total == \
        pytest.approx(report.e2e_total)
    assert report.residual_fraction < 0.01


@pytest.mark.parametrize("name", list(OVERLAYS))
def test_bypassed_stages_carry_no_cost(reports, name):
    report = reports[name]
    for stage in OVERLAYS[name].bypassed:
        hop = report.hops.get(stage)
        if hop is not None:
            assert hop["share"] < 0.01, \
                f"{name}: bypassed {stage} still at {hop['share']:.1%}"


def test_ablation_ladder_is_monotone(reports):
    order = ("full", "bypass_er", "bypass_tor", "loopback_shell",
             "sim_kernel_only")
    means = [reports[name].e2e["mean"] for name in order]
    assert all(a > b for a, b in zip(means, means[1:])), means


def test_surviving_hops_keep_their_costs(reports):
    # Removing the ER must not change what the LTL engine itself costs.
    full = reports["full"].hops
    bypass = reports["bypass_er"].hops
    for stage in ("ltl.tx", "ltl.rx", "role.service"):
        assert bypass[stage]["mean"] == \
            pytest.approx(full[stage]["mean"], rel=0.05)


def test_kernel_floor_is_role_service_only(reports):
    report = reports["sim_kernel_only"]
    assert set(report.hops) == {"role.service"}
    assert report.e2e["mean"] == \
        pytest.approx(report.hops["role.service"]["mean"])


def test_run_overlay_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown overlay"):
        run_overlay("nope")


def test_overlay_runs_are_deterministic():
    a = run_overlay("full", messages=20, seed=7)
    b = run_overlay("full", messages=20, seed=7)
    assert a.to_dict() == b.to_dict()
    assert [s.marks for s in a.sampled_spans] == \
        [s.marks for s in b.sampled_spans]
