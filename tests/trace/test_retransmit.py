"""Trace attribution across LTL go-back-N retransmits.

The wire/switch marks of a doomed traversal must be rolled back and the
whole first-transmit -> retransmit interval must land in the ``ltl.retx``
bucket — never double-counting the physical hops the lost frame already
paid for.  Uses the fabric's delivery-tap hook to drop exactly one
TOR->host packet, forcing a timer-driven retransmission on the otherwise
healthy full datapath.
"""

import pytest

from repro.core.cloud import ConfigurableCloud
from repro.trace import Stage, TraceRecorder


def _run_with_drops(drop_first_n: int, messages: int = 5):
    """Traced one-way sends over the full path, dropping the first N
    data deliveries to the receiving host."""
    cloud = ConfigurableCloud(seed=0)
    cloud.add_server(0, enroll=False)
    cloud.add_server(1, enroll=False)
    cloud.connect(0, 1)
    env = cloud.env
    recorder = TraceRecorder(sample_rate=1.0, seed=0, max_spans=messages)
    shell_a, shell_b = cloud.shell(0), cloud.shell(1)

    def role_receive(payload, _length):
        # Payload IS the span's context; close it on arrival.
        payload.tap(Stage.ROLE_SERVICE, env.now)
        recorder.complete(payload, env.now)

    shell_b.role_receive = role_receive

    remaining = [drop_first_n]

    def drop_tap(packet):
        if remaining[0] > 0:
            remaining[0] -= 1
            return None      # swallow the delivery: frame lost on the floor
        return packet

    cloud.fabric.install_tap(1, drop_tap)

    def driver(env):
        for i in range(messages):
            ctx = recorder.start(env.now, request_id=i)
            shell_a.remote_send(1, ctx, 128, trace=ctx)
            yield env.timeout(200e-6)   # > retransmit timeout (50 us)

    env.process(driver(env), name="driver")
    env.run(until=env.now + messages * 200e-6 + 5e-3)
    return cloud, recorder.report()


def test_clean_run_has_no_retx_bucket():
    cloud, report = _run_with_drops(0)
    assert report.spans == 5
    assert Stage.LTL_RETX.value not in report.hops
    assert cloud.shell(0).ltl.stats.retransmissions == 0


def test_dropped_frame_lands_in_retx_bucket():
    cloud, report = _run_with_drops(1)
    assert report.spans == 5
    assert cloud.shell(0).ltl.stats.retransmissions >= 1
    retx = report.hops[Stage.LTL_RETX.value]
    assert retx["count"] == 1
    # The bucket holds the full loss -> retransmission wait, so it is at
    # least the 50 us retransmit timeout.
    assert retx["total"] >= 50e-6


def test_retransmit_does_not_double_count_physical_hops():
    _cloud, report = _run_with_drops(1)
    assert report.spans == 5
    # Per-span forensics: every span, including the retransmitted one,
    # crosses the TOR exactly once and runs the MAC egress pipeline once.
    assert len(report.sampled_spans) == 5
    for span in report.sampled_spans:
        stages = [s for s, _ in span.marks]
        assert stages.count(Stage.SWITCH_TOR.value) == 1, span.marks
        assert stages.count(Stage.SHELL_MAC_RX.value) == 1, span.marks
        # Interval attribution stays exact even across the rollback.
        total = sum(d for _, d in span.durations())
        assert total == pytest.approx(span.e2e, rel=1e-9)


def test_retransmitted_span_is_slower_but_honest():
    _cloud, clean = _run_with_drops(0)
    _cloud, lossy = _run_with_drops(1)
    # Aggregate accounting still reconstructs exactly and the residual
    # gate still passes — retransmission cannot leak unattributed time.
    assert lossy.hop_sum_total + lossy.residual_total == \
        pytest.approx(lossy.e2e_total)
    lossy.check(max_residual=0.01, min_hops=5)
    # The lossy run's worst span pays the timeout; the clean one doesn't.
    worst_clean = max(s.e2e for s in clean.sampled_spans)
    worst_lossy = max(s.e2e for s in lossy.sampled_spans)
    assert worst_lossy > worst_clean + 40e-6
    # Non-retransmitted spans are unaffected (modulo per-packet switch
    # jitter, whose RNG stream shifts once a packet is dropped).
    best_lossy = min(s.e2e for s in lossy.sampled_spans)
    assert best_lossy == pytest.approx(min(s.e2e for s in clean.sampled_spans),
                                       rel=0.01)
