"""TraceContext / TraceRecorder invariants: honest accounting by construction."""

import pytest

from repro.trace import Stage, TraceContext, TraceRecorder


def test_tap_attributes_interval_since_previous_mark():
    ctx = TraceContext(t0=10.0)
    ctx.tap(Stage.ER_INGRESS, 10.5)
    ctx.tap(Stage.ER_SWITCH, 11.25)
    ctx.tap(Stage.LINK_WIRE, 13.0)
    assert ctx.durations() == [
        (Stage.ER_INGRESS, 0.5),
        (Stage.ER_SWITCH, 0.75),
        (Stage.LINK_WIRE, 1.75),
    ]
    assert ctx.last_time == 13.0


def test_durations_sum_to_last_mark_minus_t0():
    ctx = TraceContext(t0=1.0)
    for i, stage in enumerate(
            (Stage.LTL_TX, Stage.LINK_WIRE, Stage.LINK_WIRE, Stage.LTL_RX)):
        ctx.tap(stage, 1.0 + 0.1 * (i + 1))
    total = sum(d for _, d in ctx.durations())
    assert total == pytest.approx(ctx.last_time - ctx.t0)


def test_totals_aggregates_repeated_stages():
    ctx = TraceContext(t0=0.0)
    ctx.tap(Stage.LINK_WIRE, 1.0)   # 1.0
    ctx.tap(Stage.SWITCH_TOR, 1.5)  # 0.5
    ctx.tap(Stage.LINK_WIRE, 3.0)   # 1.5 — second physical wire hop
    totals = ctx.totals()
    assert totals[Stage.LINK_WIRE] == pytest.approx(2.5)
    assert totals[Stage.SWITCH_TOR] == pytest.approx(0.5)


def test_checkpoint_rewind_discards_doomed_marks():
    ctx = TraceContext(t0=0.0)
    ctx.tap(Stage.LTL_TX, 1.0)
    cp = ctx.checkpoint()
    ctx.tap(Stage.SHELL_MAC_TX, 2.0)
    ctx.tap(Stage.SWITCH_TOR, 3.0)
    ctx.rewind(cp)
    ctx.tap(Stage.LTL_RETX, 5.0)
    assert [s for s, _ in ctx.marks] == [Stage.LTL_TX, Stage.LTL_RETX]
    # The retransmit bucket absorbed the whole doomed interval.
    assert ctx.totals()[Stage.LTL_RETX] == pytest.approx(4.0)


def test_empty_context_last_time_is_t0():
    ctx = TraceContext(t0=7.0)
    assert ctx.last_time == 7.0
    assert ctx.durations() == []
    assert ctx.totals() == {}


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
def _span(recorder, t0, hops):
    """Open a span at ``t0``, tap ``hops`` [(stage, at)...], complete at last."""
    ctx = recorder.start(t0)
    for stage, at in hops:
        ctx.tap(stage, at)
    recorder.complete(ctx, hops[-1][1])
    return ctx


def test_recorder_reconstruction_is_exact():
    recorder = TraceRecorder()
    _span(recorder, 0.0, [(Stage.LTL_TX, 0.25), (Stage.LINK_WIRE, 1.0)])
    _span(recorder, 5.0, [(Stage.LTL_TX, 5.5), (Stage.LINK_WIRE, 7.0)])
    report = recorder.report()
    assert report.spans == 2
    assert report.hop_sum_total + report.residual_total == \
        pytest.approx(report.e2e_total)
    assert report.residual_total == 0.0
    report.check(min_hops=2)


def test_recorder_residual_is_tail_after_last_tap():
    recorder = TraceRecorder()
    ctx = recorder.start(0.0)
    ctx.tap(Stage.ROLE_SERVICE, 0.9)
    recorder.complete(ctx, 1.0)     # 0.1 unattributed
    report = recorder.report()
    assert report.residual_total == pytest.approx(0.1)
    assert report.residual_fraction == pytest.approx(0.1)
    with pytest.raises(AssertionError, match="residual"):
        report.check(max_residual=0.01, min_hops=1)


def test_recorder_min_hops_gate():
    recorder = TraceRecorder()
    _span(recorder, 0.0, [(Stage.ROLE_SERVICE, 1.0)])
    with pytest.raises(AssertionError, match="hops"):
        recorder.report().check(min_hops=5)


def test_hop_count_is_per_span_not_per_tap():
    recorder = TraceRecorder()
    _span(recorder, 0.0, [(Stage.LINK_WIRE, 1.0), (Stage.SWITCH_TOR, 1.5),
                          (Stage.LINK_WIRE, 2.0)])
    report = recorder.report()
    # link.wire tapped twice in the one span, recorded as one summed hop.
    assert report.hops["link.wire"]["count"] == 1
    assert report.hops["link.wire"]["total"] == pytest.approx(1.5)


def test_sampling_is_deterministic_and_bounded():
    def capture(seed):
        recorder = TraceRecorder(sample_rate=0.5, seed=seed, max_spans=8)
        for i in range(64):
            ctx = recorder.start(float(i), request_id=i)
            ctx.tap(Stage.ROLE_SERVICE, i + 0.5)
            recorder.complete(ctx, i + 0.5)
        return [s.request_id for s in recorder.report().sampled_spans]

    assert capture(3) == capture(3)
    assert capture(3) != capture(4)
    assert len(capture(3)) <= 8


def test_sampled_span_marks_are_copied():
    recorder = TraceRecorder(sample_rate=1.0, seed=0, max_spans=4)
    ctx = recorder.start(0.0, request_id="r")
    ctx.tap(Stage.LTL_TX, 0.5)
    recorder.complete(ctx, 0.5)
    ctx.rewind(0)  # later mutation must not corrupt the stored span
    span = recorder.report().sampled_spans[0]
    assert span.marks == (("ltl.tx", 0.5),)
    assert span.e2e == pytest.approx(0.5)
    assert span.durations() == [("ltl.tx", 0.5)]


def test_recorder_rejects_bad_sample_rate():
    with pytest.raises(ValueError):
        TraceRecorder(sample_rate=1.5)


def test_report_format_table_and_to_dict():
    recorder = TraceRecorder()
    for i in range(10):
        _span(recorder, float(i),
              [(Stage.LTL_TX, i + 0.25), (Stage.ROLE_SERVICE, i + 1.0)])
    report = recorder.report()
    table = report.format_table()
    assert "ltl.tx" in table and "role.service" in table
    assert "end-to-end" in table
    payload = report.to_dict()
    assert payload["spans"] == 10
    assert payload["residual_fraction"] == 0.0
    assert set(payload["hops"]) == {"ltl.tx", "role.service"}
    for entry in payload["hops"].values():
        assert {"count", "total", "mean", "share",
                "p50", "p99", "p99_9"} <= set(entry)


# ----------------------------------------------------------------------
# Abandon: spans closed at a drop point must be counted, not leaked
# ----------------------------------------------------------------------
def test_abandon_counts_span_and_keeps_accounting_exact():
    recorder = TraceRecorder()
    ctx = recorder.start(0.0)
    ctx.tap(Stage.LTL_TX, 0.25)
    ctx.tap(Stage.LINK_WIRE, 0.75)
    ctx.abandon(1.0)  # dropped 0.25 s after the last tap
    report = recorder.report()
    assert recorder.abandoned == 1
    assert report.abandoned_spans == 1
    assert report.spans == 0  # no normal completion
    # Honest accounting still holds exactly: hop time + residual == e2e.
    assert report.hop_sum_total == pytest.approx(0.75)
    assert report.residual_total == pytest.approx(0.25)
    assert report.e2e_total == pytest.approx(1.0)
    assert report.hop_sum_total + report.residual_total == \
        pytest.approx(report.e2e_total)
    # The drop's hop durations are folded in, but the truncated span
    # must not pollute the end-to-end latency quantiles.
    assert not report.e2e


def test_abandon_is_idempotent_and_noop_after_complete():
    recorder = TraceRecorder()
    ctx = recorder.start(0.0)
    ctx.tap(Stage.LTL_TX, 0.5)
    ctx.abandon(1.0)
    ctx.abandon(2.0)  # double-drop: must not double-count
    assert recorder.abandoned == 1
    done = recorder.start(0.0)
    done.tap(Stage.LTL_TX, 0.5)
    recorder.complete(done, 1.0)
    done.abandon(2.0)  # drop after delivery: too late, a no-op
    assert recorder.abandoned == 1
    assert recorder.completed == 1


def test_complete_after_abandon_is_noop():
    recorder = TraceRecorder()
    ctx = recorder.start(0.0)
    ctx.abandon(1.0)
    recorder.complete(ctx, 2.0)
    assert recorder.completed == 0
    assert recorder.abandoned == 1


def test_bare_context_abandon_just_closes():
    ctx = TraceContext(t0=0.0)
    assert not ctx.closed
    ctx.abandon(1.0)
    assert ctx.closed
