"""Tests for the §II-B deployment/reliability study."""

import pytest

from repro.deployment import (
    FLEET_SIZE,
    Fleet,
    MirroredTrafficStudy,
    OBSERVATION_DAYS,
    RANKING_SERVERS,
    expected_report,
)


class TestExpectedReport:
    """Mean counts at paper scale must equal the paper's observations."""

    def test_paper_scale_means(self):
        expected = expected_report()
        assert expected["fpga_hard_failures"] == pytest.approx(2.0)
        assert expected["cable_failures"] == pytest.approx(1.0)
        assert expected["pcie_training_failures"] == pytest.approx(5.0)
        assert expected["dram_calibration_failures"] == pytest.approx(8.0)
        assert expected["seu_flips"] == pytest.approx(
            FLEET_SIZE * OBSERVATION_DAYS / 1025)

    def test_scaling_with_fleet(self):
        small = expected_report(fleet_size=576, days=30)
        assert small["fpga_hard_failures"] == pytest.approx(0.2)


class TestMirroredTrafficStudy:
    def test_deterministic(self):
        a = MirroredTrafficStudy(seed=3).run()
        b = MirroredTrafficStudy(seed=3).run()
        assert a.as_dict() == b.as_dict()

    def test_counts_near_expectations(self):
        """Average of many sampled deployments ~ paper's counts."""
        reports = [MirroredTrafficStudy(seed=s).run() for s in range(30)]
        mean_hard = sum(r.fpga_hard_failures for r in reports) / 30
        mean_dram = sum(r.dram_calibration_failures for r in reports) / 30
        mean_seu = sum(r.seu_flips for r in reports) / 30
        assert mean_hard == pytest.approx(2.0, abs=1.0)
        assert mean_dram == pytest.approx(8.0, abs=2.5)
        assert mean_seu == pytest.approx(168.6, rel=0.1)

    def test_seu_mean_days_near_1025(self):
        report = MirroredTrafficStudy(seed=0).run()
        assert report.seu_mean_days_between_flips == pytest.approx(
            1025, rel=0.35)

    def test_hangs_recovered(self):
        report = MirroredTrafficStudy(seed=1).run()
        assert report.seu_recoveries == report.seu_role_hangs

    def test_report_dict_keys(self):
        report = MirroredTrafficStudy(seed=0).run()
        data = report.as_dict()
        assert data["fleet_size"] == FLEET_SIZE
        assert "seu_mean_days_between_flips" in data


class TestFleet:
    def test_burn_in_approves_fleet(self):
        fleet = Fleet(size=600, seed=0)
        results = fleet.run_burn_in()
        assert len(results) == 600
        summary_approved = sum(1 for r in results if r.approved)
        # 'The servers all passed': power variation keeps draw within
        # the 35 W electrical limit.
        assert summary_approved == 600

    def test_power_draw_below_electrical_limit(self):
        fleet = Fleet(size=300, seed=1)
        results = fleet.run_burn_in()
        assert max(r.power_virus_w for r in results) < 35.0

    def test_bring_up_failures_sampled(self):
        fleet = Fleet(size=FLEET_SIZE, seed=2)
        fleet.run_burn_in()
        summary = fleet.summary()
        # Binomial(5760, 5/5760) and (5760, 8/5760): loose bounds.
        assert 0 <= summary["pcie_training_failures"] <= 15
        assert 1 <= summary["dram_calibration_failures"] <= 20

    def test_deploy_ranking_takes_3081(self):
        fleet = Fleet(size=FLEET_SIZE, seed=3)
        fleet.run_burn_in()
        servers = fleet.deploy_ranking()
        assert len(servers) == RANKING_SERVERS

    def test_deploy_before_burn_in_rejected(self):
        with pytest.raises(RuntimeError):
            Fleet(size=10).deploy_ranking(5)

    def test_dram_failures_marked_repaired(self):
        fleet = Fleet(size=FLEET_SIZE, seed=4)
        results = fleet.run_burn_in()
        failed = [r for r in results if not r.dram_calibrated_first_try]
        assert all(r.dram_repaired_by_reconfig for r in failed)
        assert all(r.approved for r in failed)  # repaired, still shipped
