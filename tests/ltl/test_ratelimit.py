"""Tests for the token bucket and random-early-drop limiter."""

import random

import pytest

from repro.ltl.ratelimit import BandwidthLimiter, RedConfig, TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate_bps=8e6, burst_bytes=1000)
        assert bucket.try_consume(1000, now=0.0)
        assert not bucket.try_consume(1, now=0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate_bps=8e6, burst_bytes=1000)  # 1 MB/s
        bucket.try_consume(1000, now=0.0)
        assert not bucket.try_consume(500, now=0.0001)  # only 100 B back
        assert bucket.try_consume(500, now=0.001)       # 1000 B back

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_bps=8e6, burst_bytes=1000)
        assert bucket.fill_fraction(now=100.0) == 1.0
        assert not bucket.try_consume(1001, now=100.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0, burst_bytes=100)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=1e6, burst_bytes=0)


class TestRedConfig:
    def test_no_drops_above_start(self):
        red = RedConfig(start_fraction=0.5)
        assert red.drop_probability(0.6) == 0.0
        assert red.drop_probability(0.5) == 0.0

    def test_ramp_to_max_at_empty(self):
        red = RedConfig(start_fraction=0.5, max_drop_probability=0.8)
        assert red.drop_probability(0.0) == pytest.approx(0.8)
        assert red.drop_probability(0.25) == pytest.approx(0.4)


class TestBandwidthLimiter:
    def test_within_rate_all_admitted(self):
        limiter = BandwidthLimiter(rate_bps=80e6, burst_bytes=100_000,
                                   rng=random.Random(0))
        now = 0.0
        admitted = 0
        for _ in range(100):
            if limiter.admit(1000, now):
                admitted += 1
            now += 1000 * 8 / 80e6  # exactly at the configured rate
        assert admitted == 100

    def test_over_rate_drops_statistically(self):
        limiter = BandwidthLimiter(rate_bps=8e6, burst_bytes=10_000,
                                   rng=random.Random(0))
        # Offer 10x the configured rate.
        now = 0.0
        for _ in range(1000):
            limiter.admit(1000, now)
            now += 1000 * 8 / 80e6
        assert limiter.dropped > 0
        # Admitted goodput is close to the configured rate.
        goodput_bps = limiter.admitted * 1000 * 8 / now
        assert goodput_bps == pytest.approx(8e6, rel=0.35)
