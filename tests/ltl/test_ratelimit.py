"""Tests for the token bucket and random-early-drop limiter."""

import random

import pytest

from repro.ltl.ratelimit import (BandwidthLimiter, RandomEarlyDropper,
                                 RedConfig, TokenBucket)
from repro.sim.randomness import RandomStreams


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate_bps=8e6, burst_bytes=1000)
        assert bucket.try_consume(1000, now=0.0)
        assert not bucket.try_consume(1, now=0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate_bps=8e6, burst_bytes=1000)  # 1 MB/s
        bucket.try_consume(1000, now=0.0)
        assert not bucket.try_consume(500, now=0.0001)  # only 100 B back
        assert bucket.try_consume(500, now=0.001)       # 1000 B back

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_bps=8e6, burst_bytes=1000)
        assert bucket.fill_fraction(now=100.0) == 1.0
        assert not bucket.try_consume(1001, now=100.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0, burst_bytes=100)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=1e6, burst_bytes=0)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=1e6, burst_bytes=100,
                        initial_tokens=101.0)

    def test_start_time_anchors_refill(self):
        """Regression: a bucket created mid-simulation must not credit
        itself refill for the simulated past (``_last_refill`` used to
        anchor at 0.0 regardless of creation time)."""
        bucket = TokenBucket(rate_bps=8e6, burst_bytes=1000,
                             start_time=100.0, initial_tokens=0.0)
        # At creation time there is no credit at all...
        assert not bucket.try_consume(1, now=100.0)
        # ...and 0.1 ms later exactly 100 bytes, not 100 s worth.
        assert not bucket.try_consume(101, now=100.0001)
        assert bucket.try_consume(100, now=100.0001)

    def test_initial_tokens_partial(self):
        bucket = TokenBucket(rate_bps=8e6, burst_bytes=1000,
                             initial_tokens=250.0)
        assert bucket.fill_fraction(now=0.0) == pytest.approx(0.25)
        assert bucket.try_consume(250, now=0.0)
        assert not bucket.try_consume(1, now=0.0)


class TestRedConfig:
    def test_no_drops_above_start(self):
        red = RedConfig(start_fraction=0.5)
        assert red.drop_probability(0.6) == 0.0
        assert red.drop_probability(0.5) == 0.0

    def test_ramp_to_max_at_empty(self):
        red = RedConfig(start_fraction=0.5, max_drop_probability=0.8)
        assert red.drop_probability(0.0) == pytest.approx(0.8)
        assert red.drop_probability(0.25) == pytest.approx(0.4)


class TestRandomEarlyDropper:
    def test_deterministic_from_streams(self):
        """Two droppers built from equal-seed stream registries make
        identical decisions; a different seed diverges."""
        decisions = []
        for seed in (7, 7, 8):
            dropper = RandomEarlyDropper(streams=RandomStreams(seed=seed))
            decisions.append(
                [dropper.should_drop(0.1) for _ in range(200)])
        assert decisions[0] == decisions[1]
        assert decisions[0] != decisions[2]

    def test_no_randomness_consumed_while_idle(self):
        """Above the RED start fraction the ramp is zero and the stream
        must not advance — an idle limiter costs no draws."""
        streams = RandomStreams(seed=3)
        dropper = RandomEarlyDropper(streams=streams)
        for _ in range(50):
            assert not dropper.should_drop(0.9)
        untouched = RandomStreams(seed=3).stream("ltl.red")
        assert dropper.rng.random() == untouched.random()
        assert dropper.passes == 50 and dropper.drops == 0

    def test_ramp_drops_when_depleted(self):
        dropper = RandomEarlyDropper(
            config=RedConfig(start_fraction=0.5, max_drop_probability=1.0),
            rng=random.Random(1))
        results = [dropper.should_drop(0.0) for _ in range(10)]
        assert all(results)  # probability 1.0 at empty


class TestBandwidthLimiter:
    def test_within_rate_all_admitted(self):
        limiter = BandwidthLimiter(rate_bps=80e6, burst_bytes=100_000,
                                   rng=random.Random(0))
        now = 0.0
        admitted = 0
        for _ in range(100):
            if limiter.admit(1000, now):
                admitted += 1
            now += 1000 * 8 / 80e6  # exactly at the configured rate
        assert admitted == 100

    def test_over_rate_drops_statistically(self):
        limiter = BandwidthLimiter(rate_bps=8e6, burst_bytes=10_000,
                                   rng=random.Random(0))
        # Offer 10x the configured rate.
        now = 0.0
        for _ in range(1000):
            limiter.admit(1000, now)
            now += 1000 * 8 / 80e6
        assert limiter.dropped > 0
        # Admitted goodput is close to the configured rate.
        goodput_bps = limiter.admitted * 1000 * 8 / now
        assert goodput_bps == pytest.approx(8e6, rel=0.35)
