"""Tests for the LTL protocol engine: reliability, ordering, flow control."""

import pytest

from repro.ltl import (
    DirectTransport,
    FaultModel,
    LtlConfig,
    LtlEngine,
    connect_pair,
)
from repro.sim import Environment


def make_pair(env, delay=1e-6, faults=None, config=None):
    transport = DirectTransport(env, delay=delay, faults=faults)
    a = LtlEngine(env, host_index=0, config=config)
    b = LtlEngine(env, host_index=1, config=config)
    transport.register(a)
    transport.register(b)
    conn_ab, conn_ba = connect_pair(a, b)
    return transport, a, b, conn_ab, conn_ba


class TestCleanPath:
    def test_single_message_delivered(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env)
        got = []
        b.on_message = lambda c, p, n: got.append((p, n))
        a.send_message(conn_ab, b"hello", 5)
        env.run(until=1e-3)
        assert got == [(b"hello", 5)]

    def test_large_message_fragmented_and_reassembled(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env)
        got = []
        b.on_message = lambda c, p, n: got.append((p, n))
        payload = bytes(range(256)) * 20  # 5120 B > MTU
        a.send_message(conn_ab, payload, len(payload))
        env.run(until=1e-3)
        assert got == [(payload, len(payload))]
        assert a.stats.frames_sent >= 4  # fragmented

    def test_bidirectional_connections(self):
        env = Environment()
        _t, a, b, conn_ab, conn_ba = make_pair(env)
        got_a, got_b = [], []
        a.on_message = lambda c, p, n: got_a.append(p)
        b.on_message = lambda c, p, n: got_b.append(p)
        a.send_message(conn_ab, b"to-b", 4)
        b.send_message(conn_ba, b"to-a", 4)
        env.run(until=1e-3)
        assert got_a == [b"to-a"] and got_b == [b"to-b"]

    def test_ordering_across_messages(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        for i in range(20):
            a.send_message(conn_ab, i, 100)
        env.run(until=5e-3)
        assert got == list(range(20))

    def test_rtt_samples_recorded(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env, delay=2e-6)
        b.on_message = lambda c, p, n: None
        a.send_message(conn_ab, b"x", 1)
        env.run(until=1e-3)
        samples = a.rtt_samples()
        assert len(samples) == 1
        # RTT >= 2 * transport delay.
        assert samples[0] >= 4e-6

    def test_opaque_payload_single_fragment(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env)
        got = []
        b.on_message = lambda c, p, n: got.append((p, n))
        marker = {"kind": "opaque"}
        a.send_message(conn_ab, marker, 200)
        env.run(until=1e-3)
        assert got == [(marker, 200)]

    def test_ack_bookkeeping(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env)
        b.on_message = lambda c, p, n: None
        a.send_message(conn_ab, b"x" * 3000, 3000)
        env.run(until=1e-3)
        assert a.stats.acks_received == b.stats.acks_sent
        state = a.send_table.lookup(conn_ab)
        assert state.in_flight == 0


class TestReliability:
    def test_survives_heavy_drops(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(
            env, faults=FaultModel(drop_probability=0.3))
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        for i in range(40):
            a.send_message(conn_ab, f"m{i}".encode(), 64)
        env.run(until=0.2)
        assert got == [f"m{i}".encode() for i in range(40)]
        assert a.stats.retransmissions > 0

    def test_survives_reordering_with_nacks(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(
            env, faults=FaultModel(reorder_probability=0.3))
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        for i in range(40):
            a.send_message(conn_ab, i, 64)
        env.run(until=0.2)
        assert got == list(range(40))
        assert b.stats.nacks_sent > 0 or b.stats.out_of_order == 0

    def test_duplicates_dropped(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(
            env, faults=FaultModel(duplicate_probability=0.5))
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        for i in range(30):
            a.send_message(conn_ab, i, 64)
        env.run(until=0.2)
        assert got == list(range(30))
        assert b.stats.duplicates_dropped > 0

    def test_all_faults_combined_exactly_once_in_order(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(
            env, faults=FaultModel(drop_probability=0.15,
                                   reorder_probability=0.15,
                                   duplicate_probability=0.1))
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        payload = bytes(1000)
        for i in range(30):
            a.send_message(conn_ab, i, 3000)  # multi-fragment too
        env.run(until=0.5)
        assert got == list(range(30))

    def test_timeout_drives_retransmission(self):
        """Total blackout then recovery: the 50 us timer resends."""
        env = Environment()
        transport = DirectTransport(env, delay=1e-6, faults=FaultModel(
            drop_probability=1.0))
        config = LtlConfig(max_consecutive_timeouts=1000)
        a = LtlEngine(env, 0, config=config)
        b = LtlEngine(env, 1, config=config)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        a.send_message(conn_ab, b"persist", 7)
        env.run(until=0.4e-3)
        assert got == []
        assert a.stats.timeouts > 0
        transport.faults.drop_probability = 0.0  # network heals
        env.run(until=1e-3)
        assert got == [b"persist"]

    def test_connection_failure_detection(self):
        """Persistent timeouts identify failing nodes quickly."""
        env = Environment()
        transport = DirectTransport(env, delay=1e-6, faults=FaultModel(
            drop_probability=1.0))
        config = LtlConfig(max_consecutive_timeouts=4)
        a = LtlEngine(env, 0, config=config)
        b = LtlEngine(env, 1, config=config)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        failures = []
        a.on_connection_failed = lambda cid, host: failures.append(
            (cid, host, env.now))
        a.send_message(conn_ab, b"x", 1)
        env.run(until=10e-3)
        assert failures and failures[0][1] == 1
        # Detection happens within ~max_timeouts * (timeout + slack).
        assert failures[0][2] < 1e-3
        with pytest.raises(RuntimeError):
            a.send_message(conn_ab, b"after-failure", 1)


class TestWindow:
    def test_window_limits_in_flight(self):
        env = Environment()
        config = LtlConfig(window_frames=4)
        # Slow transport so the window fills.
        transport = DirectTransport(env, delay=100e-6)
        a = LtlEngine(env, 0, config=config)
        b = LtlEngine(env, 1, config=config)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        b.on_message = lambda c, p, n: None
        max_in_flight = []

        for i in range(20):
            a.send_message(conn_ab, i, 64)

        def monitor(env):
            state = a.send_table.lookup(conn_ab)
            for _ in range(200):
                max_in_flight.append(state.in_flight)
                yield env.timeout(10e-6)

        env.process(monitor(env))
        env.run(until=0.1)
        assert max(max_in_flight) <= 4

    def test_everything_delivered_despite_small_window(self):
        env = Environment()
        config = LtlConfig(window_frames=2)
        transport = DirectTransport(env, delay=10e-6)
        a = LtlEngine(env, 0, config=config)
        b = LtlEngine(env, 1, config=config)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        for i in range(15):
            a.send_message(conn_ab, i, 64)
        env.run(until=0.1)
        assert got == list(range(15))


class TestRateLimiting:
    def test_bandwidth_limiter_slows_sender(self):
        env = Environment()
        limited = LtlConfig(rate_limit_bps=100e6)
        transport = DirectTransport(env, delay=1e-6)
        a = LtlEngine(env, 0, config=limited)
        b = LtlEngine(env, 1)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        done = []
        b.on_message = lambda c, p, n: done.append(env.now)
        # 40 x 1400 B messages at 100 Mb/s: > 4 ms of wire time, while an
        # unlimited sender would finish in tens of microseconds.
        for i in range(40):
            a.send_message(conn_ab, bytes(1400), 1400)
        env.run(until=1.0)
        assert len(done) == 40
        assert done[-1] > 3e-3

    def test_connection_teardown(self):
        env = Environment()
        _t, a, b, conn_ab, conn_ba = make_pair(env)
        a.close_send_connection(conn_ab)
        with pytest.raises(Exception):
            a.send_message(conn_ab, b"x", 1)


class TestIdleTimerParking:
    def test_idle_engines_do_not_poll(self):
        """The retransmit timer parks while nothing is unacked.

        An idle pair used to burn one timer event per ``timer_period`` per
        engine forever; a long idle stretch must now cost O(1) events.
        """
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env)
        a.send_message(conn_ab, b"warmup", 6)
        env.run(until=1e-3)
        busy_events = env.events_processed
        env.run(until=1.0)  # ~1 simulated second of nothing happening
        idle_events = env.events_processed - busy_events
        period_ticks = 1.0 / a.config.timer_period
        assert idle_events < period_ticks / 100

    def test_timer_wakes_for_retransmission(self):
        """Parking must not break loss recovery: a frame dropped on an
        otherwise-idle connection is still retransmitted and delivered."""
        env = Environment()
        faults = FaultModel(drop_probability=1.0)
        transport, a, b, conn_ab, _ = make_pair(env, faults=faults)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        a.send_message(conn_ab, b"lost", 4)
        env.run(until=5 * a.config.retransmit_timeout)
        assert got == []  # everything dropped so far
        transport.faults.drop_probability = 0.0
        env.run(until=env.now + 1e-3)
        assert got == [b"lost"]
        assert a.stats.retransmissions >= 1
