"""Tests for the LTL frame format and serialization."""

import pytest

from repro.ltl.frames import (
    LTL_HEADER_BYTES,
    TYPE_DATA,
    LtlFrame,
    make_ack,
    make_data_frame,
    make_nack,
    nack_range,
)


class TestDataFrames:
    def test_single_fragment_flags(self):
        frame = make_data_frame(1, 0, 0, 0, 1, b"x", 1)
        assert frame.is_first_fragment and frame.is_last_fragment

    def test_middle_fragment_flags(self):
        frame = make_data_frame(1, 5, 2, 1, 3, b"x", 1)
        assert not frame.is_first_fragment
        assert not frame.is_last_fragment

    def test_last_fragment_flag(self):
        frame = make_data_frame(1, 6, 2, 2, 3, b"x", 1)
        assert frame.is_last_fragment and not frame.is_first_fragment

    def test_wire_bytes_includes_header(self):
        frame = make_data_frame(1, 0, 0, 0, 1, b"x" * 100, 100)
        assert frame.wire_bytes == LTL_HEADER_BYTES + 100

    def test_payload_bytes_inferred_from_bytes(self):
        frame = LtlFrame(frame_type=TYPE_DATA, connection_id=0,
                         payload=b"abcd")
        assert frame.payload_bytes == 4

    def test_type_predicates(self):
        assert make_data_frame(0, 0, 0, 0, 1, b"", 0).is_data
        assert make_ack(0, 5).is_ack
        assert make_nack(0, (1, 2)).is_nack


class TestHeaderSerialization:
    def test_roundtrip(self):
        frame = make_data_frame(connection_id=77, seq=1234,
                                message_id=42, fragment=1,
                                total_fragments=3, payload=b"zz",
                                payload_bytes=2)
        decoded = LtlFrame.header_from_bytes(frame.header_to_bytes())
        assert decoded.connection_id == 77
        assert decoded.seq == 1234
        assert decoded.message_id == 42
        assert decoded.fragment == 1
        assert decoded.total_fragments == 3
        assert decoded.payload_bytes == 2
        assert decoded.frame_type == TYPE_DATA

    def test_bad_magic_rejected(self):
        raw = bytearray(make_ack(0, 1).header_to_bytes())
        raw[0] ^= 0xFF
        with pytest.raises(ValueError):
            LtlFrame.header_from_bytes(bytes(raw))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            LtlFrame.header_from_bytes(b"\x00" * 4)


class TestAckNack:
    def test_ack_carries_cumulative_seq(self):
        ack = make_ack(3, 17)
        assert ack.ack_seq == 17
        assert not ack.congestion_flag

    def test_ack_congestion_flag(self):
        assert make_ack(3, 17, congestion=True).congestion_flag

    def test_nack_range_roundtrip(self):
        nack = make_nack(9, (10, 14))
        assert nack_range(nack) == (10, 14)

    def test_nack_range_requires_nack(self):
        with pytest.raises(ValueError):
            nack_range(make_ack(0, 0))
