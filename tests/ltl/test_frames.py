"""Tests for the LTL frame format and serialization."""

from dataclasses import dataclass

import pytest

from repro.ltl.frames import (
    LTL_HEADER_BYTES,
    TYPE_DATA,
    LtlFrame,
    make_ack,
    make_data_frame,
    make_nack,
    nack_range,
)


@dataclass
class OpaquePayload:
    """Stand-in for a simulation object riding an LTL frame."""

    kind: str
    values: tuple


class TestDataFrames:
    def test_single_fragment_flags(self):
        frame = make_data_frame(1, 0, 0, 0, 1, b"x", 1)
        assert frame.is_first_fragment and frame.is_last_fragment

    def test_middle_fragment_flags(self):
        frame = make_data_frame(1, 5, 2, 1, 3, b"x", 1)
        assert not frame.is_first_fragment
        assert not frame.is_last_fragment

    def test_last_fragment_flag(self):
        frame = make_data_frame(1, 6, 2, 2, 3, b"x", 1)
        assert frame.is_last_fragment and not frame.is_first_fragment

    def test_wire_bytes_includes_header(self):
        frame = make_data_frame(1, 0, 0, 0, 1, b"x" * 100, 100)
        assert frame.wire_bytes == LTL_HEADER_BYTES + 100

    def test_payload_bytes_inferred_from_bytes(self):
        frame = LtlFrame(frame_type=TYPE_DATA, connection_id=0,
                         payload=b"abcd")
        assert frame.payload_bytes == 4

    def test_type_predicates(self):
        assert make_data_frame(0, 0, 0, 0, 1, b"", 0).is_data
        assert make_ack(0, 5).is_ack
        assert make_nack(0, (1, 2)).is_nack


class TestHeaderSerialization:
    def test_roundtrip(self):
        frame = make_data_frame(connection_id=77, seq=1234,
                                message_id=42, fragment=1,
                                total_fragments=3, payload=b"zz",
                                payload_bytes=2)
        decoded = LtlFrame.header_from_bytes(frame.header_to_bytes())
        assert decoded.connection_id == 77
        assert decoded.seq == 1234
        assert decoded.message_id == 42
        assert decoded.fragment == 1
        assert decoded.total_fragments == 3
        assert decoded.payload_bytes == 2
        assert decoded.frame_type == TYPE_DATA

    def test_bad_magic_rejected(self):
        raw = bytearray(make_ack(0, 1).header_to_bytes())
        raw[0] ^= 0xFF
        with pytest.raises(ValueError):
            LtlFrame.header_from_bytes(bytes(raw))

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            LtlFrame.header_from_bytes(b"\x00" * 4)


class TestFullWireSerialization:
    """``to_wire``/``from_wire``: what the shard seam actually ships."""

    def test_bytes_payload_roundtrip(self):
        frame = make_data_frame(connection_id=7, seq=99, message_id=3,
                                fragment=2, total_fragments=4,
                                payload=b"hello fpga", payload_bytes=10,
                                deadline_us=12345)
        decoded = LtlFrame.from_wire(frame.to_wire())
        assert decoded.payload == b"hello fpga"
        assert decoded.payload_bytes == 10
        assert decoded.seq == 99
        assert decoded.deadline_us == 12345
        assert decoded.flags == frame.flags
        assert decoded.checksum == frame.checksum
        assert decoded.verify_checksum()

    def test_opaque_payload_roundtrip(self):
        payload = OpaquePayload(kind="dnn-request", values=(1, 2.5, "x"))
        frame = make_data_frame(connection_id=1, seq=0, message_id=0,
                                fragment=0, total_fragments=1,
                                payload=payload, payload_bytes=4096)
        decoded = LtlFrame.from_wire(frame.to_wire())
        assert decoded.payload == payload
        assert decoded.payload is not payload  # crossed the "wire"
        # The simulated size is authoritative, not the pickled length.
        assert decoded.payload_bytes == 4096
        assert decoded.wire_bytes == frame.wire_bytes

    def test_ack_and_nack_roundtrip(self):
        ack = make_ack(5, 321, congestion=True)
        decoded_ack = LtlFrame.from_wire(ack.to_wire())
        assert decoded_ack.is_ack
        assert decoded_ack.ack_seq == 321
        assert decoded_ack.congestion_flag
        nack = make_nack(5, (40, 44))
        decoded_nack = LtlFrame.from_wire(nack.to_wire())
        assert nack_range(decoded_nack) == (40, 44)

    def test_empty_payload_roundtrip(self):
        frame = make_ack(0, 0)
        assert LtlFrame.from_wire(frame.to_wire()).payload == b""

    def test_corrupted_payload_rejected(self):
        frame = make_data_frame(1, 0, 0, 0, 1, b"payload", 7)
        raw = bytearray(frame.to_wire())
        raw[-1] ^= 0xFF
        with pytest.raises(ValueError, match="checksum"):
            LtlFrame.from_wire(bytes(raw))

    def test_corrupted_header_rejected(self):
        frame = make_data_frame(1, 9, 0, 0, 1, b"payload", 7)
        raw = bytearray(frame.to_wire())
        raw[8] ^= 0xFF  # inside connection_id
        with pytest.raises(ValueError, match="checksum"):
            LtlFrame.from_wire(bytes(raw))

    def test_truncated_payload_rejected(self):
        frame = make_data_frame(1, 0, 0, 0, 1, b"payload", 7)
        with pytest.raises(ValueError, match="truncated"):
            LtlFrame.from_wire(frame.to_wire()[:-3])

    def test_truncated_trailer_rejected(self):
        frame = make_ack(0, 1)
        with pytest.raises(ValueError, match="truncated"):
            LtlFrame.from_wire(frame.to_wire()[:LTL_HEADER_BYTES + 2])

    def test_trace_not_serialized(self):
        frame = make_data_frame(1, 0, 0, 0, 1, b"x", 1)
        frame.trace = object()
        assert LtlFrame.from_wire(frame.to_wire()).trace is None


class TestAckNack:
    def test_ack_carries_cumulative_seq(self):
        ack = make_ack(3, 17)
        assert ack.ack_seq == 17
        assert not ack.congestion_flag

    def test_ack_congestion_flag(self):
        assert make_ack(3, 17, congestion=True).congestion_flag

    def test_nack_range_roundtrip(self):
        nack = make_nack(9, (10, 14))
        assert nack_range(nack) == (10, 14)

    def test_nack_range_requires_nack(self):
        with pytest.raises(ValueError):
            nack_range(make_ack(0, 0))
