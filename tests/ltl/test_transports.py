"""Tests for the fault-injecting test transports."""

import pytest

from repro.ltl import DirectTransport, FaultModel, LtlEngine
from repro.ltl.frames import make_ack
from repro.sim import Environment


class TestFaultModel:
    def test_probability_bounds_validated(self):
        with pytest.raises(ValueError):
            FaultModel(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(reorder_probability=-0.1)
        with pytest.raises(ValueError):
            FaultModel(duplicate_probability=2.0)

    def test_defaults_are_clean(self):
        faults = FaultModel()
        assert faults.drop_probability == 0.0
        assert faults.reorder_probability == 0.0
        assert faults.duplicate_probability == 0.0


class TestDirectTransport:
    def test_duplicate_registration_rejected(self):
        env = Environment()
        transport = DirectTransport(env)
        transport.register(LtlEngine(env, 0))
        with pytest.raises(ValueError):
            transport.register(LtlEngine(env, 0))

    def test_unknown_destination_silently_drops(self):
        env = Environment()
        transport = DirectTransport(env)
        transport.register(LtlEngine(env, 0))
        transport.send_frame(99, make_ack(0, 0))  # no such host
        env.run(until=1e-3)  # must not raise

    def test_delay_applied(self):
        env = Environment()
        transport = DirectTransport(env, delay=7e-6)
        received = []
        engine = LtlEngine(env, 1)

        class Spy:
            def receive_frame(self, frame, ecn_marked=False,
                              src_host=None):
                received.append(env.now)

            host_index = 1
            transport = None

        transport._engines[1] = Spy()
        transport.send_frame(1, make_ack(0, 0))
        env.run(until=1e-3)
        assert received == [pytest.approx(7e-6)]

    def test_drop_counter(self):
        env = Environment()
        transport = DirectTransport(
            env, faults=FaultModel(drop_probability=1.0))
        transport.register(LtlEngine(env, 1))
        for _ in range(10):
            transport.send_frame(1, make_ack(0, 0))
        assert transport.frames_dropped == 10

    def test_duplicate_counter(self):
        env = Environment()
        transport = DirectTransport(
            env, faults=FaultModel(duplicate_probability=1.0))
        transport.register(LtlEngine(env, 1))
        transport.send_frame(1, make_ack(0, 0))
        assert transport.frames_duplicated == 1
