"""Tests for LTL's fault-recovery hardening: frame checksums, failed-
connection reconnect, gray-failure early warning, bounded reorder
buffer, and narrowed handler exceptions."""

from dataclasses import replace as dc_replace

import pytest

from repro.ltl import (
    DirectTransport,
    FaultModel,
    LtlConfig,
    LtlEngine,
    connect_pair,
    make_data_frame,
)
from repro.sim import Environment


def make_pair(env, delay=1e-6, faults=None, config=None):
    transport = DirectTransport(env, delay=delay, faults=faults)
    a = LtlEngine(env, host_index=0, config=config)
    b = LtlEngine(env, host_index=1, config=config)
    transport.register(a)
    transport.register(b)
    conn_ab, conn_ba = connect_pair(a, b)
    return transport, a, b, conn_ab, conn_ba


class CorruptingTransport(DirectTransport):
    """Corrupts the first ``n`` DATA frames it carries (wire bit-flips)."""

    def __init__(self, env, n=1, **kwargs):
        super().__init__(env, **kwargs)
        self.to_corrupt = n

    def send_frame(self, dst_host, frame):
        if self.to_corrupt > 0 and frame.is_data:
            self.to_corrupt -= 1
            frame = dc_replace(frame,
                               checksum=(frame.checksum or 0) ^ 0xBAD)
        super().send_frame(dst_host, frame)


class TestChecksums:
    def test_corrupt_frame_dropped_then_recovered(self):
        env = Environment()
        transport = CorruptingTransport(env, n=1)
        a = LtlEngine(env, 0)
        b = LtlEngine(env, 1)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        a.send_message(conn_ab, b"fragile", 7)
        env.run(until=2e-3)
        # The corrupted copy was dropped on receive, then the sender's
        # retransmit timer recovered the message.
        assert b.stats.corrupt_dropped == 1
        assert a.stats.retransmissions >= 1
        assert got == [b"fragile"]

    def test_verification_can_be_disabled(self):
        env = Environment()
        config = LtlConfig(verify_checksums=False)
        transport = CorruptingTransport(env, n=1)
        a = LtlEngine(env, 0, config=config)
        b = LtlEngine(env, 1, config=config)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        a.send_message(conn_ab, b"unchecked", 9)
        env.run(until=2e-3)
        assert b.stats.corrupt_dropped == 0
        assert got == [b"unchecked"]


class TestReconnect:
    def test_failed_connection_reestablishes(self):
        """A blackout long enough to declare failure, then the peer
        comes back: reconnect probes re-establish the connection and the
        queued traffic drains — no permanent failed state."""
        env = Environment()
        transport = DirectTransport(env, delay=1e-6, faults=FaultModel(
            drop_probability=1.0))
        config = LtlConfig(max_consecutive_timeouts=4)
        a = LtlEngine(env, 0, config=config)
        b = LtlEngine(env, 1, config=config)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        failures, recoveries, got = [], [], []
        a.on_connection_failed = lambda cid, host: failures.append(cid)
        a.on_connection_recovered = lambda cid, host: recoveries.append(
            cid)
        b.on_message = lambda c, p, n: got.append(p)
        a.send_message(conn_ab, b"through-the-storm", 17)
        env.run(until=2e-3)
        assert failures == [conn_ab]
        assert a.send_table.lookup(conn_ab).failed
        transport.faults.drop_probability = 0.0  # peer comes back
        env.run(until=30e-3)
        assert recoveries == [conn_ab]
        assert not a.send_table.lookup(conn_ab).failed
        assert a.stats.reconnect_probes >= 1
        assert a.stats.connections_recovered == 1
        assert got == [b"through-the-storm"]
        # And the revived connection carries new traffic.
        a.send_message(conn_ab, b"fresh", 5)
        env.run(until=31e-3)
        assert got == [b"through-the-storm", b"fresh"]

    def test_reconnect_disabled_stays_failed(self):
        env = Environment()
        transport = DirectTransport(env, delay=1e-6, faults=FaultModel(
            drop_probability=1.0))
        config = LtlConfig(max_consecutive_timeouts=4, reconnect=False)
        a = LtlEngine(env, 0, config=config)
        b = LtlEngine(env, 1, config=config)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        a.send_message(conn_ab, b"doomed", 6)
        env.run(until=2e-3)
        transport.faults.drop_probability = 0.0
        env.run(until=30e-3)
        assert a.send_table.lookup(conn_ab).failed
        assert a.stats.reconnect_probes == 0


class TestGrayWarning:
    def test_degraded_fires_before_failure(self):
        env = Environment()
        transport = DirectTransport(env, delay=1e-6, faults=FaultModel(
            drop_probability=1.0))
        config = LtlConfig(max_consecutive_timeouts=8,
                           degraded_timeouts=3)
        a = LtlEngine(env, 0, config=config)
        b = LtlEngine(env, 1, config=config)
        transport.register(a)
        transport.register(b)
        conn_ab, _ = connect_pair(a, b)
        timeline = []
        a.on_connection_degraded = lambda cid, host: timeline.append(
            ("degraded", cid, env.now))
        a.on_connection_failed = lambda cid, host: timeline.append(
            ("failed", cid, env.now))
        a.send_message(conn_ab, b"x", 1)
        env.run(until=5e-3)
        kinds = [k for k, _, _ in timeline]
        assert kinds == ["degraded", "failed"]
        # The early warning fires only once per episode.
        assert kinds.count("degraded") == 1


class TestReorderBuffer:
    def _recv_state(self, a, b, conn_ab):
        return b.recv_table.lookup(
            a.send_table.lookup(conn_ab).remote_connection_id)

    def test_buffer_bounded_and_drops_counted(self):
        env = Environment()
        config = LtlConfig(reorder_buffer_frames=4)
        _t, a, b, conn_ab, _ = make_pair(env, config=config)
        state = self._recv_state(a, b, conn_ab)
        recv_id = state.connection_id
        # Blast 10 out-of-order frames (seq 1.. with seq 0 missing).
        for seq in range(1, 11):
            b.receive_frame(make_data_frame(
                connection_id=recv_id, seq=seq, message_id=seq,
                fragment=0, total_fragments=1, payload=b"z",
                payload_bytes=1))
        env.run(until=1e-3)
        assert len(state.reorder_buffer) <= 4
        assert b.stats.reorder_drops == 6
        # The gap was NACKed exactly once while outstanding.
        assert b.stats.nacks_sent == 1

    def test_close_clears_nack_bookkeeping(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env)
        state = self._recv_state(a, b, conn_ab)
        recv_id = state.connection_id
        b.receive_frame(make_data_frame(
            connection_id=recv_id, seq=3, message_id=1, fragment=0,
            total_fragments=1, payload=b"z", payload_bytes=1))
        env.run(until=1e-3)
        assert recv_id in b._nack_outstanding
        b.close_receive_connection(recv_id)
        assert recv_id not in b._nack_outstanding
        assert recv_id not in b.recv_table


class TestNarrowedHandlers:
    """Stale frames for unknown connections are ignored; real errors in
    user callbacks are no longer swallowed."""

    def test_stale_frames_ignored(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env)
        bogus = 1234
        from repro.ltl import make_ack, make_nack
        b.receive_frame(make_data_frame(
            connection_id=bogus, seq=0, message_id=0, fragment=0,
            total_fragments=1, payload=b"z", payload_bytes=1))
        a.receive_frame(make_ack(bogus, ack_seq=0))
        a.receive_frame(make_nack(bogus, (0, 1)))
        env.run(until=1e-3)  # no exception: lookups miss, frames dropped
        assert b.stats.messages_delivered == 0

    def test_callback_errors_propagate(self):
        env = Environment()
        _t, a, b, conn_ab, _ = make_pair(env)

        def exploding(c, p, n):
            raise ValueError("role crashed")

        b.on_message = exploding
        a.send_message(conn_ab, b"boom", 4)
        with pytest.raises(ValueError, match="role crashed"):
            env.run(until=1e-3)
