"""Tests for connection tables and per-connection state."""

import pytest

from repro.ltl.connection import (
    ConnectionError_,
    ConnectionTable,
    PendingMessage,
    SendConnectionState,
    UnackedFrame,
)
from repro.ltl.frames import make_data_frame


class TestConnectionTable:
    def test_allocate_unique_ids(self):
        table = ConnectionTable(capacity=16)
        ids = {table.allocate() for _ in range(16)}
        assert len(ids) == 16

    def test_table_full(self):
        table = ConnectionTable(capacity=2)
        table.allocate()
        table.allocate()
        with pytest.raises(ConnectionError_):
            table.allocate()

    def test_install_and_lookup(self):
        table = ConnectionTable()
        cid = table.allocate()
        table.install(cid, "state")
        assert table.lookup(cid) == "state"

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConnectionError_):
            ConnectionTable().lookup(0)

    def test_double_install_rejected(self):
        table = ConnectionTable()
        cid = table.allocate()
        table.install(cid, "a")
        with pytest.raises(ConnectionError_):
            table.install(cid, "b")

    def test_deallocate_frees_id(self):
        table = ConnectionTable(capacity=1)
        cid = table.allocate()
        table.install(cid, "x")
        table.deallocate(cid)
        assert table.allocate() == cid

    def test_out_of_range_install_rejected(self):
        with pytest.raises(ConnectionError_):
            ConnectionTable(capacity=4).install(10, "x")

    def test_len_and_contains(self):
        table = ConnectionTable()
        cid = table.allocate()
        table.install(cid, "x")
        assert len(table) == 1
        assert cid in table


def _frame(seq):
    return make_data_frame(0, seq, 0, 0, 1, b"x", 1)


class TestSendConnectionState:
    def _state(self):
        return SendConnectionState(connection_id=0, remote_host=1,
                                   remote_connection_id=0)

    def test_apply_ack_frees_cumulatively(self):
        state = self._state()
        for seq in range(5):
            state.unacked[seq] = UnackedFrame(
                frame=_frame(seq), first_sent_at=0.0, last_sent_at=0.0)
        freed = state.apply_ack(2, now=1e-6)
        assert freed == 3
        assert list(state.unacked) == [3, 4]
        assert state.acked_seq == 2

    def test_rtt_only_for_clean_transmissions(self):
        state = self._state()
        state.unacked[0] = UnackedFrame(
            frame=_frame(0), first_sent_at=0.0, last_sent_at=0.0,
            transmissions=2)  # retransmitted
        state.unacked[1] = UnackedFrame(
            frame=_frame(1), first_sent_at=1e-6, last_sent_at=1e-6)
        state.apply_ack(1, now=4e-6)
        assert state.rtt_samples == [pytest.approx(3e-6)]

    def test_ack_resets_timeout_counter(self):
        state = self._state()
        state.consecutive_timeouts = 3
        state.unacked[0] = UnackedFrame(
            frame=_frame(0), first_sent_at=0.0, last_sent_at=0.0)
        state.apply_ack(0, now=1e-6)
        assert state.consecutive_timeouts == 0

    def test_oldest_unacked_age(self):
        state = self._state()
        assert state.oldest_unacked_age(now=100.0) == 0.0
        state.unacked[0] = UnackedFrame(
            frame=_frame(0), first_sent_at=1.0, last_sent_at=2.0)
        assert state.oldest_unacked_age(now=5.0) == pytest.approx(3.0)


class TestPendingMessage:
    def test_complete_detection(self):
        pending = PendingMessage(total_fragments=2)
        pending.fragments[0] = (b"ab", 2)
        assert not pending.complete
        pending.fragments[1] = (b"cd", 2)
        assert pending.complete

    def test_assemble_bytes_in_order(self):
        pending = PendingMessage(total_fragments=3)
        pending.fragments[2] = (b"c", 1)
        pending.fragments[0] = (b"a", 1)
        pending.fragments[1] = (b"b", 1)
        payload, size = pending.assemble()
        assert payload == b"abc"
        assert size == 3

    def test_assemble_opaque_single_fragment(self):
        marker = object()
        pending = PendingMessage(total_fragments=1)
        pending.fragments[0] = (marker, 500)
        payload, size = pending.assemble()
        assert payload is marker
        assert size == 500
