"""Property tests: merging many small shard digests vs one pooled recorder.

The shard driver folds per-shard ``StreamingQuantile`` /
``LatencyRecorder`` digests into one report.  Small shards routinely
produce empty and pre-activation (< 5 sample) digests, and the merged
estimate must stay sane for arbitrary sample values and arbitrary
shard splits — hypothesis hunts for the splits that break it.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    STREAMING_QUANTILES,
    LatencyRecorder,
    StreamingQuantile,
)
from repro.sim.randomness import percentile

# Shardings of a sample list: a list of small chunk sizes (0 = an empty
# shard digest, the case the bugfix targets).
chunks = st.lists(st.integers(min_value=0, max_value=9),
                  min_size=1, max_size=12)
samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=60)


def _shard(values, sizes):
    """Split ``values`` into len(sizes) chunks (last chunk takes the rest)."""
    out, i = [], 0
    for k in sizes[:-1]:
        out.append(values[i:i + k])
        i += k
    out.append(values[i:])
    return out


@given(values=samples, sizes=chunks, q=st.sampled_from(STREAMING_QUANTILES))
@settings(max_examples=120, deadline=None)
def test_merged_digest_invariants(values, sizes, q):
    merged = StreamingQuantile(q)
    for chunk in _shard(values, sizes):
        sq = StreamingQuantile(q)
        for v in chunk:
            sq.record(v)
        merged.merge(sq)
    assert merged.count == len(values)
    if not values:
        return
    # The estimate must lie within the observed sample range, and the
    # extremes are tracked exactly across any merge sequence.
    assert min(values) <= merged.value <= max(values)
    assert merged.minimum == min(values)
    assert merged.maximum == max(values)
    # Recording after merging keeps the digest coherent.
    merged.record(max(values))
    assert merged.count == len(values) + 1
    assert min(values) <= merged.value <= max(values)


@given(value=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
       sizes=chunks)
@settings(max_examples=60, deadline=None)
def test_constant_samples_merge_exactly(value, sizes):
    """All-equal samples must merge to exactly that value."""
    total = sum(sizes)
    merged = StreamingQuantile(99.0)
    for k in sizes:
        sq = StreamingQuantile(99.0)
        for _ in range(k):
            sq.record(value)
        merged.merge(sq)
    if total:
        assert merged.value == value


@given(values=samples, sizes=chunks)
@settings(max_examples=80, deadline=None)
def test_recorder_merge_matches_pooled_exact_mode(values, sizes):
    """Exact-mode merge is lossless: identical to one pooled recorder."""
    pooled = LatencyRecorder("pooled")
    pooled.extend(values)
    merged = LatencyRecorder("merged")
    for chunk in _shard(values, sizes):
        shard = LatencyRecorder("shard")
        shard.extend(chunk)
        merged.merge(shard)
    assert merged.count == pooled.count
    if values:
        # Sum order differs (per-shard partial sums), so mean agrees
        # only to float associativity.
        assert merged.mean == pytest.approx(pooled.mean, rel=1e-12)
        assert merged.max == pooled.max
        for q in STREAMING_QUANTILES:
            assert merged.percentile(q) == pooled.percentile(q)


@given(values=samples, sizes=chunks)
@settings(max_examples=80, deadline=None)
def test_streaming_recorder_merge_edge_counts(values, sizes):
    """Streaming merge: counts/mean/max exact, quantiles well-defined
    — including across empty and pre-activation shard digests."""
    merged = LatencyRecorder("merged", streaming=True)
    for chunk in _shard(values, sizes):
        shard = LatencyRecorder("shard", streaming=True)
        shard.extend(chunk)
        merged.merge(shard)
    assert merged.count == len(values)
    if not values:
        return
    assert merged.max == max(values)
    assert abs(merged.mean - sum(values) / len(values)) <= \
        1e-9 * max(1.0, max(values))
    for q in STREAMING_QUANTILES:
        assert min(values) <= merged.percentile(q) <= max(values)


def test_many_small_digests_track_exact_tail():
    """Statistical accuracy: 40 small shards, merged p99/p50 near exact.

    This is the regression the CDF-weighted merge fixes — the old
    count-weighted height average collapsed the tail toward the median
    (merged p99 read ~40-60% low on this workload).
    """
    rng = random.Random(1234)
    for q, tol in ((50.0, 0.10), (99.0, 0.25)):
        for trial in range(5):
            shards, all_samples = [], []
            for _ in range(40):
                k = rng.randint(1, 12)
                vals = [rng.lognormvariate(0.0, 0.6) for _ in range(k)]
                all_samples.extend(vals)
                sq = StreamingQuantile(q)
                for v in vals:
                    sq.record(v)
                shards.append(sq)
            merged = StreamingQuantile(q)
            for sq in shards:
                merged.merge(sq)
            exact = percentile(sorted(all_samples), q)
            assert abs(merged.value - exact) <= tol * exact, \
                f"q={q} trial={trial}: merged {merged.value} vs exact {exact}"


def test_merge_empty_and_tiny_digest_combinations():
    """Exhaustive tiny-count matrix: merging digests of size 0..6 in
    both orders never corrupts state and keeps exact small-n answers."""
    for a in range(7):
        for b in range(7):
            left = StreamingQuantile(95.0)
            right = StreamingQuantile(95.0)
            va = [float(i) for i in range(a)]
            vb = [10.0 + i for i in range(b)]
            for v in va:
                left.record(v)
            for v in vb:
                right.record(v)
            left.merge(right)
            assert left.count == a + b
            if a + b == 0:
                continue
            pooled = va + vb
            if a + b < 5:
                # Still pre-activation: the estimate is exact.
                assert left.value == percentile(sorted(pooled), 95.0)
            else:
                assert min(pooled) <= left.value <= max(pooled)
