"""Property-based tests (hypothesis) on core data structures/invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_crypt,
    gcm_decrypt,
    gcm_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.gf128 import gf_mult
from repro.ltl import DirectTransport, FaultModel, LtlEngine, connect_pair
from repro.ranking.dpf import (
    lcs_length,
    local_alignment_score,
    min_covering_window,
)
from repro.ranking.fsm import AhoCorasick
from repro.sim import Environment
from repro.sim.randomness import percentile


# ---------------------------------------------------------------------------
# Crypto round-trips
# ---------------------------------------------------------------------------
@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=16, max_size=16))
@settings(max_examples=30, deadline=None)
def test_aes_decrypt_inverts_encrypt(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@given(key=st.binary(min_size=16, max_size=16),
       iv=st.binary(min_size=16, max_size=16),
       plaintext=st.binary(min_size=0, max_size=200))
@settings(max_examples=20, deadline=None)
def test_cbc_roundtrip(key, iv, plaintext):
    assert cbc_decrypt(key, iv, cbc_encrypt(key, iv, plaintext)) \
        == plaintext


@given(key=st.binary(min_size=16, max_size=16),
       nonce=st.binary(min_size=12, max_size=12),
       plaintext=st.binary(min_size=0, max_size=200),
       aad=st.binary(min_size=0, max_size=40))
@settings(max_examples=15, deadline=None)
def test_gcm_roundtrip(key, nonce, plaintext, aad):
    ct, tag = gcm_encrypt(key, nonce, plaintext, aad)
    assert gcm_decrypt(key, nonce, ct, tag, aad) == plaintext


@given(key=st.binary(min_size=16, max_size=16),
       counter=st.binary(min_size=16, max_size=16),
       data=st.binary(min_size=0, max_size=300))
@settings(max_examples=20, deadline=None)
def test_ctr_involution(key, counter, data):
    assert ctr_crypt(key, counter, ctr_crypt(key, counter, data)) == data


@given(data=st.binary(min_size=0, max_size=100))
@settings(max_examples=50, deadline=None)
def test_pkcs7_roundtrip(data):
    assert pkcs7_unpad(pkcs7_pad(data)) == data


@given(a=st.integers(min_value=0, max_value=(1 << 128) - 1),
       b=st.integers(min_value=0, max_value=(1 << 128) - 1),
       c=st.integers(min_value=0, max_value=(1 << 128) - 1))
@settings(max_examples=20, deadline=None)
def test_gf128_mult_properties(a, b, c):
    # Commutativity and distributivity over XOR (field addition).
    assert gf_mult(a, b) == gf_mult(b, a)
    assert gf_mult(a, b ^ c) == gf_mult(a, b) ^ gf_mult(a, c)


# ---------------------------------------------------------------------------
# Ranking DPs against brute force
# ---------------------------------------------------------------------------
@given(query=st.lists(st.integers(0, 4), min_size=1, max_size=4),
       doc=st.lists(st.integers(0, 4), min_size=0, max_size=12))
@settings(max_examples=50, deadline=None)
def test_min_window_against_bruteforce(query, doc):
    expected = None
    needed = set(query)
    for i in range(len(doc)):
        for j in range(i, len(doc)):
            if needed <= set(doc[i:j + 1]):
                window = j - i + 1
                if expected is None or window < expected:
                    expected = window
                break
    assert min_covering_window(query, doc) == expected


@given(query=st.lists(st.integers(0, 3), min_size=0, max_size=5),
       doc=st.lists(st.integers(0, 3), min_size=0, max_size=8))
@settings(max_examples=50, deadline=None)
def test_lcs_bounds(query, doc):
    length = lcs_length(query, doc)
    assert 0 <= length <= min(len(query), len(doc))


@given(query=st.lists(st.integers(0, 3), min_size=1, max_size=4),
       doc=st.lists(st.integers(0, 3), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_alignment_non_negative_and_bounded(query, doc):
    score = local_alignment_score(query, doc, match=2.0)
    assert 0.0 <= score <= 2.0 * min(len(query), len(doc))


@given(patterns=st.lists(
    st.lists(st.integers(0, 3), min_size=1, max_size=3),
    min_size=1, max_size=4, unique_by=tuple),
    text=st.lists(st.integers(0, 3), min_size=0, max_size=30))
@settings(max_examples=50, deadline=None)
def test_aho_corasick_matches_naive(patterns, text):
    automaton = AhoCorasick(patterns)
    stats = automaton.scan(text)
    for index, pattern in enumerate(patterns):
        pattern = tuple(pattern)
        naive = sum(1 for i in range(len(text) - len(pattern) + 1)
                    if tuple(text[i:i + len(pattern)]) == pattern)
        assert stats.counts.get(index, 0) == naive


# ---------------------------------------------------------------------------
# Credit pools: conservation invariant
# ---------------------------------------------------------------------------
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 3)),
                    max_size=60),
       policy=st.sampled_from(["static", "elastic"]))
@settings(max_examples=50, deadline=None)
def test_credit_conservation(ops, policy):
    from repro.router.credits import make_credit_pool
    pool = make_credit_pool(policy, total_credits=12, num_vcs=4)
    held = {vc: 0 for vc in range(4)}
    for is_acquire, vc in ops:
        if is_acquire:
            if pool.try_acquire(vc):
                held[vc] += 1
        elif held[vc] > 0:
            pool.release(vc)
            held[vc] -= 1
    assert pool.in_use == sum(held.values())
    assert pool.in_use <= 12


# ---------------------------------------------------------------------------
# LTL: exactly-once in-order delivery under arbitrary fault rates
# ---------------------------------------------------------------------------
@given(drop=st.floats(0.0, 0.4), reorder=st.floats(0.0, 0.3),
       duplicate=st.floats(0.0, 0.3),
       num_messages=st.integers(1, 25),
       seed=st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_ltl_exactly_once_in_order(drop, reorder, duplicate,
                                   num_messages, seed):
    env = Environment()
    transport = DirectTransport(
        env, delay=1e-6, rng=random.Random(seed),
        faults=FaultModel(drop_probability=drop,
                          reorder_probability=reorder,
                          duplicate_probability=duplicate))
    a = LtlEngine(env, 0)
    b = LtlEngine(env, 1)
    transport.register(a)
    transport.register(b)
    conn_ab, _ = connect_pair(a, b)
    got = []
    b.on_message = lambda c, p, n: got.append(p)
    for i in range(num_messages):
        a.send_message(conn_ab, i, 64)
    env.run(until=1.0)
    assert got == list(range(num_messages))


# ---------------------------------------------------------------------------
# Elastic Router: no loss, per-VC order, for arbitrary traffic matrices
# ---------------------------------------------------------------------------
@given(traffic=st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 1),
              st.integers(16, 200)),
    min_size=1, max_size=30))
@settings(max_examples=20, deadline=None)
def test_er_no_loss_and_per_flow_order(traffic):
    from repro.router import ElasticRouter
    env = Environment()
    router = ElasticRouter(env, num_ports=4, num_vcs=2,
                           credits_per_port=8)
    received = {}
    for port in range(4):
        router.set_endpoint(
            port, lambda m, p=port: received.setdefault(
                (m.payload[0], p, m.vc), []).append(m.payload[1]))
    sequence = {}
    for src, dst, vc, size in traffic:
        key = (src, dst, vc)
        sequence[key] = sequence.get(key, 0)
        router.inject(src, dst, (src, sequence[key]), size, vc=vc)
        sequence[key] += 1
    env.run()
    delivered = sum(len(v) for v in received.values())
    assert delivered == len(traffic)
    # Per-(src, dst, vc) FIFO order. received is keyed (src, dst, vc)
    # because delivery happens at dst.
    for (src, dst, vc), seqs in received.items():
        expected = [i for i in range(len(seqs))]
        assert sorted(seqs) == seqs == expected or sorted(seqs) == seqs


# ---------------------------------------------------------------------------
# Percentile: order statistics sanity
# ---------------------------------------------------------------------------
@given(values=st.lists(st.floats(0, 1e6), min_size=1, max_size=100),
       q=st.floats(0, 100))
@settings(max_examples=50, deadline=None)
def test_percentile_within_range(values, q):
    data = sorted(values)
    p = percentile(data, q)
    assert data[0] <= p <= data[-1]


@given(values=st.lists(st.floats(0, 1e6), min_size=2, max_size=50))
@settings(max_examples=30, deadline=None)
def test_percentile_monotone_in_q(values):
    data = sorted(values)
    quantiles = [percentile(data, q) for q in (0, 25, 50, 75, 100)]
    assert quantiles == sorted(quantiles)
