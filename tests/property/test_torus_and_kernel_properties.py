"""More property-based tests: torus routing and kernel determinism."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.torus import TorusTopology


# ---------------------------------------------------------------------------
# Torus routing invariants
# ---------------------------------------------------------------------------
@given(src=st.integers(0, 47), dst=st.integers(0, 47))
@settings(max_examples=60, deadline=None)
def test_torus_dimension_order_path_is_valid(src, dst):
    torus = TorusTopology()
    path = torus.dimension_order_path(src, dst)
    assert path[0] == torus.coord(src)
    assert path[-1] == torus.coord(dst)
    # Each step moves to an adjacent node (with wraparound).
    for a, b in zip(path, path[1:]):
        assert b in torus.neighbors(a)
    # Dimension-order paths never exceed the diameter.
    assert len(path) - 1 <= torus.max_hops()


@given(src=st.integers(0, 47), dst=st.integers(0, 47),
       failures=st.sets(st.integers(0, 47), max_size=6))
@settings(max_examples=60, deadline=None)
def test_torus_reroute_avoids_failures(src, dst, failures):
    torus = TorusTopology()
    for node in failures:
        torus.fail_node(node)
    path = torus.route(src, dst)
    if src in failures or dst in failures:
        if src != dst:
            assert path is None
        return
    if path is not None:
        assert all(not torus.is_failed(coord) for coord in path)
        for a, b in zip(path, path[1:]):
            assert b in torus.neighbors(a)


@given(src=st.integers(0, 47), dst=st.integers(0, 47),
       failures=st.sets(st.integers(0, 47), max_size=5))
@settings(max_examples=40, deadline=None)
def test_torus_failures_never_shorten_routes(src, dst, failures):
    if src == dst or src in failures or dst in failures:
        return
    healthy = TorusTopology()
    broken = TorusTopology()
    for node in failures:
        broken.fail_node(node)
    baseline = healthy.hops(src, dst)
    rerouted = broken.hops(src, dst)
    if rerouted is not None:
        assert rerouted >= baseline


# ---------------------------------------------------------------------------
# Kernel determinism: the same program always produces the same trace
# ---------------------------------------------------------------------------
@given(seed=st.integers(0, 10_000), num_procs=st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_kernel_trace_is_deterministic(seed, num_procs):
    def run_once():
        env = Environment()
        rng = random.Random(seed)
        trace = []

        def worker(env, tag, delays):
            for delay in delays:
                yield env.timeout(delay)
                trace.append((tag, env.now))

        for p in range(num_procs):
            delays = [rng.uniform(0, 1) for _ in range(5)]
            env.process(worker(env, p, delays))
        env.run()
        return trace

    assert run_once() == run_once()


@given(delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_kernel_time_is_monotone(delays):
    env = Environment()
    observed = []

    def watcher(env):
        for delay in delays:
            yield env.timeout(delay)
            observed.append(env.now)

    env.process(watcher(env))
    env.run()
    assert observed == sorted(observed)
    assert env.now == sum(delays)
