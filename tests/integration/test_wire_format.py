"""Wire-format integration: every header stack serializes and parses.

The simulation usually carries header objects for speed, but the wire
representations must be real: this test encodes a full LTL-over-UDP
packet to bytes and re-parses every layer, and does the same for an
encrypted-flow packet's headers.
"""

from repro.ltl.frames import (
    LTL_HEADER_BYTES,
    LTL_UDP_PORT,
    LtlFrame,
    make_data_frame,
)
from repro.net.packet import (
    ETHERNET_HEADER_BYTES,
    IPV4_HEADER_BYTES,
    UDP_HEADER_BYTES,
    EthernetHeader,
    Ipv4Header,
    UdpHeader,
    ipv4_checksum,
    make_udp_packet,
)


class TestFullStackSerialization:
    def _ltl_packet(self):
        frame = make_data_frame(
            connection_id=7, seq=42, message_id=3, fragment=1,
            total_fragments=2, payload=b"\xAB" * 100, payload_bytes=100)
        packet = make_udp_packet(
            src_index=0, dst_index=1,
            src_ip="10.0.0.1", dst_ip="10.0.0.2",
            src_mac="02:00:00:00:00:00", dst_mac="02:00:00:00:00:01",
            src_port=LTL_UDP_PORT, dst_port=LTL_UDP_PORT,
            payload=frame, payload_bytes=frame.wire_bytes)
        return frame, packet

    def test_ltl_over_udp_wire_roundtrip(self):
        frame, packet = self._ltl_packet()
        wire = packet.headers_to_bytes() + frame.header_to_bytes() \
            + bytes(frame.payload)

        # Parse layer by layer, exactly as a receiver would.
        offset = 0
        eth = EthernetHeader.from_bytes(wire[offset:])
        offset += ETHERNET_HEADER_BYTES
        assert eth.dst_mac == "02:00:00:00:00:01"

        ip = Ipv4Header.from_bytes(wire[offset:])
        assert ipv4_checksum(
            wire[offset:offset + IPV4_HEADER_BYTES]) == 0
        offset += IPV4_HEADER_BYTES
        assert ip.src_ip == "10.0.0.1" and ip.protocol == 17

        udp = UdpHeader.from_bytes(wire[offset:])
        offset += UDP_HEADER_BYTES
        assert udp.dst_port == LTL_UDP_PORT

        parsed = LtlFrame.header_from_bytes(wire[offset:])
        offset += LTL_HEADER_BYTES
        assert parsed.connection_id == 7
        assert parsed.seq == 42
        assert parsed.fragment == 1
        assert parsed.payload_bytes == 100
        assert wire[offset:offset + 100] == b"\xAB" * 100

    def test_ip_total_length_consistent(self):
        frame, packet = self._ltl_packet()
        packet.headers_to_bytes()
        assert packet.ip.total_length == IPV4_HEADER_BYTES \
            + UDP_HEADER_BYTES + frame.wire_bytes
        assert packet.udp.length == UDP_HEADER_BYTES + frame.wire_bytes

    def test_wire_bytes_matches_serialized_length(self):
        frame, packet = self._ltl_packet()
        wire = packet.headers_to_bytes() + frame.header_to_bytes() \
            + bytes(frame.payload)
        # wire_bytes includes the 4-byte FCS the byte dump omits.
        assert packet.wire_bytes == len(wire) + 4


class TestHeartbeatKeepsService:
    def test_sm_heartbeat_prevents_expiry(self):
        from repro.core import ConfigurableCloud
        from repro.fpga import Image
        from repro.haas import Constraints, ServiceManager
        from repro.net import TopologyConfig, idle

        cloud = ConfigurableCloud(
            topology=TopologyConfig(background=idle()), seed=5)
        cloud.add_servers([0, 1])
        rm = cloud.resource_manager
        rm.lease_duration = 60.0
        sm = ServiceManager(cloud.env, "svc", rm, Image("i", "r"),
                            Constraints(count=1))
        sm.grow(1)
        sm.start_heartbeat()
        cloud.run(until=400.0)
        assert sm.stats.components_lost == 0
        assert len(sm.hosts) == 1
        assert rm.stats.expirations == 0
