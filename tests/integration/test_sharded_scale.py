"""Sharded multi-process simulation vs the single-process reference.

The acceptance gate for ``repro.sim.shard``: a multi-shard run of a
Fig. 10-style RTT workload must reproduce the single-process run's
merged percentiles within tolerance (jitter is drawn from different
streams across the seam, so agreement is statistical, not bitwise), and
per-shard results must be bit-stable across runs.
"""

import pytest

from repro.sim.shard import (
    PingTask,
    ShardDriver,
    run_reference,
)

# Fig. 10-style sample: one L0 pair (intra-shard by construction), two
# same-pod cross-TOR pairs, two cross-pod pairs — all tiers exercised,
# with the L1/L2 paths crossing shard seams.
WORKLOAD = [
    PingTask(src=0, dst=1, messages=40),            # L0, same rack
    PingTask(src=24, dst=60, messages=40),          # L1, cross rack
    PingTask(src=48, dst=90, messages=40),          # L1, cross rack
    PingTask(src=2, dst=5_000, messages=40),        # L2, cross pod
    PingTask(src=25, dst=100_000, messages=40),     # L2, cross pod
]
SEED = 11


@pytest.fixture(scope="module")
def sharded():
    return ShardDriver(seed=SEED, num_shards=4).run(WORKLOAD)


@pytest.fixture(scope="module")
def reference():
    return run_reference(WORKLOAD, seed=SEED)


class TestShardedVsReference:
    def test_all_samples_accounted_for(self, sharded, reference):
        for tier, recorder in reference.items():
            assert sharded.tiers[tier].count == recorder.count
        assert sharded.total_samples == \
            sum(r.count for r in reference.values())

    def test_merged_percentiles_match_reference(self, sharded, reference):
        """P50/P99 per tier within documented tolerance (5% / 10%)."""
        for tier, ref in reference.items():
            got = sharded.tiers[tier]
            assert got.p50 == pytest.approx(ref.p50, rel=0.05), tier
            assert got.p99 == pytest.approx(ref.p99, rel=0.10), tier
            assert got.mean == pytest.approx(ref.mean, rel=0.05), tier

    def test_tier_ordering_preserved(self, sharded):
        tiers = sharded.tiers
        assert tiers["L0"].mean < tiers["L1"].mean < tiers["L2"].mean

    def test_intra_shard_tier_is_bit_exact(self, sharded, reference):
        """The L0 pair never crosses a seam: its path runs entirely on
        the real fabric inside one shard, with identical named RNG
        streams — so it matches the reference exactly."""
        assert sorted(x for x in sharded.tiers["L0"].samples) == \
            sorted(x for x in reference["L0"].samples)

    def test_boundary_conservation(self, sharded):
        sent = sum(s["boundary_sent"] for s in sharded.per_shard)
        received = sum(s["boundary_received"] for s in sharded.per_shard)
        assert sent == received == sharded.boundary_records
        assert sent > 0  # the workload does cross the seam

    def test_window_protocol_ran(self, sharded):
        assert sharded.windows > 1
        assert sharded.lookahead > 0
        assert sharded.plan.num_shards == 4


class TestDeterminism:
    def test_per_shard_digests_stable_across_runs(self, sharded):
        again = ShardDriver(seed=SEED, num_shards=4).run(WORKLOAD)
        assert [s["digest"] for s in again.per_shard] == \
            [s["digest"] for s in sharded.per_shard]
        for tier, recorder in again.tiers.items():
            assert recorder.samples == sharded.tiers[tier].samples

    def test_different_seed_changes_digests(self, sharded):
        other = ShardDriver(seed=SEED + 1, num_shards=4).run(WORKLOAD)
        assert [s["digest"] for s in other.per_shard] != \
            [s["digest"] for s in sharded.per_shard]


class TestDegenerateCases:
    def test_single_shard_runs_in_process(self):
        result = ShardDriver(seed=1, num_shards=1).run(
            [PingTask(src=0, dst=30, messages=10)])
        assert result.plan.num_shards == 1
        assert result.lookahead == float("inf")
        assert result.tiers["L1"].count == 10
        assert result.boundary_records == 0

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="empty workload"):
            ShardDriver(num_shards=2).run([])

    def test_streaming_mode_merges_digests(self):
        result = ShardDriver(seed=2, num_shards=2, streaming=True).run(
            [PingTask(src=0, dst=30, messages=40),
             PingTask(src=25, dst=5_000, messages=40)])
        exact = ShardDriver(seed=2, num_shards=2).run(
            [PingTask(src=0, dst=30, messages=40),
             PingTask(src=25, dst=5_000, messages=40)])
        for tier, recorder in result.tiers.items():
            assert recorder.count == exact.tiers[tier].count
            assert recorder.percentile(99.0) == pytest.approx(
                exact.tiers[tier].p99, rel=0.15)
