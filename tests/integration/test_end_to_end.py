"""Cross-subsystem integration tests: the whole Configurable Cloud."""

import statistics

import pytest

from repro.core import ConfigurableCloud
from repro.crypto import EncryptionTap, FlowKey
from repro.fpga import Image
from repro.haas import Constraints, ServiceManager
from repro.net import TopologyConfig, idle


def make_cloud(seed=0, quiet=True):
    topology = TopologyConfig(background=idle()) if quiet else None
    return ConfigurableCloud(topology=topology, seed=seed)


class TestThreeScenarios:
    """The paper's three scenarios on one infrastructure: local compute
    acceleration, network acceleration, and remote acceleration."""

    def test_all_three_coexist(self):
        cloud = make_cloud()
        a = cloud.add_server(0)
        b = cloud.add_server(1)
        c = cloud.add_server(2)

        # Network acceleration: encrypted flow a -> b.
        tap_a, tap_b = EncryptionTap(), EncryptionTap()
        tap_a.install(a.shell.bridge)
        tap_b.install(b.shell.bridge)
        packet = a.shell.attachment.make_packet(
            1, b"secret payload", src_port=10, dst_port=20)
        key = FlowKey.of_packet(packet)
        tap_a.flows.setup_flow(key, bytes(16))
        tap_b.flows.setup_flow(key, bytes(16))

        # Remote acceleration: role messages a -> c over LTL.
        cloud.connect(0, 2)
        role_got = []
        c.shell.role_receive = lambda p, n: role_got.append(p)

        nic_got = []
        b.on_packet(lambda p: nic_got.append(p.payload))

        a.nic_send(packet)
        a.shell.remote_send(2, b"offload", 64)
        cloud.run(until=1e-3)

        assert nic_got == [b"secret payload"]   # decrypted transparently
        assert role_got == [b"offload"]
        assert tap_a.encrypted == 1 and tap_b.decrypted == 1


class TestLatencyTiers:
    def test_fig10_ordering(self):
        """RTT strictly ordered L0 < L1 < L2, all under 23.5 us."""
        cloud = make_cloud(seed=7)
        # quiet network so the tier ordering is deterministic
        cloud.add_servers([0, 1, 2, 30, 3, 100_000])
        l0 = statistics.mean(cloud.measure_ltl_rtt(0, 1, messages=15))
        l1 = statistics.mean(cloud.measure_ltl_rtt(2, 30, messages=15))
        l2 = statistics.mean(cloud.measure_ltl_rtt(3, 100_000,
                                                   messages=15))
        assert l0 < l1 < l2
        assert l0 == pytest.approx(2.88e-6, rel=0.03)
        assert l2 < 23.5e-6


class TestHaasDrivenRemoteService:
    def test_service_lifecycle_with_failure(self):
        """SM acquires pooled FPGAs, deploys a role, survives a failure,
        and keeps serving remote requests."""
        cloud = make_cloud(seed=2)
        client = cloud.add_server(0, enroll=False)  # not donated to HaaS
        pool_hosts = [1, 2, 3]
        cloud.add_servers(pool_hosts)
        rm = cloud.resource_manager
        sm = ServiceManager(cloud.env, "accel", rm,
                            Image("accel-v1", "accel"),
                            Constraints(count=1))
        sm.grow(2)
        cloud.run(until=1.0)  # partial reconfigs complete

        got = []
        for host in pool_hosts:
            cloud.shell(host).role_receive = \
                lambda p, n, h=host: got.append((h, p))

        target = sm.pick()
        cloud.connect(0, target)
        client.shell.remote_send(target, b"req-1", 64)
        cloud.run(until=cloud.env.now + 1e-3)
        assert got and got[-1][1] == b"req-1"

        # Kill the serving FPGA: SM replaces it from the pool.
        rm.manager(target).mark_failed()
        assert sm.stats.replacements == 1
        replacement = sm.pick()
        assert replacement != target
        cloud.connect(0, replacement)
        client.shell.remote_send(replacement, b"req-2", 64)
        cloud.run(until=cloud.env.now + 1e-3)
        assert got[-1] == (replacement, b"req-2")


class TestBumpInTheWireResilience:
    def test_fpga_failure_does_not_affect_neighbors(self):
        """Unlike the torus, a dead bump-in-the-wire FPGA only cuts off
        its own server."""
        cloud = make_cloud(seed=3)
        a = cloud.add_server(0)
        b = cloud.add_server(1)
        c = cloud.add_server(2)
        # Server 1's FPGA link goes down (e.g. a buggy full reconfig).
        b.shell.bridge.link_up = False
        got_c = []
        c.on_packet(lambda p: got_c.append(p.payload))
        a.send_to(2, b"a-to-c")
        a.send_to(1, b"a-to-b")
        cloud.run(until=1e-3)
        # c unaffected; b unreachable.
        assert got_c == [b"a-to-c"]
        assert b.packets_received == 0

    def test_power_cycle_recovers_reachability(self):
        cloud = make_cloud(seed=4)
        a = cloud.add_server(0)
        b = cloud.add_server(1)
        got = []
        b.on_packet(lambda p: got.append(p.payload))
        # Wedge b's FPGA, then recover via the management path.
        b.shell.configuration._set_link(False)
        a.send_to(1, b"lost")
        cloud.run(until=1e-3)
        assert got == []
        cloud.env.process(b.shell.configuration.power_cycle())
        cloud.run(until=cloud.env.now + 30.0)
        assert b.shell.configuration.live_image.name == "golden"
        a.send_to(1, b"back")
        cloud.run(until=cloud.env.now + 1e-3)
        assert got == [b"back"]


class TestMultiFpgaService:
    def test_pipeline_across_three_fpgas(self):
        """Ganging FPGAs into a multi-FPGA pipeline over LTL (the
        'multi-FPGA service' the ER+LTL combination enables)."""
        cloud = make_cloud(seed=5)
        cloud.add_servers([0, 1, 2])
        cloud.connect(0, 1)
        cloud.connect(1, 2)
        done = []

        def stage1(payload, n):
            cloud.shell(1).remote_send(2, payload + b"+s1", n)

        def stage2(payload, n):
            done.append(payload + b"+s2")

        cloud.shell(1).role_receive = stage1
        cloud.shell(2).role_receive = stage2
        cloud.shell(0).remote_send(1, b"q", 64)
        cloud.run(until=1e-3)
        assert done == [b"q+s1+s2"]
