"""Scale sanity: the lazy fabric handles far-flung host indices cheaply."""

import time

from repro.core import ConfigurableCloud
from repro.net import TopologyConfig, idle


class TestLazyScale:
    def test_quarter_million_host_fabric_is_cheap(self):
        """Attaching hosts at opposite ends of a 253k-host datacenter
        materializes only the switches on their paths."""
        cloud = ConfigurableCloud(
            topology=TopologyConfig(background=idle()), seed=1)
        total = cloud.fabric.config.total_hosts
        assert total > 250_000
        start = time.time()
        far_hosts = [0, 959, 960, 126_000, total - 1]
        cloud.add_servers(far_hosts)
        elapsed = time.time() - start
        topo = cloud.fabric.topology
        # 0 and 959 share a pod; 960, 126000, total-1 are three more
        # pods: 4 pods' L1s, a handful of TORs, one L2.
        assert len(topo._l1s) == 4
        assert len(topo._tors) == 5
        assert elapsed < 5.0  # construction is O(paths), not O(hosts)

    def test_extreme_pair_round_trip_under_l2_bound(self):
        cloud = ConfigurableCloud(
            topology=TopologyConfig(background=idle()), seed=1)
        total = cloud.fabric.config.total_hosts
        cloud.add_servers([5, total - 2])
        rtts = cloud.measure_ltl_rtt(5, total - 2, messages=10)
        assert all(r < 23.5e-6 for r in rtts)

    def test_many_concurrent_ltl_pairs(self):
        """Dozens of simultaneous LTL conversations share the fabric."""
        cloud = ConfigurableCloud(
            topology=TopologyConfig(background=idle()), seed=4)
        pairs = [(i, 1000 + i) for i in range(12)]
        for a, b in pairs:
            cloud.add_server(a, enroll=False)
            cloud.add_server(b, enroll=False)
            cloud.connect(a, b)
        delivered = []
        for a, b in pairs:
            cloud.shell(b).role_receive = \
                lambda p, n, host=b: delivered.append(host)

        def driver(env):
            for _ in range(10):
                for a, b in pairs:
                    cloud.shell(a).remote_send(b, b"\x00" * 64, 64)
                yield env.timeout(20e-6)

        cloud.env.process(driver(cloud.env))
        cloud.run(until=0.05)
        assert len(delivered) == 12 * 10
