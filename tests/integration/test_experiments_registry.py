"""Tests for the programmatic experiment registry."""

import pytest

from repro import experiments
from repro.experiments import fig06, fig10, fig12, sec4


class TestRegistry:
    def test_registry_covers_paper_experiments(self):
        for key in ("E1", "E2", "E3", "E5", "E6", "E8", "E9", "E10"):
            assert key in experiments.REGISTRY

    def test_registry_entries_runnable(self):
        description, runner = experiments.REGISTRY["E10"]
        assert "power" in description.lower()
        result = runner()
        assert result["within_tdp"]


class TestFig10Module:
    def test_small_run(self):
        result = fig10.run(
            tier_pairs={"L0": (24, [(0, 1)])}, messages_per_pair=10)
        assert "L0" in result.tiers
        assert result.tiers["L0"].avg == pytest.approx(2.88e-6, rel=0.05)
        assert result.torus.reachable == 48
        rows = result.rows()
        assert rows[-1][0] == "torus"


class TestFig6Module:
    def test_small_run(self):
        result = fig06.run(load_points=(0.5, 1.0), queries=300)
        assert set(result.curves) == {"software", "fpga"}
        assert result.latency_target > 0
        assert result.max_load_under_target("fpga") >= 1.0


class TestFig12Module:
    def test_small_run(self):
        result = fig12.run(sweep=[(4, 4), (4, 2)],
                           requests_per_client=60)
        assert result.at_ratio(1.0).num_fpgas == 4
        assert result.at_ratio(2.0).num_fpgas == 2
        overheads = result.one_to_one_overheads()
        assert len(overheads) == 3
        with pytest.raises(KeyError):
            result.at_ratio(9.0)


class TestSec4Module:
    def test_rows(self):
        rows = sec4.run()
        lookup = sec4.by_suite(rows)
        assert lookup["aes-gcm-128"].cores_full_duplex == \
            pytest.approx(5.25, abs=0.01)
        assert lookup["aes-cbc-128-sha1"].fpga_latency_1500B == \
            pytest.approx(11e-6, rel=0.01)
