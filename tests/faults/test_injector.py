"""End-to-end tests for the FaultInjector: each primitive attacks a
live cloud + hardware service and must be detected and recovered by the
system's own machinery."""

from repro import ConfigurableCloud, LtlConfig, ShellConfig
from repro.core.service import HardwareService
from repro.faults import FaultEvent, FaultInjector, FaultKind
from repro.fpga.reconfig import Image
from repro.haas import FpgaHealth, ResourceManager
from repro.net import TopologyConfig, idle

# ms-scale LTL timers: tests run tens of sim-seconds; the production
# 10 us timer wheel would cost ~10^7 events per scenario.
FAST_LTL = dict(timer_period=1e-3, retransmit_timeout=5e-3,
                reconnect_backoff=10e-3, reconnect_backoff_max=100e-3,
                degraded_timeouts=2)
POOL = list(range(8))
CLIENT = 30  # second TOR: outages on TOR 0 never cut the client off


def build(lease=30.0, sweep=1.0, quarantine=2.0, components=2):
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=7)
    cloud._rm = ResourceManager(cloud.env, cloud.fabric.topology,
                                lease_duration=lease, sweep_period=sweep,
                                quarantine_seconds=quarantine)
    shell_config = ShellConfig(ltl=LtlConfig(**FAST_LTL))
    for h in POOL:
        cloud.add_server(h, shell_config=shell_config)
    client = cloud.add_server(CLIENT, enroll=False,
                              shell_config=shell_config)
    service = HardwareService(cloud, "svc",
                              Image(name="svc", role_name="svc-role"),
                              components=components)
    cloud.env.run(until=12.0)  # initial configure

    delivered = []
    service.set_handler(lambda payload, src: delivered.append(payload))
    service.attach_client(client)
    cloud.env.run(until=cloud.env.now + 0.1)
    return cloud, service, client, delivered


def drive(cloud, service, client, seconds, period=0.02):
    sent = [0]

    def driver(env):
        t_end = env.now + seconds
        while env.now < t_end:
            try:
                service.request(client, b"q", 64)
                sent[0] += 1
            except RuntimeError:
                pass
            yield env.timeout(period)

    cloud.env.process(driver(cloud.env), name="test-driver")
    return sent


def attack(kind, post=40.0, target=None, sm=True, **shape):
    """Build, fire one fault at a serving member, drive traffic, and
    return (cloud, service, injector, record, delivered, sent)."""
    cloud, service, client, delivered = build()
    env = cloud.env
    injector = FaultInjector(
        cloud, hosts=POOL,
        service_managers=[service.sm] if sm else [], seed=1)
    if target is None:
        victim = service.hosts[0]
    elif target == "free":
        victim = [h for h in POOL if h not in service.hosts][-1]
    else:
        victim = target
    event = FaultEvent(at=env.now + 0.5, kind=kind, target=victim,
                       **shape)
    injector.run_campaign([event])
    sent = drive(cloud, service, client, 15.0)
    env.run(until=env.now + 15.0 + post)
    return cloud, service, injector, injector.records[0], delivered, sent


class TestFpgaDeath:
    def test_allocated_host_detected_and_replaced(self):
        cloud, service, inj, rec, delivered, sent = attack(
            FaultKind.FPGA_DEATH)
        assert rec.detected_at is not None
        assert rec.recovered_at is not None
        assert service.failovers >= 1
        # The dead host left the serving set; capacity was restored.
        assert rec.event.target not in service.hosts
        assert len(service.hosts) == 2
        # Nearly everything still delivered (a handful lost in flight).
        assert len(delivered) >= 0.98 * sent[0]

    def test_free_host_evicted_by_monitor(self):
        cloud, service, inj, rec, delivered, _ = attack(
            FaultKind.FPGA_DEATH, target="free", post=20.0)
        victim = rec.event.target
        assert victim not in service.hosts   # was never serving
        assert rec.detected_at is not None   # FM monitor saw the detach
        assert rec.recovered_at == rec.detected_at  # eviction = remedy
        assert cloud.resource_manager.manager(
            victim).health is FpgaHealth.FAILED


class TestLinkFlap:
    def test_flap_detected_then_rehabilitated(self):
        cloud, service, inj, rec, delivered, sent = attack(
            FaultKind.LINK_FLAP, duration=2.0)
        assert rec.detected_at is not None
        assert rec.recovered_at is not None
        # The victim came back HEALTHY (soft failure rehabilitated)...
        fm = cloud.resource_manager.manager(rec.event.target)
        assert fm.health is FpgaHealth.HEALTHY
        # ...and service capacity is intact.
        assert len(service.hosts) == 2
        assert len(delivered) >= 0.98 * sent[0]


class TestGrayNode:
    def test_gray_detected_via_peer_reports(self):
        cloud, service, inj, rec, delivered, sent = attack(
            FaultKind.GRAY_NODE, duration=1.5, magnitude=50e-3)
        assert inj.stats.frames_delayed > 0
        assert service.gray_reports >= 2
        assert rec.detected_at is not None
        assert rec.recovered_at is not None
        assert rec.detection_latency < 2.0  # peer reports beat the scan


class TestFrameTampering:
    def test_corruption_caught_by_checksum_and_masked(self):
        cloud, service, inj, rec, delivered, sent = attack(
            FaultKind.FRAME_CORRUPT, duration=1.0, magnitude=0.5,
            post=10.0)
        assert inj.stats.frames_corrupted > 0
        shell = cloud.shell(rec.event.target)
        assert shell.ltl.stats.corrupt_dropped > 0
        assert rec.resolved
        # Reliability is preserved end to end.
        assert len(delivered) >= 0.98 * sent[0]

    def test_drops_masked_by_retransmission(self):
        cloud, service, inj, rec, delivered, sent = attack(
            FaultKind.FRAME_DROP, duration=1.0, magnitude=0.5,
            post=10.0)
        assert inj.stats.frames_dropped > 0
        assert rec.resolved
        assert len(delivered) >= 0.98 * sent[0]


class TestRoleHang:
    def test_hang_detected_and_power_cycled(self):
        cloud, service, inj, rec, delivered, sent = attack(
            FaultKind.ROLE_HANG)
        shell = cloud.shell(rec.event.target)
        assert shell.scrubber is not None  # lazily created by injector
        assert rec.detected_at is not None
        assert rec.recovered_at is not None
        assert not shell.scrubber.role_hung
        assert len(service.hosts) == 2


class TestTorOutage:
    def test_whole_tor_dark_and_back(self):
        cloud, service, inj, rec, delivered, sent = attack(
            FaultKind.TOR_OUTAGE, duration=3.0, target=POOL[0])
        # Every pool host shares TOR 0 in the default topology.
        assert sorted(rec.affected) == POOL
        assert rec.detected_at is not None
        assert rec.recovered_at is not None
        # All victims rehabilitated after reattach + power cycle.
        for host in POOL:
            assert cloud.resource_manager.manager(host).health \
                is FpgaHealth.HEALTHY


class TestControlStall:
    def test_stall_expires_leases_then_service_reacquires(self):
        cloud, service, client, delivered = build(lease=5.0, sweep=0.5)
        env = cloud.env
        injector = FaultInjector(cloud, hosts=POOL,
                                 service_managers=[service.sm], seed=1)
        event = FaultEvent(at=env.now + 0.5,
                           kind=FaultKind.CONTROL_STALL, duration=12.0)
        injector.run_campaign([event])
        drive(cloud, service, client, 15.0)
        env.run(until=env.now + 60.0)
        rec = injector.records[0]
        assert cloud.resource_manager.stats.expirations > 0
        assert rec.detected_at is not None
        assert rec.recovered_at is not None
        assert service.sm.pending_replacements == 0
        assert len(service.hosts) == 2


class TestLoadSpike:
    def test_spike_drives_the_load_hook(self):
        cloud, service, client, delivered = build()
        env = cloud.env
        injector = FaultInjector(cloud, hosts=POOL, seed=1)
        multipliers = []
        injector.load_hook = multipliers.append
        injector.run_campaign([FaultEvent(
            at=env.now + 0.5, kind=FaultKind.LOAD_SPIKE,
            duration=2.0, magnitude=5.0)])
        env.run(until=env.now + 5.0)
        rec = injector.records[0]
        # Hook sees the spike on, then restored to 1.0 at expiry.
        assert multipliers == [5.0, 1.0]
        assert rec.recovered_at - rec.detected_at == 2.0
        assert injector.stats.load_spikes == 1

    def test_spike_elided_without_hook(self):
        """No workload attached: the record closes immediately instead
        of dangling unresolved in a chaos soak."""
        cloud, service, client, delivered = build()
        env = cloud.env
        injector = FaultInjector(cloud, hosts=POOL, seed=1)
        injector.run_campaign([FaultEvent(
            at=env.now + 0.5, kind=FaultKind.LOAD_SPIKE,
            duration=2.0, magnitude=5.0)])
        env.run(until=env.now + 1.0)
        rec = injector.records[0]
        assert rec.resolved
        assert rec.recovered_at == rec.detected_at
        assert "elided" in rec.note


class TestSlowPeer:
    def test_limplock_slows_frames_without_tripping_health(self):
        cloud, service, inj, rec, delivered, sent = attack(
            FaultKind.SLOW_PEER, duration=2.0, magnitude=8.0,
            post=10.0)
        assert inj.stats.frames_slowed > 0
        assert rec.resolved
        # Self-closing: the limplock never trips a health check, so
        # the tap removal is the recovery boundary.
        assert rec.recovered_at == rec.detected_at
        # The victim kept serving throughout — no failover fired.
        assert service.failovers == 0
        assert rec.event.target in service.hosts
        # And the slowdown is a delay, not a drop: delivery holds.
        assert len(delivered) >= 0.98 * sent[0]


class TestCampaignDriving:
    def test_events_fire_at_scheduled_times(self):
        cloud, service, client, delivered = build()
        env = cloud.env
        injector = FaultInjector(cloud, hosts=POOL,
                                 service_managers=[service.sm], seed=1)
        t0 = env.now
        events = [
            FaultEvent(at=t0 + 1.0, kind=FaultKind.FRAME_DROP,
                       target=POOL[0], duration=0.5, magnitude=0.2),
            FaultEvent(at=t0 + 2.0, kind=FaultKind.LINK_FLAP,
                       target=POOL[1], duration=1.0),
        ]
        injector.run_campaign(events)
        env.run(until=env.now + 30.0)
        assert [r.injected_at for r in injector.records] == \
            [t0 + 1.0, t0 + 2.0]
        summary = injector.summary()
        assert summary["injected"] == 2
        assert summary["by_kind"] == {"frame_drop": 1, "link_flap": 1}
