"""Tests for fault-campaign generation: determinism, §II-B scaling,
event shapes."""

import pytest

from repro.faults import (CampaignConfig, FaultKind, TRANSIENT_KINDS,
                          generate_campaign)

HOSTS = list(range(16))


def paper_config(scale=5e6):
    return CampaignConfig.scaled_from_paper(scale)


class TestConfig:
    def test_paper_rates_cover_every_kind(self):
        config = paper_config()
        for kind in FaultKind:
            assert config.rates[kind] > 0.0

    def test_scaling_is_linear(self):
        one = paper_config(1e6)
        two = paper_config(2e6)
        for kind in FaultKind:
            assert two.rates[kind] == pytest.approx(2 * one.rates[kind])

    def test_hard_death_dominates_cable_rate(self):
        # §II-B: 2 hard failures vs 1 flaky cable over the same window.
        config = paper_config()
        assert config.rates[FaultKind.FPGA_DEATH] == pytest.approx(
            2 * config.rates[FaultKind.LINK_FLAP])

    def test_shape_overrides_applied(self):
        config = CampaignConfig.scaled_from_paper(
            1e6, gray_delay=7e-3, control_stall_duration=42.0)
        assert config.gray_delay == 7e-3
        assert config.control_stall_duration == 42.0

    def test_event_shape_matches_config(self):
        config = CampaignConfig.scaled_from_paper(1e6, flap_duration=9.0)
        shape = config.event_shape(FaultKind.LINK_FLAP)
        assert shape["duration"] == 9.0

    def test_overload_kind_shapes(self):
        config = CampaignConfig.scaled_from_paper(
            1e6, load_spike_multiplier=7.0, slow_peer_factor=16.0)
        spike = config.event_shape(FaultKind.LOAD_SPIKE)
        assert spike["magnitude"] == 7.0
        assert spike["duration"] == config.load_spike_duration
        peer = config.event_shape(FaultKind.SLOW_PEER)
        assert peer["magnitude"] == 16.0
        assert peer["duration"] == config.slow_peer_duration

    def test_overload_kinds_are_transient(self):
        assert FaultKind.LOAD_SPIKE in TRANSIENT_KINDS
        assert FaultKind.SLOW_PEER in TRANSIENT_KINDS
        # Limplock is as common as a flaky cable; whole-service flash
        # crowds are rarer.
        config = paper_config()
        assert config.rates[FaultKind.SLOW_PEER] == pytest.approx(
            config.rates[FaultKind.LINK_FLAP])
        assert config.rates[FaultKind.LOAD_SPIKE] == pytest.approx(
            config.rates[FaultKind.LINK_FLAP] / 10.0)


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        config = paper_config()
        a = generate_campaign(HOSTS, 100.0, config, seed=42)
        b = generate_campaign(HOSTS, 100.0, config, seed=42)
        assert a == b

    def test_different_seed_differs(self):
        config = paper_config()
        a = generate_campaign(HOSTS, 100.0, config, seed=1)
        b = generate_campaign(HOSTS, 100.0, config, seed=2)
        assert a != b

    def test_sorted_within_horizon_targets_valid(self):
        config = paper_config()
        events = generate_campaign(HOSTS, 50.0, config, seed=7)
        assert events
        assert events == sorted(events, key=lambda e: e.at)
        for e in events:
            assert 0.0 <= e.at < 50.0
            if e.kind is FaultKind.CONTROL_STALL:
                assert e.target == -1
            else:
                assert e.target in HOSTS
            if e.kind in TRANSIENT_KINDS:
                assert e.duration > 0.0

    def test_rate_scales_event_count(self):
        lo = generate_campaign(HOSTS, 200.0, paper_config(1e6), seed=3)
        hi = generate_campaign(HOSTS, 200.0, paper_config(8e6), seed=3)
        assert len(hi) > 2 * len(lo)

    def test_empty_hosts_rejected(self):
        with pytest.raises(ValueError):
            generate_campaign([], 10.0, paper_config(), seed=0)

    def test_zero_rates_yield_no_events(self):
        config = CampaignConfig(rates={})
        assert generate_campaign(HOSTS, 100.0, config, seed=0) == []
