"""Injector tests for the control-plane fault kinds: RM_CRASH and
NETWORK_PARTITION (added with the crash-recoverable control plane)."""

from repro.core import ConfigurableCloud
from repro.faults import (CONTROL_PLANE_KINDS, CampaignConfig, FaultEvent,
                          FaultInjector, FaultKind, generate_campaign)
from repro.fpga import Image, ShellConfig
from repro.haas import (ResourceManager, RpcConfig, ServiceManager,
                        audit_journal)
from repro.net import TopologyConfig, idle

IMAGE = Image(name="svc", role_name="svc-role")
POOL = list(range(6))

#: Lossless but *simulated* seam: the SMs hold copies of their grants
#: and talk over a channel a partition can actually cut.
SIM_RPC = RpcConfig(delay=1e-3, call_timeout=0.25, max_retries=6,
                    backoff_base=0.05, backoff_max=0.4)


def build(lease=6.0, sweep=0.5, quarantine=2.0, services=1,
          components=2):
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=7)
    cloud._rm = ResourceManager(cloud.env, cloud.fabric.topology,
                                lease_duration=lease, sweep_period=sweep,
                                quarantine_seconds=quarantine)
    for host in POOL:
        cloud.add_server(host, shell_config=ShellConfig(with_ltl=False))
    sms = []
    for i in range(services):
        sm = ServiceManager(cloud.env, f"svc-{i}", cloud.resource_manager,
                            IMAGE, retry_backoff=0.25,
                            retry_backoff_max=2.0,
                            rpc_config=SIM_RPC, rpc_seed=50 + i)
        sm.grow(components)
        sm.start_heartbeat(1.0)
        sms.append(sm)
    cloud.env.run(until=2.0)
    return cloud, sms


class TestRmCrash:
    def test_crash_recovered_by_journal_replay(self):
        cloud, (sm,) = build()
        env, rm = cloud.env, cloud.resource_manager
        injector = FaultInjector(cloud, hosts=POOL,
                                 service_managers=[sm], seed=1)
        injector.run_campaign([FaultEvent(
            at=env.now + 0.5, kind=FaultKind.RM_CRASH, duration=2.0)])
        env.run(until=env.now + 20.0)

        rec = injector.records[0]
        assert rec.detected_at is not None
        assert rec.recovered_at is not None
        assert rm.stats.crashes == 1
        assert rm.stats.restarts == 1
        assert rm.stats.recovered_leases == 2
        assert rm.epoch == 2
        # The service rode through: leases replayed, not re-granted.
        assert len(sm.hosts) == 2
        # Recovery fits inside one sweep period (the acceptance gate).
        assert rec.recovered_at - (rec.injected_at + 2.0) \
            <= rm._sweep_period
        kinds = [r.kind for r in rm.journal.records]
        assert "crash" in kinds and "restart" in kinds
        assert audit_journal(rm.journal, tail_grace=5.0,
                             end_time=env.now).ok

    def test_overlapping_crash_elided(self):
        cloud, (sm,) = build()
        env = cloud.env
        injector = FaultInjector(cloud, hosts=POOL,
                                 service_managers=[sm], seed=1)
        injector.run_campaign([
            FaultEvent(at=env.now + 0.5, kind=FaultKind.RM_CRASH,
                       duration=3.0),
            FaultEvent(at=env.now + 1.0, kind=FaultKind.RM_CRASH,
                       duration=3.0),
        ])
        env.run(until=env.now + 20.0)
        notes = [r.note for r in injector.records]
        assert any("elided" in note for note in notes)
        assert cloud.resource_manager.stats.crashes == 1


class TestNetworkPartition:
    def test_stranded_sm_expires_then_recovers(self):
        cloud, (sm,) = build(lease=4.0)
        env, rm = cloud.env, cloud.resource_manager
        injector = FaultInjector(cloud, hosts=POOL,
                                 service_managers=[sm], seed=1)
        injector.run_campaign([FaultEvent(
            at=env.now + 0.5, kind=FaultKind.NETWORK_PARTITION,
            duration=8.0)])
        env.run(until=env.now + 40.0)

        rec = injector.records[0]
        assert rec.detected_at is not None
        assert rec.recovered_at is not None
        # The partition outlived the lease: the RM really expired it...
        assert rm.stats.expirations >= 1
        # ...the stranded side saw its renews fail in transit...
        assert sm.stats.renew_failures > 0
        # ...and after the heal the SM re-acquired to full strength.
        assert len(sm.hosts) == 2
        assert sm.pending_replacements == 0
        assert sm.channel.stats.partition_drops > 0
        assert not sm.channel.partitioned

    def test_partitions_round_robin_across_sms(self):
        cloud, sms = build(services=2, components=1)
        env = cloud.env
        injector = FaultInjector(cloud, hosts=POOL,
                                 service_managers=sms, seed=1)
        injector.run_campaign([
            FaultEvent(at=env.now + 0.5,
                       kind=FaultKind.NETWORK_PARTITION, duration=1.0),
            FaultEvent(at=env.now + 4.0,
                       kind=FaultKind.NETWORK_PARTITION, duration=1.0),
        ])
        env.run(until=env.now + 12.0)
        # Each SM was stranded once, not one SM twice.
        for sm in sms:
            assert sm.channel.stats.partition_drops > 0


class TestCampaignStability:
    def test_control_plane_kinds_target_no_host(self):
        # High scale / long horizon so even the rarest kind (RM_CRASH,
        # at half the rack-event rate) draws at least one arrival.
        config = CampaignConfig.scaled_from_paper(5e9)
        events = generate_campaign(POOL, 60.0, config, seed=9)
        kinds = {event.kind for event in events}
        assert FaultKind.RM_CRASH in kinds
        assert FaultKind.NETWORK_PARTITION in kinds
        for event in events:
            if event.kind in CONTROL_PLANE_KINDS:
                assert event.target == -1

    def test_new_kinds_do_not_perturb_existing_schedules(self):
        """Per-kind sequential draws in enum order: adding RM_CRASH /
        NETWORK_PARTITION (appended last) must leave every earlier
        kind's seeded schedule byte-identical."""
        full = CampaignConfig.scaled_from_paper(5e7)
        pruned = CampaignConfig.scaled_from_paper(5e7)
        pruned.rates = {kind: rate for kind, rate in pruned.rates.items()
                        if kind not in (FaultKind.RM_CRASH,
                                        FaultKind.NETWORK_PARTITION)}
        with_new = generate_campaign(POOL, 30.0, full, seed=9)
        without = generate_campaign(POOL, 30.0, pruned, seed=9)
        old = [(e.at, e.kind, e.target) for e in with_new
               if e.kind not in (FaultKind.RM_CRASH,
                                 FaultKind.NETWORK_PARTITION)]
        assert old == [(e.at, e.kind, e.target) for e in without]
