"""Tests for multi-role shells ("Role x N", Fig. 4) and the LTL
failure-detection hook."""

import pytest

from repro.fpga import Shell, ShellConfig
from repro.ltl import LtlConfig
from repro.net import DatacenterFabric, TopologyConfig, idle
from repro.sim import Environment


def make_pair(num_roles=3, ltl_config=None):
    env = Environment()
    fabric = DatacenterFabric(env, TopologyConfig(background=idle()))
    config = ShellConfig(num_roles=num_roles,
                         ltl=ltl_config or LtlConfig())
    a = Shell(env, 0, fabric, config=config)
    b = Shell(env, 1, fabric, config=config)
    a.connect_to(b)
    return env, a, b


class TestMultiRole:
    def test_role_port_mapping(self):
        env, a, _b = make_pair(num_roles=3)
        assert a.role_port(0) == 1   # classic 4-port mapping preserved
        assert a.role_port(1) == 4
        assert a.role_port(2) == 5
        assert a.er.num_ports == 6

    def test_single_role_keeps_four_ports(self):
        env, a, _b = make_pair(num_roles=1)
        assert a.er.num_ports == 4

    def test_out_of_range_role_rejected(self):
        env, a, _b = make_pair(num_roles=2)
        with pytest.raises(ValueError):
            a.role_port(2)
        with pytest.raises(ValueError):
            a.set_role_handler(5, lambda p, n: None)

    def test_zero_roles_rejected(self):
        env = Environment()
        fabric = DatacenterFabric(env, TopologyConfig(background=idle()))
        with pytest.raises(ValueError):
            Shell(env, 0, fabric, config=ShellConfig(num_roles=0))

    def test_remote_message_routed_to_addressed_role(self):
        env, a, b = make_pair(num_roles=3)
        got = []
        for role in range(3):
            b.set_role_handler(role, lambda p, n, r=role: got.append(
                (r, p)))
        a.remote_send(1, b"r0", 64)
        a.remote_send(1, b"r1", 64, dst_role=1)
        a.remote_send(1, b"r2", 64, dst_role=2, src_role=2)
        env.run(until=1e-3)
        assert sorted(got) == [(0, b"r0"), (1, b"r1"), (2, b"r2")]

    def test_legacy_role_receive_still_works(self):
        env, a, b = make_pair(num_roles=2)
        got = []
        b.role_receive = lambda p, n: got.append(p)
        a.remote_send(1, b"legacy", 32)
        env.run(until=1e-3)
        assert got == [b"legacy"]

    def test_explicit_handler_overrides_legacy(self):
        env, a, b = make_pair(num_roles=1)
        legacy, explicit = [], []
        b.role_receive = lambda p, n: legacy.append(p)
        b.set_role_handler(0, lambda p, n: explicit.append(p))
        a.remote_send(1, b"x", 16)
        env.run(until=1e-3)
        assert explicit == [b"x"] and legacy == []


class TestRemoteFailureHook:
    def test_ltl_failure_surfaces_remote_host(self):
        env, a, b = make_pair(
            ltl_config=LtlConfig(max_consecutive_timeouts=3))
        failures = []
        a.on_remote_failure = lambda host: failures.append(
            (host, env.now))
        # The remote FPGA goes dark: its link drops, frames vanish.
        b.bridge.link_up = False
        env2_detach = b.fabric.detach(1)
        a.remote_send(1, b"anyone there?", 32)
        env.run(until=5e-3)
        assert failures and failures[0][0] == 1
        # Detection in well under a millisecond (50 us timeout x 3).
        assert failures[0][1] < 1e-3
        # The stale connection is dropped for reprovisioning.
        assert 1 not in a._send_conns
