"""Tests for the bump-in-the-wire bridge and the assembled shell."""

import pytest

from repro.fpga import Shell, ShellConfig
from repro.fpga.bridge import Bridge
from repro.fpga.reconfig import Image
from repro.net import DatacenterFabric, TopologyConfig, idle
from repro.net.packet import EthernetHeader, Packet
from repro.sim import Environment


def make_packet(payload=b"data"):
    return Packet(eth=EthernetHeader("02:00:00:00:00:01",
                                     "02:00:00:00:00:02"),
                  payload=payload)


class TestBridge:
    def test_passthrough_both_directions(self):
        env = Environment()
        to_nic, to_tor = [], []
        bridge = Bridge(env, deliver_to_nic=to_nic.append,
                        deliver_to_tor=to_tor.append)
        bridge.from_tor(make_packet(b"inbound"))
        bridge.from_nic(make_packet(b"outbound"))
        env.run()
        assert [p.payload for p in to_nic] == [b"inbound"]
        assert [p.payload for p in to_tor] == [b"outbound"]

    def test_tap_can_transform(self):
        env = Environment()
        to_tor = []
        bridge = Bridge(env, deliver_to_tor=to_tor.append)

        def upper(packet):
            packet.payload = packet.payload.upper()
            return packet

        bridge.add_nic_to_tor_tap(upper)
        bridge.from_nic(make_packet(b"abc"))
        env.run()
        assert to_tor[0].payload == b"ABC"

    def test_tap_can_consume(self):
        env = Environment()
        to_nic = []
        bridge = Bridge(env, deliver_to_nic=to_nic.append)
        bridge.add_tor_to_nic_tap(lambda p: None)
        bridge.from_tor(make_packet())
        env.run()
        assert to_nic == []
        assert bridge.stats.consumed_by_taps == 1

    def test_taps_apply_in_order(self):
        env = Environment()
        to_tor = []
        bridge = Bridge(env, deliver_to_tor=to_tor.append)
        bridge.add_nic_to_tor_tap(lambda p: (setattr(
            p, "payload", p.payload + b"-1"), p)[1])
        bridge.add_nic_to_tor_tap(lambda p: (setattr(
            p, "payload", p.payload + b"-2"), p)[1])
        bridge.from_nic(make_packet(b"x"))
        env.run()
        assert to_tor[0].payload == b"x-1-2"

    def test_bypass_mode_skips_taps(self):
        env = Environment()
        to_tor = []
        bridge = Bridge(env, deliver_to_tor=to_tor.append)
        bridge.add_nic_to_tor_tap(lambda p: None)  # would consume
        bridge.bypass_mode = True
        bridge.from_nic(make_packet(b"still-flows"))
        env.run()
        assert [p.payload for p in to_tor] == [b"still-flows"]

    def test_link_down_drops_and_counts(self):
        env = Environment()
        to_nic = []
        bridge = Bridge(env, deliver_to_nic=to_nic.append)
        bridge.link_up = False
        bridge.from_tor(make_packet())
        bridge.inject_to_tor(make_packet())
        env.run()
        assert to_nic == []
        assert bridge.stats.dropped_link_down == 2

    def test_tap_latency_hook_delays_packet(self):
        env = Environment()
        times = []
        bridge = Bridge(env, deliver_to_tor=lambda p: times.append(env.now))

        class SlowTap:
            def __call__(self, packet):
                return packet

            @staticmethod
            def latency_for(packet):
                return 10e-6

        bridge.add_nic_to_tor_tap(SlowTap())
        bridge.from_nic(make_packet())
        env.run()
        assert times[0] >= 10e-6

    def test_remove_tap(self):
        env = Environment()
        to_tor = []
        bridge = Bridge(env, deliver_to_tor=to_tor.append)
        tap = lambda p: None  # noqa: E731
        bridge.add_nic_to_tor_tap(tap)
        bridge.remove_tap(tap)
        bridge.from_nic(make_packet())
        env.run()
        assert len(to_tor) == 1


class TestShell:
    def _cloud(self, *indices, config=None):
        env = Environment()
        fabric = DatacenterFabric(env, TopologyConfig(background=idle()))
        shells = [Shell(env, i, fabric, config=config) for i in indices]
        return env, fabric, shells

    def test_ltl_between_shells(self):
        env, fabric, (a, b) = self._cloud(0, 1)
        a.connect_to(b)
        got = []
        b.role_receive = lambda p, n: got.append((p, n))
        a.remote_send(1, b"role-msg", 64)
        env.run(until=1e-3)
        assert got == [(b"role-msg", 64)]

    def test_nic_traffic_bridged_while_ltl_active(self):
        """Passthrough and LTL coexist: 'the passthrough traffic and the
        search ranking acceleration have no performance interaction'."""
        env, fabric, (a, b) = self._cloud(0, 1)
        a.connect_to(b)
        nic_got, role_got = [], []
        b.nic_receive = lambda p: nic_got.append(p.payload)
        b.role_receive = lambda p, n: role_got.append(p)
        a.remote_send(1, b"ltl", 64)
        a.send_from_nic(a.attachment.make_packet(1, b"tcp-ish"))
        env.run(until=1e-3)
        assert nic_got == [b"tcp-ish"]
        assert role_got == [b"ltl"]

    def test_remote_send_without_connection_fails(self):
        env, fabric, (a, b) = self._cloud(0, 1)
        a.remote_send(1, b"x", 16)
        with pytest.raises(RuntimeError, match="no LTL connection"):
            env.run(until=1e-3)

    def test_shell_without_ltl_block(self):
        env, fabric, shells = self._cloud(
            0, config=ShellConfig(with_ltl=False))
        a = shells[0]
        assert a.ltl is None
        b = Shell(env, 1, fabric)
        with pytest.raises(RuntimeError):
            a.connect_to(b)

    def test_connect_is_idempotent(self):
        env, fabric, (a, b) = self._cloud(0, 1)
        a.connect_to(b)
        a.connect_to(b)
        assert len(a._send_conns) == 1

    def test_ltl_packets_not_bridged_to_nic(self):
        env, fabric, (a, b) = self._cloud(0, 1)
        a.connect_to(b)
        nic_got = []
        b.nic_receive = lambda p: nic_got.append(p)
        b.role_receive = lambda p, n: None
        a.remote_send(1, b"ltl-only", 64)
        env.run(until=1e-3)
        assert nic_got == []

    def test_reconfig_link_down_stops_bridging(self):
        env, fabric, (a, b) = self._cloud(0, 1)
        nic_got = []
        b.nic_receive = lambda p: nic_got.append(p)
        image = Image("new-role", "r")
        a.configuration.write_application_image(image)
        env.process(a.configuration.full_reconfigure())

        def send_during(env):
            yield env.timeout(0.5)  # mid-reconfig
            a.send_from_nic(a.attachment.make_packet(1, b"lost"))

        env.process(send_during(env))
        env.run(until=2.0)
        assert nic_got == []
        assert a.bridge.stats.dropped_link_down >= 1

    def test_l0_rtt_matches_paper(self):
        """Same-TOR LTL RTT ~ 2.88 us (idle)."""
        env, fabric, (a, b) = self._cloud(0, 1)
        a.connect_to(b)

        def driver(env):
            for _ in range(20):
                a.remote_send(1, b"\x00" * 64, 64)
                yield env.timeout(100e-6)

        env.process(driver(env))
        env.run(until=0.05)
        samples = a.ltl.rtt_samples()
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(2.88e-6, rel=0.03)
