"""SEU role-hang integration: a wedged role drops work until scrubbed."""

from repro.fpga import Shell, ShellConfig
from repro.net import DatacenterFabric, TopologyConfig, idle
from repro.sim import Environment


def make_pair_with_seu():
    env = Environment()
    fabric = DatacenterFabric(env, TopologyConfig(background=idle()))
    a = Shell(env, 0, fabric)
    b = Shell(env, 1, fabric, config=ShellConfig(enable_seu=True))
    a.connect_to(b)
    return env, a, b


class TestRoleHang:
    def test_hung_role_drops_messages(self):
        env, a, b = make_pair_with_seu()
        got = []
        b.role_receive = lambda p, n: got.append(p)
        b.scrubber.role_hung = True  # inject the wedge directly
        a.remote_send(1, b"lost-while-hung", 32)
        env.run(until=1e-3)
        assert got == []

    def test_recovered_role_serves_again(self):
        env, a, b = make_pair_with_seu()
        got = []
        b.role_receive = lambda p, n: got.append(p)
        b.scrubber.role_hung = True
        a.remote_send(1, b"during-hang", 32)
        env.run(until=1e-3)
        b.scrubber.role_hung = False  # the scrub pass fixed it
        a.remote_send(1, b"after-recovery", 32)
        env.run(until=env.now + 1e-3)
        assert got == [b"after-recovery"]

    def test_scrubber_recovers_hang_within_period(self):
        """End to end at accelerated SEU rates: a hang happens and is
        recovered automatically by the ~30 s scrub pass."""
        env, a, b = make_pair_with_seu()
        # Accelerate: flips every ~5 s, every flip hangs the role.
        b.scrubber.mean_seconds_between_flips = 5.0
        b.scrubber.role_hang_probability = 1.0
        env.run(until=300.0)
        assert b.scrubber.stats.role_hangs > 0
        assert b.scrubber.stats.recoveries >= \
            b.scrubber.stats.role_hangs - 1  # last one may be pending

    def test_shell_without_seu_never_drops(self):
        env = Environment()
        fabric = DatacenterFabric(env, TopologyConfig(background=idle()))
        a = Shell(env, 0, fabric)
        b = Shell(env, 1, fabric)  # enable_seu defaults off
        a.connect_to(b)
        got = []
        b.role_receive = lambda p, n: got.append(p)
        a.remote_send(1, b"always", 32)
        env.run(until=1e-3)
        assert got == [b"always"]
