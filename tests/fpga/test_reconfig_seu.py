"""Tests for configuration management and the SEU scrubber."""

import random

import pytest

from repro.fpga.reconfig import (
    FULL_RECONFIG_SECONDS,
    GOLDEN_IMAGE,
    PARTIAL_RECONFIG_SECONDS,
    ConfigurationError,
    ConfigurationManager,
    Image,
)
from repro.fpga.seu import SeuScrubber, expected_flips
from repro.sim import Environment


class TestConfigurationManager:
    def test_boots_golden(self):
        manager = ConfigurationManager(Environment())
        assert manager.live_image is GOLDEN_IMAGE
        assert manager.link_up

    def test_full_reconfigure_loads_application(self):
        env = Environment()
        app = Image("ranking-v3", "ffu")
        manager = ConfigurationManager(env, application_image=app)
        env.process(manager.full_reconfigure())
        env.run()
        assert manager.live_image is app
        assert manager.full_reconfigs == 1
        assert env.now == pytest.approx(FULL_RECONFIG_SECONDS)

    def test_full_reconfigure_drops_link_temporarily(self):
        env = Environment()
        app = Image("role", "role")
        manager = ConfigurationManager(env, application_image=app)
        states = []
        manager.on_link_change = lambda up: states.append((env.now, up))
        env.process(manager.full_reconfigure())
        env.run()
        assert states == [(0.0, False),
                          (pytest.approx(FULL_RECONFIG_SECONDS), True)]

    def test_partial_reconfigure_keeps_link_up(self):
        env = Environment()
        manager = ConfigurationManager(env)
        states = []
        manager.on_link_change = lambda up: states.append(up)
        env.process(manager.partial_reconfigure(Image("r2", "r2")))
        env.run()
        assert states == []
        assert manager.live_image.name == "r2"
        assert env.now == pytest.approx(PARTIAL_RECONFIG_SECONDS)

    def test_partial_cannot_load_golden(self):
        env = Environment()
        manager = ConfigurationManager(env)
        with pytest.raises(ConfigurationError):
            env.process(manager.partial_reconfigure(GOLDEN_IMAGE))
            env.run()

    def test_power_cycle_restores_golden(self):
        env = Environment()
        app = Image("buggy", "role")
        manager = ConfigurationManager(env, application_image=app)
        env.process(manager.full_reconfigure())
        env.run()
        assert manager.live_image is app
        env.process(manager.power_cycle())
        env.run()
        assert manager.live_image is GOLDEN_IMAGE
        assert manager.power_cycles == 1

    def test_golden_slot_never_rewritten(self):
        manager = ConfigurationManager(Environment())
        with pytest.raises(ConfigurationError):
            manager.write_application_image(
                Image("fake-golden", "x", is_golden=True))

    def test_no_application_image_rejected(self):
        env = Environment()
        manager = ConfigurationManager(env)
        with pytest.raises(ConfigurationError):
            env.process(manager.full_reconfigure())
            env.run()

    def test_concurrent_reconfig_rejected(self):
        env = Environment()
        manager = ConfigurationManager(
            env, application_image=Image("a", "a"))
        env.process(manager.full_reconfigure())

        def second(env):
            yield env.timeout(0.1)
            with pytest.raises(ConfigurationError):
                gen = manager.full_reconfigure()
                next(gen)

        env.process(second(env))
        env.run()


class TestSeuScrubber:
    def test_flip_rate_statistics(self):
        """Fleet-scale flip rate matches 1 per 1025 machine-days."""
        env = Environment()
        day = 24 * 3600.0
        # One simulated scrubber, accelerated: mean 1 day between flips.
        scrubber = SeuScrubber(env, rng=random.Random(1),
                               mean_seconds_between_flips=day,
                               scrub_period=3600.0)
        env.run(until=400 * day)
        # Poisson(400): within 4 sigma.
        assert 320 <= scrubber.stats.flips <= 480

    def test_scrubber_detects_and_corrects(self):
        env = Environment()
        scrubber = SeuScrubber(env, rng=random.Random(2),
                               mean_seconds_between_flips=10.0,
                               scrub_period=30.0)
        env.run(until=1000.0)
        assert scrubber.stats.flips > 0
        assert scrubber.stats.corrected == scrubber.stats.detected
        # Everything injected so far and scrubbed is accounted for.
        assert scrubber.stats.detected >= scrubber.stats.flips - 5

    def test_role_hang_recovers_within_scrub_period(self):
        env = Environment()
        scrubber = SeuScrubber(env, rng=random.Random(3),
                               mean_seconds_between_flips=5.0,
                               scrub_period=30.0,
                               role_hang_probability=1.0)
        recoveries = []
        scrubber.on_recovery = lambda event: recoveries.append(
            env.now - event.occurred_at)
        env.run(until=500.0)
        assert recoveries
        assert all(dt <= 30.0 + 1e-9 for dt in recoveries)
        # Every *detected* hang recovered (flips after the last scrub pass
        # are still pending at the end of the run).
        detected_hangs = sum(1 for e in scrubber.events
                             if e.caused_role_hang and e.detected_at >= 0)
        assert scrubber.stats.recoveries == detected_hangs

    def test_expected_flips_matches_paper_scale(self):
        # 5760 machines for 30 days ~ 168.6 expected flips.
        assert expected_flips(5760, 30) == pytest.approx(168.6, abs=0.1)
