"""Tests for the Fig. 5 area budget, board spec, and power model."""

import pytest

from repro.fpga import (
    AreaBudget,
    BoardSpec,
    PowerModel,
    ThermalConditions,
    power_virus_power_w,
    validate_envelope,
)
from repro.fpga.area import TOTAL_ALMS
from repro.fpga.board import Board


class TestAreaBudget:
    """Pins the invariants the paper's text states about Fig. 5."""

    def test_total_area_used(self):
        assert AreaBudget().used_alms == 131_350

    def test_used_fraction_is_76_percent(self):
        assert round(100 * AreaBudget().used_fraction) == 76

    def test_shell_fraction_is_44_percent(self):
        assert round(100 * AreaBudget().shell_fraction) == 44

    def test_macs_are_14_percent(self):
        budget = AreaBudget()
        fraction = budget.fraction_of("40G MAC/PHY (TOR)",
                                      "40G MAC/PHY (NIC)")
        assert round(100 * fraction) == 13 or round(100 * fraction) == 14

    def test_ddr_is_8_percent(self):
        assert round(100 * AreaBudget().fraction_of(
            "DDR3 Memory Controller")) == 8

    def test_ltl_is_7_percent(self):
        assert round(100 * AreaBudget().fraction_of(
            "LTL Protocol Engine")) == 7

    def test_er_is_2_percent(self):
        assert round(100 * AreaBudget().fraction_of("Elastic Router")) == 2

    def test_role_is_32_percent(self):
        budget = AreaBudget()
        assert round(100 * budget.role_alms / TOTAL_ALMS) == 32

    def test_stratix_v_d5_capacity(self):
        assert TOTAL_ALMS == 172_600

    def test_no_ltl_shell_variant_frees_area(self):
        """'Services using only their single local FPGA can choose to
        deploy a shell version without the LTL block.'"""
        full = AreaBudget()
        slim = full.without("LTL Protocol Engine", "LTL Packet Switch")
        freed = full.used_alms - slim.used_alms
        assert freed == 11_839 + 4_815
        assert slim.free_alms > full.free_alms

    def test_unknown_block_drop_rejected(self):
        with pytest.raises(KeyError):
            AreaBudget().without("Warp Drive")

    def test_with_role_replaces_role(self):
        budget = AreaBudget().with_role("crypto", 20_000)
        assert budget.role_alms == 20_000
        assert budget.shell_alms == AreaBudget().shell_alms

    def test_oversized_role_rejected(self):
        with pytest.raises(ValueError):
            AreaBudget().with_role("huge", 120_000)

    def test_rows_include_totals(self):
        rows = AreaBudget().rows()
        assert rows[-1]["component"] == "Total Area Available"
        assert rows[-2]["component"] == "Total Area Used"
        assert rows[-2]["alms"] == 131_350

    def test_entry_lookup(self):
        assert AreaBudget().entry("Role").alms == 55_340
        with pytest.raises(KeyError):
            AreaBudget().entry("nope")

    def test_role_runs_at_175mhz(self):
        assert AreaBudget().entry("Role").freq_mhz == 175.0


class TestBoardSpec:
    def test_pcie_aggregate_is_16_gbytes(self):
        spec = BoardSpec()
        assert spec.pcie_aggregate_bandwidth_bytes == pytest.approx(
            16e9, rel=0.05)

    def test_dram_peak_bandwidth(self):
        assert BoardSpec().dram_peak_bandwidth_bytes == pytest.approx(
            12.8e9)

    def test_power_limits(self):
        spec = BoardSpec()
        assert spec.max_power_w == 35.0
        assert spec.tdp_w == 32.0

    def test_physical_size_half_height_half_length(self):
        spec = BoardSpec()
        assert (spec.width_mm, spec.length_mm) == (80.0, 140.0)

    def test_board_failure_marking(self):
        board = Board(serial=1)
        assert board.usable
        board.mark_hard_failure("SEU storm")
        assert not board.usable
        assert board.health.failure_reason == "SEU storm"


class TestPowerModel:
    def test_power_virus_hits_paper_number(self):
        """'Under these conditions, the card consumes 29.2 W.'"""
        assert power_virus_power_w() == pytest.approx(29.2, abs=0.15)

    def test_virus_within_envelope(self):
        result = validate_envelope()
        assert result["within_tdp"]
        assert result["within_electrical_limit"]

    def test_idle_draw_below_virus(self):
        model = PowerModel()
        idle = model.power_w({}, ThermalConditions())
        assert idle < power_virus_power_w()

    def test_worst_case_hotter_than_nominal(self):
        model = PowerModel()
        util = {"logic": 0.5, "transceivers": 0.5}
        nominal = model.power_w(util, ThermalConditions())
        worst = model.power_w(util, ThermalConditions.worst_case())
        assert worst > nominal

    def test_utilization_bounds_checked(self):
        model = PowerModel()
        with pytest.raises(ValueError):
            model.power_w({"logic": 1.5}, ThermalConditions())
