"""Tests for the PCIe DMA engine and DDR3 controller models."""

import random

import pytest

from repro.fpga.ddr import DdrConfig, DdrController
from repro.fpga.pcie import PcieConfig, PcieDmaEngine
from repro.sim import Environment


class TestPcie:
    def test_transfer_time_scales(self):
        engine = PcieDmaEngine(Environment())
        assert engine.transfer_time(1 << 20) > engine.transfer_time(1 << 10)

    def test_small_transfer_dominated_by_setup(self):
        engine = PcieDmaEngine(Environment())
        assert engine.transfer_time(64) == pytest.approx(
            engine.config.setup_latency, rel=0.02)

    def test_effective_bandwidth_below_raw(self):
        engine = PcieDmaEngine(Environment())
        assert engine.effective_bandwidth_bytes < \
            engine.spec.pcie_bandwidth_per_link_bytes

    def test_dma_process_advances_time_and_counts(self):
        env = Environment()
        engine = PcieDmaEngine(env)
        env.process(engine.dma(1 << 20))
        env.run()
        assert env.now == pytest.approx(engine.transfer_time(1 << 20))
        assert engine.transfers == 1
        assert engine.bytes_moved == 1 << 20

    def test_outstanding_limit_serializes(self):
        env = Environment()
        engine = PcieDmaEngine(
            env, config=PcieConfig(max_outstanding=1))
        for _ in range(3):
            env.process(engine.dma(1 << 20))
        env.run()
        assert env.now == pytest.approx(
            3 * engine.transfer_time(1 << 20), rel=0.01)

    def test_negative_size_rejected(self):
        engine = PcieDmaEngine(Environment())
        with pytest.raises(ValueError):
            engine.transfer_time(-1)


class TestDdr:
    def test_access_before_calibration_rejected(self):
        env = Environment()
        ddr = DdrController(env)
        with pytest.raises(RuntimeError):
            env.process(ddr.read(64))
            env.run()

    def test_calibration_then_read(self):
        env = Environment()
        ddr = DdrController(env, rng=random.Random(1))

        def flow(env):
            ok = yield from ddr.calibrate()
            assert ok
            yield from ddr.read(4096)
            yield from ddr.write(4096)

        env.process(flow(env))
        env.run()
        assert ddr.reads == 1 and ddr.writes == 1
        assert ddr.bytes_moved == 8192

    def test_calibration_failure_rate(self):
        """~8 in 5760 attempts fail (the §II-B logic bug)."""
        env = Environment()
        config = DdrConfig(calibration_time=0.0)
        failures = 0
        rng = random.Random(42)
        for _ in range(5760):
            ddr = DdrController(env, config=config, rng=rng)
            gen = ddr.calibrate()
            try:
                next(gen)
                while True:
                    gen.send(None)
            except StopIteration:
                pass
            failures += ddr.calibration_failures
        # Binomial(5760, 8/5760): expect ~8, allow wide slack.
        assert 1 <= failures <= 25

    def test_effective_bandwidth_below_peak(self):
        ddr = DdrController(Environment())
        assert ddr.effective_bandwidth_bytes < \
            ddr.spec.dram_peak_bandwidth_bytes

    def test_streaming_time_scales_with_size(self):
        env = Environment()
        ddr = DdrController(env)
        ddr.calibrated = True
        env.process(ddr.read(1 << 22))
        env.run()
        big = env.now
        env2 = Environment()
        ddr2 = DdrController(env2)
        ddr2.calibrated = True
        env2.process(ddr2.read(1 << 12))
        env2.run()
        assert big > env2.now
