"""Tests for the Catapult v1 torus baseline."""

import random

import pytest

from repro.torus import TorusLatencyModel, TorusTopology


class TestTopology:
    def test_6x8_has_48_nodes(self):
        assert TorusTopology().num_nodes == 48

    def test_coord_roundtrip(self):
        torus = TorusTopology()
        for node in range(48):
            assert torus.node(torus.coord(node)) == node

    def test_neighbors_wrap(self):
        torus = TorusTopology()
        neighbors = torus.neighbors((0, 0))
        assert (5, 0) in neighbors  # x wraps
        assert (0, 7) in neighbors  # y wraps
        assert len(neighbors) == 4

    def test_dimension_order_path_endpoints(self):
        torus = TorusTopology()
        path = torus.dimension_order_path(0, 47)
        assert path[0] == torus.coord(0)
        assert path[-1] == torus.coord(47)

    def test_hops_nearest_neighbor(self):
        torus = TorusTopology()
        assert torus.hops(0, 1) == 1

    def test_max_hops_is_7(self):
        """6x8 torus diameter: 3 + 4 = 7 (the paper's worst case)."""
        torus = TorusTopology()
        assert torus.max_hops() == 7
        worst = max(torus.hops(0, dst) for dst in range(1, 48))
        assert worst == 7

    def test_wraparound_shortens_path(self):
        torus = TorusTopology()
        # (0,0) -> (5,0): 1 hop via wrap, not 5.
        assert torus.hops(0, 5) == 1

    def test_invalid_node_rejected(self):
        with pytest.raises(ValueError):
            TorusTopology().coord(48)

    def test_small_torus_rejected(self):
        with pytest.raises(ValueError):
            TorusTopology(width=1, height=8)


class TestFailures:
    def test_reroute_costs_extra_hops(self):
        """'Packets need to be dynamically rerouted around a faulty FPGA
        at the cost of extra network hops and latency.'"""
        torus = TorusTopology()
        baseline = torus.hops(0, 2)
        torus.fail_node(1)  # node on the dimension-order path
        rerouted = torus.hops(0, 2)
        assert rerouted is not None
        assert rerouted >= baseline

    def test_failed_destination_unreachable(self):
        torus = TorusTopology()
        torus.fail_node(5)
        assert torus.hops(0, 5) is None

    def test_isolation_under_failure_pattern(self):
        """'Causing ... isolation of nodes under certain failure
        patterns': killing all 4 neighbors isolates a node."""
        torus = TorusTopology()
        victim = (2, 2)
        for neighbor in torus.neighbors(victim):
            torus.fail_node(torus.node(neighbor))
        assert torus.hops(0, torus.node(victim)) is None

    def test_repair_restores(self):
        torus = TorusTopology()
        torus.fail_node(5)
        torus.repair_node(5)
        assert torus.hops(0, 5) == 1

    def test_healthy_reroute_preserves_reachability(self):
        torus = TorusTopology()
        torus.fail_node(7)
        torus.fail_node(13)
        model = TorusLatencyModel(torus)
        # All non-failed pairs still reachable with 2 scattered failures.
        assert model.reachable_count(0) == 45


class TestLatencyModel:
    def test_one_hop_rtt_about_1us(self):
        """'Nearest neighbor (1-hop) communication had a round-trip
        latency of approximately 1 us.'"""
        model = TorusLatencyModel(TorusTopology())
        assert model.round_trip(0, 1) == pytest.approx(1e-6)

    def test_worst_case_rtt_7us(self):
        """'Worst-case round-trip communication in the torus requires
        7 usec.'"""
        model = TorusLatencyModel(TorusTopology())
        rtts = [model.round_trip(0, dst) for dst in range(1, 48)]
        assert max(rtts) == pytest.approx(7e-6)

    def test_jitter_adds_noise(self):
        model = TorusLatencyModel(TorusTopology())
        rng = random.Random(0)
        noisy = model.round_trip(0, 10, rng)
        clean = model.round_trip(0, 10)
        assert noisy != clean
        assert noisy == pytest.approx(clean, rel=0.2)

    def test_all_pairs_count(self):
        model = TorusLatencyModel(TorusTopology())
        rtts = model.all_pair_round_trips()
        assert len(rtts) == 48 * 47

    def test_unreachable_returns_none(self):
        torus = TorusTopology()
        torus.fail_node(1)
        model = TorusLatencyModel(torus)
        assert model.round_trip(0, 1) is None
