"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure from the paper's
evaluation.  Benchmarks print the rows/series the paper reports (run
pytest with ``-s`` to see them) and assert the reproduced *shape* —
who wins, by what factor, where crossovers fall.
"""

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Fixed-width table, printed into the benchmark output."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"
