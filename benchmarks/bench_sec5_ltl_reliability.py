"""E11 — §V-A: LTL reliability mechanics under injected faults.

Exercises the protocol text directly: "LTL provides a strong reliability
guarantee via an ACK/NACK based retransmission scheme ... Timeouts
trigger retransmission of unACKed packets ... NACKs are used to request
timely retransmission ... Timeouts can also be used to identify failing
nodes quickly.  The exact timeout value is configurable, and is
currently set to 50 usec."
"""

import random

from repro.ltl import (
    DirectTransport,
    FaultModel,
    LtlConfig,
    LtlEngine,
    connect_pair,
)
from repro.sim import Environment

from conftest import print_table

MESSAGES = 150
FAULT_GRID = [
    ("clean", FaultModel()),
    ("5% drop", FaultModel(drop_probability=0.05)),
    ("20% drop", FaultModel(drop_probability=0.20)),
    ("15% reorder", FaultModel(reorder_probability=0.15)),
    ("drop+reorder+dup", FaultModel(drop_probability=0.10,
                                    reorder_probability=0.10,
                                    duplicate_probability=0.10)),
]


def run_fault_grid():
    results = []
    for name, faults in FAULT_GRID:
        env = Environment()
        transport = DirectTransport(env, delay=1.5e-6, faults=faults,
                                    rng=random.Random(99))
        a, b = LtlEngine(env, 0), LtlEngine(env, 1)
        transport.register(a)
        transport.register(b)
        conn, _ = connect_pair(a, b)
        got = []
        b.on_message = lambda c, p, n: got.append(p)
        for i in range(MESSAGES):
            a.send_message(conn, i, 256)
        env.run(until=0.5)
        results.append({
            "name": name,
            "delivered": len(got),
            "in_order": got == list(range(MESSAGES)),
            "retransmissions": a.stats.retransmissions,
            "timeouts": a.stats.timeouts,
            "nacks": b.stats.nacks_sent,
            "duplicates_dropped": b.stats.duplicates_dropped,
        })
    return results


def run_failure_detection():
    env = Environment()
    transport = DirectTransport(env, delay=1.5e-6, faults=FaultModel(
        drop_probability=1.0))
    config = LtlConfig(max_consecutive_timeouts=4)
    a = LtlEngine(env, 0, config=config)
    b = LtlEngine(env, 1, config=config)
    transport.register(a)
    transport.register(b)
    conn, _ = connect_pair(a, b)
    detected = []
    a.on_connection_failed = lambda cid, host: detected.append(env.now)
    a.send_message(conn, b"ping", 4)
    env.run(until=10e-3)
    return detected


def test_sec5_ltl_reliability(benchmark):
    grid, detected = benchmark.pedantic(
        lambda: (run_fault_grid(), run_failure_detection()),
        rounds=1, iterations=1)
    print_table(
        "§V-A — LTL under injected faults "
        f"({MESSAGES} messages, 50 us timeout)",
        ("fault model", "delivered", "in order", "retx", "timeouts",
         "NACKs", "dups dropped"),
        [(r["name"], r["delivered"], r["in_order"],
          r["retransmissions"], r["timeouts"], r["nacks"],
          r["duplicates_dropped"]) for r in grid])
    print(f"\ndead peer detected after {detected[0] * 1e6:.0f} us "
          f"(4 consecutive 50 us timeouts)")

    for r in grid:
        assert r["delivered"] == MESSAGES
        assert r["in_order"]
    clean = grid[0]
    assert clean["retransmissions"] == 0
    drops = grid[2]
    assert drops["retransmissions"] > 0
    reorder = grid[3]
    assert reorder["nacks"] > 0
    # Failure detection within ~max_timeouts * (timeout + timer slack).
    assert detected and detected[0] < 1e-3
