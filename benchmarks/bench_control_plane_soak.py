"""Control-plane resilience soak — the ISSUE 9 acceptance gates.

Three seeded experiments against the crash-recoverable, fenced HaaS
control plane:

* **soak** — two heartbeat-kept services on a lossy, delayed RPC seam
  ride out a §II-B fault campaign mixed with ``RM_CRASH`` and
  ``NETWORK_PARTITION`` events.  Gates: service availability >= 99%,
  RM recovery (crash -> journal replay -> serving again) under one
  sweep period, and a clean journal audit (zero double-allocations,
  zero stale-fence admissions, every revocation remedied).
* **exactly-once** — a service grown and churned over a channel with
  heavy loss *and* duplication: the RM's idempotency tables must make
  retried/duplicated ``acquire``/``release`` exactly-once in effect
  (dedup hits observed, audit finds no token granted twice).
* **split-brain** — an SM stranded behind a partition outlives its
  lease; the RM fences its hosts and re-leases them; the stale side's
  late configure/traffic must be *rejected by the FpgaManager's fence
  check* (rejections observed, zero stale admissions), and the stranded
  SM must re-acquire capacity after the partition heals.

Run standalone to append a run to the committed trajectory file::

    PYTHONPATH=src python benchmarks/bench_control_plane_soak.py          # full
    PYTHONPATH=src python benchmarks/bench_control_plane_soak.py --quick  # CI

``BENCH_control.json`` keeps a bounded ``history`` of prior runs so the
trajectory across PRs stays in the repo, not in CI logs.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import ConfigurableCloud  # noqa: E402
from repro.faults import (  # noqa: E402
    CampaignConfig,
    FaultEvent,
    FaultInjector,
    FaultKind,
    generate_campaign,
)
from repro.fpga import Image, ShellConfig  # noqa: E402
from repro.haas import (  # noqa: E402
    Constraints,
    ResourceManager,
    RpcConfig,
    ServiceManager,
    audit_journal,
)
from repro.net import TopologyConfig, idle  # noqa: E402

HISTORY_LIMIT = 50

#: The acceptance gates (see module docstring / ISSUE 9).
AVAILABILITY_MIN = 0.99
#: RM recovery (restart -> first successful acquire) must fit inside
#: one expiry-sweep period.
RM_RECOVERY_MAX_SWEEPS = 1.0

IMAGE = Image(name="cp-soak", role_name="cp-soak-role")

#: Pool spread across three TORs so a TOR outage cannot drain a service.
POOL = list(range(0, 6)) + list(range(24, 30)) + list(range(48, 54))

LEASE_SECONDS = 15.0
SWEEP_SECONDS = 0.25
QUARANTINE_SECONDS = 3.0
HEARTBEAT_SECONDS = 2.0
COMPONENTS_PER_SM = 4
SAMPLE_PERIOD = 0.25

#: Lossy-but-realistic seam for the soak: milliseconds of delay, a few
#: percent loss/duplication — every call still completes via retries.
SOAK_RPC = dict(loss_probability=0.05, duplicate_probability=0.05,
                delay=1e-3, delay_jitter=1e-3,
                call_timeout=0.25, max_retries=8,
                backoff_max=0.4)

#: Scales §II-B per-machine-day rates up to a one-minute soak; the
#: control-plane kinds are pinned on top via the fill-missing pass.
PAPER_SCALE = 1.2e7

#: The kinds this soak exercises: the host-scoped §II-B core plus the
#: control-plane trio.  (Traffic-scoped frame faults live in
#: bench_chaos_soak.py — this pool carries no LTL traffic to tap.)
CONTROL_SOAK_KINDS = (
    FaultKind.FPGA_DEATH, FaultKind.LINK_FLAP, FaultKind.ROLE_HANG,
    FaultKind.TOR_OUTAGE, FaultKind.CONTROL_STALL, FaultKind.RM_CRASH,
    FaultKind.NETWORK_PARTITION,
)

CAMPAIGN_SHAPES = dict(
    flap_duration=1.5,
    tor_outage_duration=3.0,
    control_stall_duration=20.0,     # > lease: forces real expiry
    rm_crash_duration=1.5,           # ~3 sweep periods of RM outage
    partition_duration=8.0,          # < lease slack: fencing, not loss
)


def control_cloud(seed: int, hosts, lease=LEASE_SECONDS,
                  sweep=SWEEP_SECONDS, quarantine=QUARANTINE_SECONDS):
    """Control-plane-only cloud: shells without LTL (no 10 us timer
    wheel), RM journaled with fast lease/sweep for sim-seconds runs."""
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=seed)
    cloud._rm = ResourceManager(cloud.env, cloud.fabric.topology,
                                lease_duration=lease, sweep_period=sweep,
                                quarantine_seconds=quarantine)
    for host in hosts:
        cloud.add_server(host, shell_config=ShellConfig(with_ltl=False))
    return cloud


# ----------------------------------------------------------------------
# Experiment 1: the mixed-campaign soak
# ----------------------------------------------------------------------
def soak_campaign(horizon: float) -> List[FaultEvent]:
    """Seeded campaign over CONTROL_SOAK_KINDS, then guarantee the
    control-plane kinds actually fire (a short draw can miss the rare
    ones, and the soak's whole point is to exercise them)."""
    config = CampaignConfig.scaled_from_paper(PAPER_SCALE,
                                              **CAMPAIGN_SHAPES)
    config.rates = {kind: rate for kind, rate in config.rates.items()
                    if kind in CONTROL_SOAK_KINDS}
    events = generate_campaign(POOL, horizon - 12.0, config, seed=17)
    rng = random.Random(170)
    want = {FaultKind.RM_CRASH: 1, FaultKind.NETWORK_PARTITION: 2,
            FaultKind.CONTROL_STALL: 1, FaultKind.FPGA_DEATH: 1}
    have: Dict[FaultKind, int] = {}
    for event in events:
        have[event.kind] = have.get(event.kind, 0) + 1
    at = 6.0
    for kind, minimum in want.items():
        for _ in range(max(0, minimum - have.get(kind, 0))):
            shape = config.event_shape(kind)
            target = -1 if kind in (FaultKind.RM_CRASH,
                                    FaultKind.NETWORK_PARTITION,
                                    FaultKind.CONTROL_STALL) \
                else rng.choice(POOL)
            events.append(FaultEvent(at=at, kind=kind, target=target,
                                     **shape))
            at += 9.0
    events.sort(key=lambda e: (e.at, e.kind.value, e.target))
    return events


def run_soak(quick: bool) -> Dict[str, float]:
    soak_seconds = 40.0 if quick else 75.0
    drain_seconds = 20.0 if quick else 35.0
    cloud = control_cloud(seed=11, hosts=POOL)
    env = cloud.env
    rm = cloud.resource_manager

    sms = []
    for i, name in enumerate(("svc-a", "svc-b")):
        sm = ServiceManager(env, name, rm, IMAGE,
                            constraints=Constraints(count=1),
                            retry_backoff=0.25, retry_backoff_max=4.0,
                            rpc_config=RpcConfig(**SOAK_RPC),
                            rpc_seed=100 + i)
        sm.grow(COMPONENTS_PER_SM)
        sm.start_heartbeat(HEARTBEAT_SECONDS)
        sms.append(sm)
    env.run(until=4.0)  # initial async grows settle

    samples: List[float] = []

    def sampler(env):
        while True:
            yield env.timeout(SAMPLE_PERIOD)
            for sm in sms:
                samples.append(min(1.0, len(sm.hosts)
                                   / float(COMPONENTS_PER_SM)))

    env.process(sampler(env), name="availability-sampler")

    injector = FaultInjector(cloud, POOL, service_managers=sms, seed=5)
    events = soak_campaign(soak_seconds)
    for event in events:
        event.at += env.now
    injector.run_campaign(events)
    env.run(until=env.now + soak_seconds + drain_seconds)

    summary = injector.summary()
    crash_recoveries = [
        r.recovered_at - (r.injected_at + r.event.duration)
        for r in injector.records
        if r.event.kind is FaultKind.RM_CRASH
        and r.recovered_at is not None and "elided" not in r.note]
    report = audit_journal(rm.journal, tail_grace=drain_seconds,
                           end_time=env.now)
    availability = sum(samples) / len(samples) if samples else 0.0
    return {
        "soak_availability": round(availability, 5),
        "soak_faults_injected": summary["injected"],
        "soak_faults_recovered": summary["recovered"],
        "rm_crashes": len(crash_recoveries),
        "rm_recovery_max_s": round(max(crash_recoveries), 4)
        if crash_recoveries else 0.0,
        "rm_recovery_budget_s": SWEEP_SECONDS * RM_RECOVERY_MAX_SWEEPS,
        "soak_audit_violations": len(report.violations),
        "soak_double_allocations": report.double_allocations,
        "soak_stale_admits": report.stale_admits,
        "soak_fence_rejections": report.fence_rejections,
        "soak_epochs_seen": report.epochs_seen,
        "soak_journal_records": len(rm.journal),
        "soak_grants": report.grants,
        "soak_revocations": report.revocations,
        "soak_expirations": report.expirations,
    }


# ----------------------------------------------------------------------
# Experiment 2: exactly-once under loss + duplication
# ----------------------------------------------------------------------
def run_exactly_once(quick: bool) -> Dict[str, float]:
    hosts = list(range(0, 12))
    cloud = control_cloud(seed=23, hosts=hosts, lease=30.0)
    env = cloud.env
    rm = cloud.resource_manager
    # A brutal seam: a quarter of all legs lost, a third duplicated.
    sm = ServiceManager(env, "flaky-svc", rm, IMAGE,
                        constraints=Constraints(count=1),
                        retry_backoff=0.25, retry_backoff_max=2.0,
                        rpc_config=RpcConfig(
                            loss_probability=0.25,
                            duplicate_probability=0.35,
                            delay=1e-3, delay_jitter=2e-3,
                            call_timeout=0.2, max_retries=10),
                        rpc_seed=7)
    target = 8
    sm.grow(target)
    # Renews ride the same brutal seam: without the heartbeat the 30 s
    # leases would expire mid-drill and the final tally would measure
    # replacement races, not idempotency.
    sm.start_heartbeat(5.0)
    env.run(until=15.0)
    # Churn: give half back, then re-grow — releases must dedup too.
    sm.shrink(4)
    env.run(until=20.0)
    sm.grow(4)
    rounds = 2 if quick else 4
    for i in range(rounds):
        env.run(until=env.now + 10.0)
        sm.shrink(2)
        sm.grow(2)
    env.run(until=env.now + 15.0)

    report = audit_journal(rm.journal, require_replacement=False)
    rpc = sm.channel.stats
    active_hosts = len(sm.hosts)
    return {
        "eo_active_components": active_hosts,
        "eo_target_components": target,
        "eo_rm_allocated": rm.allocated_count,
        "eo_acquire_dedup_hits": rm.stats.deduped_acquires,
        "eo_release_dedup_hits": rm.stats.deduped_releases,
        "eo_rpc_retries": rpc.retries,
        "eo_rpc_duplicates": rpc.requests_duplicated,
        "eo_rpc_lost_legs": rpc.requests_lost + rpc.responses_lost,
        "eo_audit_violations": len(report.violations),
        "eo_dedup_violations": report.dedup_violations,
        "eo_double_allocations": report.double_allocations,
    }


# ----------------------------------------------------------------------
# Experiment 3: the split-brain drill
# ----------------------------------------------------------------------
def run_split_brain() -> Dict[str, float]:
    hosts = [0, 1, 2, 3, 4]
    cloud = control_cloud(seed=31, hosts=hosts, lease=4.0, sweep=0.5,
                          quarantine=1.0)
    env = cloud.env
    rm = cloud.resource_manager
    # Simulated (non-inline) channels even though nothing is lost: the
    # SMs must hold *copies* of their grants, as real processes would —
    # an inline channel shares the RM's own Lease objects, so the RM's
    # expiry would leak into A's local view and there would be no stale
    # side left to fence off.
    drill_rpc = RpcConfig(delay=2e-4)
    sm_a = ServiceManager(env, "stranded", rm, IMAGE,
                          constraints=Constraints(count=1),
                          retry_backoff=0.25, retry_backoff_max=2.0,
                          rpc_config=drill_rpc, rpc_seed=41)
    sm_b = ServiceManager(env, "healthy", rm, IMAGE,
                          constraints=Constraints(count=1),
                          retry_backoff=0.25, retry_backoff_max=2.0,
                          rpc_config=drill_rpc, rpc_seed=42)
    sm_a.grow(1)
    sm_b.grow(1)
    sm_a.start_heartbeat(1.0)
    sm_b.start_heartbeat(1.0)
    env.run(until=2.0)

    stale = sm_a.leases[0]
    stranded_host = stale.hosts[0]
    stale_fence = stale.fence
    # Strand A: no renews out, no revocation pushes in, for 12 s —
    # three lease lifetimes.
    sm_a.channel.partition_for(12.0)
    env.run(until=10.0)
    # By now A's lease expired at the RM (last renew ~2 s + 4 s lease,
    # swept by ~6.5 s) and its hosts carry a fence barrier.  B expands
    # into the freed capacity — possibly onto A's old host.
    sm_b.grow(3)
    env.run(until=11.0)
    reallocated = rm.is_allocated(stranded_host)

    # The stale side acts: in-flight configure and traffic carrying the
    # superseded fence arrive at the FpgaManager.
    manager = rm.manager(stranded_host)
    rejections_before = manager.fence_rejections
    env.process(manager.configure(IMAGE, fence=stale_fence),
                name="stale-configure")
    admitted = manager.admit_traffic(stale_fence)
    env.run(until=12.0)
    configure_rejected = manager.fence_rejections > rejections_before

    # Heal; A's next heartbeat renew gets KeyError -> replacement.
    env.run(until=20.0)
    report = audit_journal(rm.journal, require_replacement=False)
    return {
        "sb_host_reallocated": int(reallocated),
        "sb_stale_configure_rejected": int(configure_rejected),
        "sb_stale_traffic_admitted": int(admitted),
        "sb_fence_rejections": manager.fence_rejections,
        "sb_stranded_recovered_components": len(sm_a.hosts),
        "sb_audit_violations": len(report.violations),
        "sb_stale_admits": report.stale_admits,
    }


# ----------------------------------------------------------------------
# Suite / gates
# ----------------------------------------------------------------------
def run_suite(quick: bool) -> Dict[str, object]:
    soak = run_soak(quick)
    exactly_once = run_exactly_once(quick)
    split_brain = run_split_brain()
    return {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "gates": {
            "availability_min": AVAILABILITY_MIN,
            "rm_recovery_max_sweeps": RM_RECOVERY_MAX_SWEEPS,
            "audit_violations_max": 0,
            "stale_admits_max": 0,
        },
        "metrics": {**soak, **exactly_once, **split_brain},
    }


def check_gates(metrics: Dict[str, float]) -> List[str]:
    """Return a list of human-readable gate violations (empty = pass)."""
    failures = []
    if metrics["soak_availability"] < AVAILABILITY_MIN:
        failures.append(
            f"soak availability {metrics['soak_availability']:.4f} "
            f"(gate: >= {AVAILABILITY_MIN})")
    if metrics["rm_crashes"] < 1:
        failures.append("no RM crash was injected — the recovery gate "
                        "is vacuous")
    if metrics["rm_recovery_max_s"] > metrics["rm_recovery_budget_s"]:
        failures.append(
            f"RM recovery took {metrics['rm_recovery_max_s']:.3f}s "
            f"(gate: <= {metrics['rm_recovery_budget_s']:.1f}s, one "
            "sweep period)")
    for key in ("soak_audit_violations", "eo_audit_violations",
                "sb_audit_violations"):
        if metrics[key] != 0:
            failures.append(f"{key} = {metrics[key]} (gate: 0)")
    for key in ("soak_stale_admits", "sb_stale_admits"):
        if metrics[key] != 0:
            failures.append(f"{key} = {metrics[key]} — a stale fence "
                            "was ADMITTED (split-brain!)")
    if metrics["eo_acquire_dedup_hits"] < 1:
        failures.append("no acquire dedup hits under 25% loss / 35% "
                        "duplication — the idempotency path never ran")
    if metrics["eo_active_components"] != metrics["eo_target_components"]:
        failures.append(
            f"exactly-once drill ended with "
            f"{metrics['eo_active_components']} components "
            f"(target {metrics['eo_target_components']})")
    if metrics["eo_rm_allocated"] != metrics["eo_active_components"]:
        failures.append(
            f"RM/SM allocation views diverged: RM holds "
            f"{metrics['eo_rm_allocated']} hosts, SM serves "
            f"{metrics['eo_active_components']}")
    if not metrics["sb_stale_configure_rejected"]:
        failures.append("stale-fence configure was not rejected")
    if metrics["sb_stale_traffic_admitted"]:
        failures.append("stale-fence traffic was admitted")
    if metrics["sb_stranded_recovered_components"] < 1:
        failures.append("stranded SM never recovered capacity after "
                        "the partition healed")
    return failures


# ----------------------------------------------------------------------
# Trajectory file
# ----------------------------------------------------------------------
def write_result(result: Dict[str, object], path: Path) -> None:
    """Write ``result`` to ``path``, carrying forward the run history."""
    history: List[Dict[str, object]] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = None
        if isinstance(previous, dict) and "metrics" in previous:
            history = list(previous.get("history", []))
            history.append({k: previous[k] for k in
                            ("quick", "python", "timestamp", "metrics")
                            if k in previous})
    result = dict(result)
    result["history"] = history[-HISTORY_LIMIT:]
    path.write_text(json.dumps(result, indent=1) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter soak (CI smoke)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_control.json",
                        help="result/trajectory file to write")
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick)
    for name, value in sorted(result["metrics"].items()):
        print(f"{name:>36}: {value}")
    failures = check_gates(result["metrics"])
    write_result(result, args.output)
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1
    print("all control-plane gates passed")
    return 0


# ----------------------------------------------------------------------
# pytest gates (the acceptance criteria, asserted)
# ----------------------------------------------------------------------
def test_control_plane_gates():
    result = run_suite(quick=True)
    metrics = result["metrics"]
    assert check_gates(metrics) == []
    # The campaign genuinely mixed the new kinds with the §II-B core.
    assert metrics["rm_crashes"] >= 1
    assert metrics["soak_epochs_seen"] >= 2   # at least one restart
    assert metrics["soak_fence_rejections"] >= 0
    assert metrics["eo_rpc_retries"] > 0
    assert metrics["eo_rpc_duplicates"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
