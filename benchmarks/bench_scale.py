"""Sharded-simulation scale benchmark — the ISSUE 10 acceptance gates.

Runs a Fig. 10-style idle-RTT sweep over the paper's full-size fabric
(253,440 reachable hosts — "more than a quarter million") through the
multi-process shard driver (``repro.sim.shard``), and the identical
workload single-process as the reference.  Gates:

* **agreement** — merged P50/P99 per tier from the sharded run must
  match the single-process reference within the documented tolerance
  (5% / 10%; the seam model draws jitter from different streams, so
  agreement is statistical, not bitwise),
* **determinism** — per-shard digests must be bit-identical across two
  runs of the same spec (quick mode; full mode reuses the quick gate in
  CI),
* **calibration** — the merged L2 tier must stay inside the paper's
  envelope ("L2 latency never exceeded 23.5 us in any of our
  experiments"),
* **scale** — the swept fabric must reach 100k+ hosts and the sharded
  run must finish in minutes.

Run standalone to append a run to the committed trajectory file::

    PYTHONPATH=src python benchmarks/bench_scale.py          # full
    PYTHONPATH=src python benchmarks/bench_scale.py --quick  # CI smoke

``BENCH_scale.json`` keeps a bounded ``history`` of prior runs so the
trajectory across PRs stays in the repo, not in CI logs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.net.topology import TopologyConfig  # noqa: E402
from repro.sim.shard import (  # noqa: E402
    PingTask,
    ShardDriver,
    run_reference,
)

HISTORY_LIMIT = 50

#: Documented merge tolerance vs the single-process reference.
P50_TOLERANCE = 0.05
P99_TOLERANCE = 0.10
#: Paper: "L2 latency never exceeded 23.5 us in any of our experiments."
L2_MAX_SECONDS = 23.5e-6
#: The sweep must cover the paper's >100k-host scale.
MIN_REACHABLE_HOSTS = 100_000

SEED = 17
MESSAGE_GAP = 100e-6


def build_workload(l0_pairs: int, l1_pairs: int, l2_pairs: int,
                   messages: int,
                   config: TopologyConfig) -> List[PingTask]:
    """A deterministic Fig. 10-style pair sample across all tiers.

    L0 pairs share rack (0, 0); L1 pairs are cross-rack within a pod
    (pods 1..); L2 pairs stride across the full pod range so the sweep
    touches hosts from index 0 to the top of the 253k-host fabric.
    """
    per_pod = config.hosts_per_pod
    per_tor = config.hosts_per_tor
    tasks: List[PingTask] = []
    for i in range(l0_pairs):
        tasks.append(PingTask(src=2 * i, dst=2 * i + 1,
                              messages=messages, gap=MESSAGE_GAP))
    pairs_per_pod = config.tors_per_pod // 2
    for i in range(l1_pairs):
        pod = 1 + i // pairs_per_pod
        rack = 2 * (i % pairs_per_pod)
        tasks.append(PingTask(
            src=pod * per_pod + rack * per_tor,
            dst=pod * per_pod + (rack + 1) * per_tor + 1,
            messages=messages, gap=MESSAGE_GAP))
    for i in range(l2_pairs):
        # Within-rack offsets 8/9 keep L2 endpoints clear of the L0/L1
        # hosts above; (pod, rack) combos repeat only after
        # lcm(pods/2, tors_per_pod) pairs, far beyond the sweep size.
        src_pod = (2 * i) % config.pods
        dst_pod = (2 * i + 1) % config.pods
        src = src_pod * per_pod + (i % config.tors_per_pod) * per_tor + 8
        dst = dst_pod * per_pod + \
            ((i + 13) % config.tors_per_pod) * per_tor + 9
        tasks.append(PingTask(src=src, dst=dst,
                              messages=messages, gap=MESSAGE_GAP))
    sources = [t.src for t in tasks]
    assert len(sources) == len(set(sources)), "source hosts must be unique"
    return tasks


def run_suite(quick: bool = False) -> Dict[str, object]:
    config = TopologyConfig()
    if quick:
        workload = build_workload(2, 4, 6, messages=30, config=config)
        num_shards = 4
    else:
        workload = build_workload(4, 48, 460, messages=40, config=config)
        num_shards = 8

    driver = ShardDriver(seed=SEED, num_shards=num_shards)
    t0 = time.time()
    sharded = driver.run(workload)
    sharded_wall = time.time() - t0

    t0 = time.time()
    reference = run_reference(workload, seed=SEED)
    reference_wall = time.time() - t0

    digests = [s["digest"] for s in sharded.per_shard]
    if quick:
        # Determinism gate: a second run of the same spec must produce
        # bit-identical per-shard digests.
        repeat = ShardDriver(seed=SEED, num_shards=num_shards).run(workload)
        digests_stable = [s["digest"] for s in repeat.per_shard] == digests
    else:
        digests_stable = True  # gated in quick/CI mode

    metrics: Dict[str, object] = {
        "hosts_reachable": config.total_hosts,
        "hosts_active": len({t.src for t in workload}
                            | {t.dst for t in workload}),
        "pairs": len(workload),
        "shards": sharded.plan.num_shards,
        "lookahead_us": round(sharded.lookahead * 1e6, 4),
        "windows": sharded.windows,
        "boundary_records": sharded.boundary_records,
        "events_processed": sharded.events_processed,
        "rtt_samples": sharded.total_samples,
        "sharded_wall_s": round(sharded_wall, 3),
        "reference_wall_s": round(reference_wall, 3),
        "digests_stable": bool(digests_stable),
        "per_shard_digests": digests,
        "cpu_count": os.cpu_count(),
    }
    for tier in sorted(reference):
        ref, got = reference[tier], sharded.tiers.get(tier)
        metrics[f"{tier}_count"] = ref.count
        metrics[f"{tier}_ref_p50_us"] = round(ref.p50 * 1e6, 4)
        metrics[f"{tier}_ref_p99_us"] = round(ref.p99 * 1e6, 4)
        if got is not None and got.count:
            metrics[f"{tier}_p50_us"] = round(got.p50 * 1e6, 4)
            metrics[f"{tier}_p99_us"] = round(got.p99 * 1e6, 4)
            metrics[f"{tier}_max_us"] = round(got.max * 1e6, 4)
            metrics[f"{tier}_p50_err"] = round(
                abs(got.p50 - ref.p50) / ref.p50, 5)
            metrics[f"{tier}_p99_err"] = round(
                abs(got.p99 - ref.p99) / ref.p99, 5)
    return {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "gates": {
            "p50_tolerance": P50_TOLERANCE,
            "p99_tolerance": P99_TOLERANCE,
            "l2_max_us": L2_MAX_SECONDS * 1e6,
            "min_reachable_hosts": MIN_REACHABLE_HOSTS,
        },
        "metrics": metrics,
    }


def check_gates(metrics: Dict[str, object]) -> List[str]:
    failures: List[str] = []
    if metrics["hosts_reachable"] < MIN_REACHABLE_HOSTS:
        failures.append(
            f"fabric spans {metrics['hosts_reachable']} hosts "
            f"(gate: >= {MIN_REACHABLE_HOSTS})")
    for tier in ("L0", "L1", "L2"):
        if f"{tier}_p50_us" not in metrics:
            failures.append(f"tier {tier} produced no merged samples")
            continue
        if metrics[f"{tier}_p50_err"] > P50_TOLERANCE:
            failures.append(
                f"{tier} merged p50 off by "
                f"{metrics[f'{tier}_p50_err']:.1%} "
                f"(gate: <= {P50_TOLERANCE:.0%})")
        if metrics[f"{tier}_p99_err"] > P99_TOLERANCE:
            failures.append(
                f"{tier} merged p99 off by "
                f"{metrics[f'{tier}_p99_err']:.1%} "
                f"(gate: <= {P99_TOLERANCE:.0%})")
    if "L2_max_us" in metrics and \
            metrics["L2_max_us"] > L2_MAX_SECONDS * 1e6:
        failures.append(
            f"L2 max {metrics['L2_max_us']:.2f} us exceeds the paper's "
            f"{L2_MAX_SECONDS * 1e6:.1f} us envelope")
    if not metrics["digests_stable"]:
        failures.append("per-shard digests changed between identical "
                        "runs — shard determinism is broken")
    return failures


# ----------------------------------------------------------------------
# Trajectory file
# ----------------------------------------------------------------------
def write_result(result: Dict[str, object], path: Path) -> None:
    """Write ``result`` to ``path``, carrying forward the run history."""
    history: List[Dict[str, object]] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = None
        if isinstance(previous, dict) and "metrics" in previous:
            history = list(previous.get("history", []))
            history.append({k: previous[k] for k in
                            ("quick", "python", "timestamp", "metrics")
                            if k in previous})
    result = dict(result)
    result["history"] = history[-HISTORY_LIMIT:]
    path.write_text(json.dumps(result, indent=1) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep, 4 shards (CI smoke)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_scale.json",
                        help="result/trajectory file to write")
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick)
    for name, value in sorted(result["metrics"].items()):
        if name == "per_shard_digests":
            continue
        print(f"{name:>24}: {value}")
    failures = check_gates(result["metrics"])
    write_result(result, args.output)
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1
    print("all scale gates passed")
    return 0


# ----------------------------------------------------------------------
# pytest gates (the acceptance criteria, asserted)
# ----------------------------------------------------------------------
def test_scale_gates():
    result = run_suite(quick=True)
    metrics = result["metrics"]
    assert check_gates(metrics) == []
    assert metrics["shards"] == 4
    assert metrics["boundary_records"] > 0
    assert metrics["windows"] > 1


if __name__ == "__main__":
    sys.exit(main())
