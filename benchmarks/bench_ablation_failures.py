"""A3 — ablation: failure handling, torus rerouting vs LTL pool (§V-C).

"Failure handling in the torus can be quite challenging and impact
latency as packets need to be dynamically rerouted around a faulty FPGA
at the cost of extra network hops and latency.  LTL on the other hand
shares the existing datacenter networking infrastructure ... Failure
handling also becomes much simpler in this case as there is an abundance
of spare accessible nodes/FPGAs."

The experiment: progressively fail nodes.  In the torus, mean latency
between survivors climbs and some nodes become unreachable; in the
Configurable Cloud, the HaaS pool replaces failed FPGAs and latency is
unchanged (the replacement is just another node on the same Ethernet).
"""

import random
import statistics

from repro.core import ConfigurableCloud
from repro.fpga import Image
from repro.haas import Constraints, ServiceManager
from repro.net import TopologyConfig, idle
from repro.torus import TorusLatencyModel, TorusTopology

from conftest import fmt, print_table

FAILURE_COUNTS = (0, 2, 4, 8)


def torus_under_failures():
    rng = random.Random(5)
    rows = []
    for failures in FAILURE_COUNTS:
        torus = TorusTopology()
        victims = rng.sample(range(48), failures)
        for node in victims:
            torus.fail_node(node)
        model = TorusLatencyModel(torus)
        rtts = model.all_pair_round_trips()
        survivors = [n for n in range(48) if n not in victims]
        reachable = statistics.mean(
            model.reachable_count(n) for n in survivors)
        rows.append({
            "failures": failures,
            "mean_rtt_us": 1e6 * statistics.mean(rtts),
            "max_rtt_us": 1e6 * max(rtts),
            "mean_reachable": reachable,
        })
    return rows


def cloud_under_failures():
    cloud = ConfigurableCloud(
        topology=TopologyConfig(background=idle()), seed=44)
    client = cloud.add_server(100, enroll=False)
    pool = list(range(12))
    cloud.add_servers(pool)
    sm = ServiceManager(cloud.env, "svc", cloud.resource_manager,
                        Image("svc-v1", "role"), Constraints(count=1))
    sm.grow(4)
    cloud.run(until=2.0)

    rows = []
    rng = random.Random(6)
    failed = 0
    for failures in FAILURE_COUNTS:
        while failed < failures:
            victim = rng.choice(sm.hosts)
            cloud.resource_manager.manager(victim).mark_failed()
            failed += 1
        cloud.run(until=cloud.env.now + 1.0)
        # Measure RTT to each serving FPGA from the client.
        rtts = []
        for host in sm.hosts:
            rtts.extend(cloud.measure_ltl_rtt(100, host, messages=10))
        rows.append({
            "failures": failures,
            "mean_rtt_us": 1e6 * statistics.mean(rtts),
            "serving": len(sm.hosts),
            "replacements": sm.stats.replacements,
        })
    return rows


def test_ablation_failure_handling(benchmark):
    torus_rows, cloud_rows = benchmark.pedantic(
        lambda: (torus_under_failures(), cloud_under_failures()),
        rounds=1, iterations=1)
    print_table(
        "A3a — torus under node failures",
        ("failures", "mean RTT us", "max RTT us", "mean reachable"),
        [(r["failures"], fmt(r["mean_rtt_us"]), fmt(r["max_rtt_us"]),
          fmt(r["mean_reachable"], 1)) for r in torus_rows])
    print_table(
        "A3b — Configurable Cloud + HaaS under node failures",
        ("failures", "mean RTT us", "serving FPGAs", "replacements"),
        [(r["failures"], fmt(r["mean_rtt_us"]), r["serving"],
          r["replacements"]) for r in cloud_rows])

    # Torus: latency grows and reachability shrinks with failures.
    assert torus_rows[-1]["mean_rtt_us"] > torus_rows[0]["mean_rtt_us"]
    assert torus_rows[-1]["mean_reachable"] < \
        torus_rows[0]["mean_reachable"]
    # Cloud: service keeps 4 FPGAs serving throughout, replacements
    # happened, and latency stays flat (within same-pod variation).
    assert all(r["serving"] == 4 for r in cloud_rows)
    assert cloud_rows[-1]["replacements"] == FAILURE_COUNTS[-1]
    spread = max(r["mean_rtt_us"] for r in cloud_rows) / \
        min(r["mean_rtt_us"] for r in cloud_rows)
    assert spread < 1.5
