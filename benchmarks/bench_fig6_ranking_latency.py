"""E2 — Fig. 6: 99th-percentile latency vs throughput, single server.

Software vs local FPGA, axes normalized exactly as the paper does:
software typical throughput = 1.0, the production latency target = 1.0
(software meets the target at throughput 1.0).  The headline to
reproduce: "with the single local FPGA, at the target 99th percentile
latency, the throughput can be safely increased by 2.25x."

Canonical implementation: :mod:`repro.experiments.fig06`.
"""

from repro.experiments import fig06

from conftest import fmt, print_table


def test_fig6_latency_vs_throughput(benchmark):
    result = benchmark.pedantic(fig06.run, rounds=1, iterations=1)
    rows = []
    for name, points in result.curves.items():
        for load, p99 in points:
            rows.append((name, fmt(load), fmt(p99)))
    print_table("Fig. 6 — 99% latency vs throughput (normalized)",
                ("mode", "throughput", "p99 latency"), rows)

    software_max = result.max_load_under_target("software")
    fpga_max = result.max_load_under_target("fpga")
    gain = result.throughput_gain
    print(f"\nthroughput at latency target: software {software_max:.2f}x,"
          f" FPGA {fpga_max:.2f}x -> gain {gain:.2f}x "
          f"(paper: 2.25x)")

    # Shape assertions: software meets the target at 1.0 but not much
    # beyond; the FPGA sustains >= 2x at the same target.
    assert software_max >= 1.0
    assert software_max < 1.6
    assert fpga_max >= 2.0
    assert 1.8 <= gain <= 2.8
