"""A5 — ablation: FPGA consolidation (multiple servers per FPGA, §III-A).

"Even at these higher loads, the FPGA remains underutilized, as the
software portion of ranking saturates the host server before the FPGA
is saturated.  Having multiple servers drive fewer FPGAs addresses the
underutilization of the FPGAs, which is the goal of our remote
acceleration model."

The experiment: N ranking servers offload feature extraction to a
shared pool of M remote FFU FPGAs.  Utilization climbs with N/M while
query latency stays flat, until the pool itself saturates — so a large
fraction of FPGAs can be freed for other hardware services.
"""

from repro.ranking import consolidation_sweep

from conftest import fmt, print_table

RATIOS = (1, 2, 3, 4)


def run_sweep():
    return consolidation_sweep(list(RATIOS), num_fpgas=2,
                               queries_per_server=350)


def test_ablation_consolidation(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "A5 — servers per FPGA: utilization vs query latency",
        ("servers/FPGA", "FPGA util", "mean ms", "p99 ms"),
        [(r.servers_per_fpga, fmt(r.fpga_utilization),
          fmt(r.latency.mean * 1e3), fmt(r.latency.p99 * 1e3))
         for r in sweep])
    one, two, three, four = sweep
    freed = 1 - 1 / two.servers_per_fpga
    print(f"\nat 2 servers/FPGA, latency is still flat and "
          f"{100 * freed:.0f}% of FPGAs are freed for other services")

    # 1:1 leaves the FPGA mostly idle (the §III-A observation).
    assert one.fpga_utilization < 0.6
    # Consolidating 2:1 nearly doubles utilization at flat latency.
    assert two.fpga_utilization > 1.5 * one.fpga_utilization
    assert two.latency.p99 < 2.5 * one.latency.p99
    # The pool saturates somewhere past 2:1: latency blows up.
    assert four.fpga_utilization > 0.9
    assert four.latency.p99 > 3 * two.latency.p99
