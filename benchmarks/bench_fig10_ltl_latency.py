"""E6 — Fig. 10: LTL round-trip latency vs number of reachable hosts.

Measures idle LTL RTT across many sender-receiver pairs at each network
tier, "from the moment the header of a packet is generated in LTL until
the corresponding ACK for that packet is received in LTL", plus the
Catapult v1 6x8 torus baseline.

Paper numbers:
  L0 (24 hosts)      avg 2.88 us, 99.9th 2.9 us
  L1 (960 hosts)     avg 7.72 us, 99.9th 8.24 us
  L2 (250k+ hosts)   avg 18.71 us, 99.9th 22.38 us, max < 23.5 us
  torus (48 FPGAs)   ~1 us nearest-neighbor RTT, 7 us worst case

Canonical implementation: :mod:`repro.experiments.fig10`.
"""

import pytest

from repro.experiments import fig10

from conftest import fmt, print_table


def test_fig10_ltl_round_trip(benchmark):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    print_table("Fig. 10 — LTL round-trip latency (us)",
                ("tier", "reachable", "avg", "p99.9", "max"),
                [(tier, reach, fmt(avg), fmt(p999), fmt(mx))
                 for tier, reach, avg, p999, mx in result.rows()])
    print("\npaper: L0 2.88/2.90, L1 7.72/8.24, L2 18.71/22.38 "
          "(avg/p99.9 us); torus 1 us 1-hop, 7 us worst-case")

    tiers = result.tiers
    # Absolute calibration (idle latencies are the paper's headline).
    assert tiers["L0"].avg == pytest.approx(2.88e-6, rel=0.03)
    assert tiers["L0"].p999 == pytest.approx(2.9e-6, rel=0.05)
    assert tiers["L1"].avg == pytest.approx(7.72e-6, rel=0.05)
    assert tiers["L1"].p999 == pytest.approx(8.24e-6, rel=0.12)
    assert tiers["L2"].avg == pytest.approx(18.71e-6, rel=0.12)
    # "L2 latency never exceeded 23.5 us in any of our experiments."
    assert tiers["L2"].max < 23.5e-6
    # Tier ordering and torus comparison: comparable at rack scale,
    # but the torus reaches only 48 FPGAs.
    assert tiers["L0"].avg < tiers["L1"].avg < tiers["L2"].avg
    assert min(result.torus.samples) == pytest.approx(1e-6, rel=0.15)
    assert result.torus.max == pytest.approx(7e-6, rel=0.15)
