"""Chaos soak — the §II-B failure mix against a live hardware service.

A pool of FPGAs spread over three TORs serves a hardware service while a
seeded :class:`~repro.faults.FaultInjector` campaign runs the paper's
full failure taxonomy against it at §II-B rates scaled from
machine-months down to a seconds-long soak: silent FPGA deaths, link
flaps, frame corruption and loss at the TOR, gray (slow) nodes, SEU role
hangs, a whole-TOR outage and a control-plane stall long enough to
expire leases.

What must hold (the robustness acceptance bar):

* the client keeps completing requests — availability >= 99%,
* every injected fault is detected AND recovered by the system's own
  machinery (LTL checksums/retransmit/reconnect, FM health monitor,
  RM quarantine + expiry, SM replacement retry),
* no LTL connection is left permanently failed,
* no component stays unreplaced while the pool has spares,
* ranking queries keep completing in software while their FPGA is lost.
"""

import random

from repro import ConfigurableCloud, LtlConfig, ShellConfig
from repro.core.service import HardwareService
from repro.faults import (CampaignConfig, FaultEvent, FaultInjector,
                          FaultKind, generate_campaign)
from repro.fpga.reconfig import Image
from repro.haas.fpga_manager import FpgaHealth
from repro.haas.resource_manager import ResourceManager
from repro.ranking import AccelerationMode, RankingServer, \
    RankingServiceConfig

from conftest import fmt, print_table

# Control-plane-scale LTL: a seconds-long soak cannot afford the 10 us
# production timer wheel (10^8 sim events); ms-scale timers keep LTL
# detection far faster than the 2 s FM monitor while staying tractable.
SOAK_LTL = dict(timer_period=1e-3, retransmit_timeout=5e-3,
                reconnect_backoff=10e-3, reconnect_backoff_max=100e-3,
                degraded_timeouts=2)

#: Pool spread across three TORs (24 hosts/TOR in the default topology)
#: so a whole-TOR outage cannot take the entire service down.
POOL = list(range(0, 6)) + list(range(24, 30)) + list(range(48, 54))
CLIENT_HOST = 72                      # a fourth TOR; never in the blast
COMPONENTS = 4

SETTLE_SECONDS = 16.0                 # initial configure of the pool
SOAK_SECONDS = 60.0
DRAIN_SECONDS = 45.0                  # power cycles (10 s) + retries
REQUEST_PERIOD = 0.01                 # client offered load, 100 req/s

#: Scales §II-B per-machine-day rates (5,760 servers x 30 days) up to a
#: one-minute soak on 18 hosts: ~3 hard deaths, ~1-2 of each transient
#: kind, a couple of role hangs.
PAPER_SCALE = 2.0e7

CAMPAIGN_SHAPES = dict(
    flap_duration=1.5,
    corrupt_duration=1.0, corrupt_probability=0.3,
    drop_duration=1.0, drop_probability=0.3,
    gray_duration=1.5, gray_delay=50e-3,
    # > the 2 s FM monitor period: even a free (no-LTL-traffic) host's
    # detachment is guaranteed to land inside a scan.
    tor_outage_duration=3.0,
    control_stall_duration=20.0,      # > lease: forces real expiry
)


def build_cloud():
    cloud = ConfigurableCloud(seed=11)
    cloud._rm = ResourceManager(cloud.env, cloud.fabric.topology,
                                lease_duration=15.0, sweep_period=1.0,
                                quarantine_seconds=3.0)
    shell_config = ShellConfig(ltl=LtlConfig(**SOAK_LTL))
    for host in POOL:
        cloud.add_server(host, shell_config=shell_config)
    client = cloud.add_server(
        CLIENT_HOST, enroll=False,
        shell_config=ShellConfig(ltl=LtlConfig(**SOAK_LTL)))
    service = HardwareService(cloud, "soak-svc",
                              Image(name="soak", role_name="soak-role"),
                              components=COMPONENTS)
    return cloud, service, client


#: Kinds whose effect only manifests on a host that carries traffic.
TRAFFIC_KINDS = (FaultKind.FRAME_CORRUPT, FaultKind.FRAME_DROP,
                 FaultKind.GRAY_NODE)

#: The §II-B mix this soak has always run (pinned): the control-plane
#: resilience kinds added later (RM_CRASH, NETWORK_PARTITION) have their
#: own dedicated soak in bench_control_plane_soak.py, and excluding them
#: here keeps this benchmark's seeded campaign — and its availability
#: gate — byte-identical across taxonomy growth.
SOAK_KINDS = (FaultKind.FPGA_DEATH, FaultKind.LINK_FLAP,
              FaultKind.FRAME_CORRUPT, FaultKind.FRAME_DROP,
              FaultKind.GRAY_NODE, FaultKind.ROLE_HANG,
              FaultKind.TOR_OUTAGE, FaultKind.CONTROL_STALL,
              FaultKind.LOAD_SPIKE, FaultKind.SLOW_PEER)


def full_mix_campaign(start: float, busy_hosts):
    """Seeded §II-B-rate campaign, then guarantee >= 1 of every kind.

    Rack- and control-plane-scale events are ~10x rarer than per-host
    ones, so a short draw can miss them; the soak must still exercise
    every defense, so missing kinds get one scripted event each.  The
    traffic-scoped kinds additionally get one scripted event aimed at a
    live service member — a random draw may land them on idle hosts
    where nothing crosses the tap.
    """
    config = CampaignConfig.scaled_from_paper(PAPER_SCALE,
                                              **CAMPAIGN_SHAPES)
    config.rates = {kind: rate for kind, rate in config.rates.items()
                    if kind in SOAK_KINDS}
    events = generate_campaign(POOL, SOAK_SECONDS - 10.0, config, seed=3)
    rng = random.Random(99)
    present = {e.kind for e in events}
    # Traffic-scoped events go first, while every service member is
    # still guaranteed live, and each on a *distinct* member: a masked
    # fault still raises gray reports, and a failover triggered by one
    # event would drain the traffic the next tap on that host needs.
    at = 5.0
    victims = rng.sample(sorted(busy_hosts),
                         k=min(len(TRAFFIC_KINDS), len(busy_hosts)))
    for kind, victim in zip(TRAFFIC_KINDS, victims):
        events.append(FaultEvent(at=at, kind=kind, target=victim,
                                 **config.event_shape(kind)))
        at += 2.0
    for kind in SOAK_KINDS:
        if kind not in present:
            shape = config.event_shape(kind)
            target = -1 if kind is FaultKind.CONTROL_STALL \
                else rng.choice(POOL)
            events.append(FaultEvent(at=at, kind=kind, target=target,
                                     **shape))
            at += 4.0
    events.sort(key=lambda e: (e.at, e.kind.value, e.target))
    for e in events:
        e.at += start
    return events


def run_soak():
    cloud, service, client = build_cloud()
    env = cloud.env
    env.run(until=SETTLE_SECONDS)

    delivered = []
    service.set_handler(lambda payload, src: delivered.append(payload))
    service.attach_client(client)
    env.run(until=env.now + 0.5)

    injector = FaultInjector(cloud, hosts=POOL,
                             service_managers=[service.sm], seed=5)
    injector.run_campaign(
        full_mix_campaign(env.now + 2.0, list(service.hosts)))

    attempts = [0]

    def driver(env):
        t_end = env.now + SOAK_SECONDS
        while env.now < t_end:
            attempts[0] += 1
            try:
                service.request(client, b"rank-me", 256)
            except RuntimeError:
                # Pool momentarily empty or the connection just failed:
                # the attempt still counts against availability.
                pass
            yield env.timeout(REQUEST_PERIOD)

    env.process(driver(env), name="soak-driver")
    env.run(until=env.now + SOAK_SECONDS + DRAIN_SECONDS)
    return cloud, service, injector, attempts[0], len(delivered)


def run_ranking_fallback():
    """Ranking keeps answering in software while its FPGA is lost."""
    cloud = ConfigurableCloud(seed=23)
    cloud.add_server(0, shell_config=ShellConfig(
        ltl=LtlConfig(**SOAK_LTL)))
    env = cloud.env
    manager = cloud.resource_manager.manager(0)
    server = RankingServer(
        env, RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA))
    server.bind_fpga_health(manager)

    issued = [0]

    def load(env):
        for _ in range(400):
            issued[0] += 1
            env.process(server.handle_query())
            yield env.timeout(2e-3)

    def outage(env):
        yield env.timeout(0.2)
        manager.mark_failed("chaos: board lost", hard=False)
        # hard=False + cause cleared -> the FM monitor rehabilitates it.

    env.process(load(env), name="ranking-load")
    env.process(outage(env), name="ranking-outage")
    env.run(until=30.0)
    return server, manager, issued[0]


def test_chaos_soak(benchmark):
    cloud, service, injector, attempts, delivered = benchmark.pedantic(
        run_soak, rounds=1, iterations=1)
    summary = injector.summary()
    availability = delivered / attempts

    print_table(
        "chaos soak — §II-B failure mix vs one hardware service",
        ("kind", "injected"),
        sorted(summary["by_kind"].items()))
    det = summary["detection_latency"]
    rec = summary["recovery_latency"]
    print_table(
        "detection / recovery",
        ("", "count", "mean s", "max s"),
        [("detection", det["count"], fmt(det.get("mean", 0.0)),
          fmt(det.get("max", 0.0))),
         ("recovery", rec["count"], fmt(rec.get("mean", 0.0)),
          fmt(rec.get("max", 0.0)))])
    print(f"\nrequests: {delivered}/{attempts} delivered "
          f"({100 * availability:.2f}% availability), "
          f"failovers={service.failovers}, "
          f"gray reports={service.gray_reports}")
    print(f"frames corrupted={summary['frames_corrupted']} "
          f"dropped={summary['frames_dropped']} "
          f"delayed={summary['frames_delayed']}")

    # The service rode out the whole campaign.
    assert availability >= 0.99, \
        f"availability {availability:.4f} below 99%"

    # Every injected fault was detected and recovered end to end.
    assert summary["injected"] >= len(SOAK_KINDS)
    assert summary["unresolved"] == [], summary["unresolved"]
    assert summary["detected"] == summary["injected"]
    assert summary["recovered"] == summary["injected"]

    # No connection is left permanently failed anywhere.
    for host, server in cloud.servers.items():
        ltl = server.shell.ltl
        if ltl is None or not cloud.fabric.is_attached(host):
            continue
        failed = [s.connection_id for s in ltl.send_table.values()
                  if s.failed]
        assert not failed, \
            f"host {host} left with failed connections {failed}"

    # No component stays unreplaced while the pool has spares.
    rm = cloud.resource_manager
    if rm.free_hosts():
        assert service.sm.pending_replacements == 0
        assert len(service.hosts) == COMPONENTS

    # The transports really were attacked.
    assert summary["frames_corrupted"] > 0
    assert summary["frames_dropped"] > 0
    assert summary["frames_delayed"] > 0


def test_ranking_software_fallback(benchmark):
    server, manager, issued = benchmark.pedantic(
        run_ranking_fallback, rounds=1, iterations=1)
    print(f"\nranking under FPGA loss: {server.completed}/{issued} "
          f"queries completed, {server.software_fallbacks} served by "
          f"software fallback; FPGA health={manager.health.value}")

    # Every query completed even though the FPGA died mid-run...
    assert server.completed == issued
    # ...because queries fell back to the all-software path...
    assert server.software_fallbacks > 0
    # ...and the FM monitor rehabilitated the board afterwards.
    assert manager.health is FpgaHealth.HEALTHY
    assert server.fpga_available
