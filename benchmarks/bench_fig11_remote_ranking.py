"""E7 — Fig. 11: software vs local FPGA vs remote FPGA ranking.

"The data show that over a range of throughput targets, the latency
overhead of remote accesses is minimal" — all three modes on the
latency-vs-throughput axes, normalized to the software 99.9th-percentile
latency target.

Canonical implementation: :mod:`repro.experiments.fig11`.
"""

from repro.experiments import fig11

from conftest import fmt, print_table


def test_fig11_remote_acceleration(benchmark):
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    rows = []
    for name, points in result.curves.items():
        for load, p999 in points:
            rows.append((name, fmt(load), fmt(p999)))
    print_table(
        "Fig. 11 — p99.9 latency vs throughput (normalized to software "
        "target)", ("mode", "throughput", "p99.9"), rows)

    mean_overhead = result.mean_remote_overhead()
    print(f"\nmean remote-vs-local latency overhead across loads: "
          f"{100 * mean_overhead:+.1f}% (paper: 'minimal')")

    local = dict(result.curves["local"])
    remote = dict(result.curves["remote"])
    software = dict(result.curves["software"])
    # Remote tracks local closely at every shared load point; both beat
    # software at its achievable loads.
    for load in local:
        assert remote[load] <= local[load] * 1.35 + 0.05
    for load in software:
        assert local[load] < software[load]
    assert abs(mean_overhead) < 0.25
