"""Overload-protection surge benchmark — the ISSUE 6 acceptance gates.

Drives one ranking server through a seeded 5x flash crowd twice — once
with the full overload ladder (deadline propagation, CoDel admission
control, degradation, load shedding) and once with protection disabled
but SLO accounting kept — plus a hedged-vs-plain comparison against a
DNN pool with one limplocked FPGA.  Four gates:

* ``surge goodput >= 85% of pre-surge`` with protection on,
* ``admitted P99 during the surge <= 3x pre-surge P99``,
* ``hedging adds <= 5% backend load`` while cutting the limplock tail,
* the **unprotected** server's surge goodput collapses (< 30% of its
  pre-surge goodput) — the regression guard proving the protected
  numbers are not vacuous.

Run standalone to append a run to the committed trajectory file::

    PYTHONPATH=src python benchmarks/bench_overload_surge.py          # full
    PYTHONPATH=src python benchmarks/bench_overload_surge.py --quick  # CI

``BENCH_overload.json`` keeps a bounded ``history`` of prior runs so the
trajectory across PRs stays in the repo, not in CI logs.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dnn.pool import DnnPool  # noqa: E402
from repro.overload import HedgeConfig, HedgeController  # noqa: E402
from repro.ranking.service import (  # noqa: E402
    AccelerationMode,
    OverloadConfig,
    RankingServiceConfig,
    run_surge,
    saturation_qps,
)
from repro.sim import Environment  # noqa: E402
from repro.workloads import FlashCrowdProfile  # noqa: E402

HISTORY_LIMIT = 50

#: The acceptance gates (see module docstring / ISSUE 6).
GOODPUT_RATIO_MIN = 0.85
P99_RATIO_MAX = 3.0
HEDGE_BUDGET_MAX = 0.05
UNPROTECTED_COLLAPSE_MAX = 0.30

#: Offered baseline as a fraction of the server's saturation capacity;
#: the 5x surge then offers 3x capacity — a genuine flash crowd.
BASELINE_LOAD = 0.6
SURGE_MULTIPLIER = 5.0


# ----------------------------------------------------------------------
# Experiments
# ----------------------------------------------------------------------
def surge_config(protected: bool) -> RankingServiceConfig:
    overload = OverloadConfig() if protected else OverloadConfig(
        admission_enabled=False, deadline_enforcement=False)
    return RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA,
                                overload=overload)


def run_surge_pair(seed: int = 0) -> Dict[str, float]:
    """Protected and unprotected runs of the identical flash crowd."""
    capacity = saturation_qps(surge_config(protected=True))
    profile = FlashCrowdProfile(baseline_qps=BASELINE_LOAD * capacity,
                                surge_multiplier=SURGE_MULTIPLIER)

    out: Dict[str, float] = {"capacity_qps": round(capacity, 1)}
    for label, protected in (("protected", True), ("unprotected", False)):
        result = run_surge(surge_config(protected), profile, seed=seed)
        row = result.row()
        pre, surge = result.phases["pre"], result.phases["surge"]
        post = result.phases["post"]
        out[f"{label}_pre_goodput_qps"] = round(pre.goodput_qps, 1)
        out[f"{label}_surge_goodput_qps"] = round(surge.goodput_qps, 1)
        out[f"{label}_post_goodput_qps"] = round(post.goodput_qps, 1)
        out[f"{label}_goodput_ratio"] = round(
            surge.goodput_qps / pre.goodput_qps, 3) \
            if pre.goodput_qps else 0.0
        if pre.latency.count and surge.latency.count:
            out[f"{label}_pre_p99_ms"] = round(pre.latency.p99 * 1e3, 3)
            out[f"{label}_surge_p99_ms"] = round(
                surge.latency.p99 * 1e3, 3)
            out[f"{label}_p99_ratio"] = round(
                surge.latency.p99 / pre.latency.p99, 3)
        out[f"{label}_rejected"] = row["rejected"]
        out[f"{label}_degraded"] = row["degraded"]
        out[f"{label}_deadline_drops"] = row["deadline_drops"]
    return out


def run_hedging(num_requests: int = 2000, load: float = 0.4,
                slow_factor: float = 8.0,
                seed: int = 0) -> Dict[str, float]:
    """Open-loop load on a 4-FPGA DNN pool with one limplocked member,
    plain vs hedged; hedging must cut the tail within its 5% budget."""
    results: Dict[str, float] = {}
    for label in ("plain", "hedged"):
        env = Environment()
        pool = DnnPool(env, num_fpgas=4, rng=random.Random(seed))
        pool.set_slow(0, slow_factor)
        hedge = HedgeController(HedgeConfig())
        mean_service = pool.accelerators[0].mean_service_time
        period = mean_service / (load * pool.num_fpgas)

        def client(env, pool=pool, hedge=hedge, label=label):
            for _ in range(num_requests):
                if label == "hedged":
                    env.process(pool.request_hedged(hedge))
                else:
                    env.process(pool.request())
                yield env.timeout(period)

        env.process(client(env), name="dnn-load")
        env.run()
        results[f"{label}_p99_ms"] = round(pool.latency.p99 * 1e3, 3)
        results[f"{label}_completed"] = pool.completed
        if label == "hedged":
            extra = pool.backend_served - pool.completed
            results["hedge_fraction"] = round(
                hedge.stats.hedge_fraction, 4)
            results["extra_backend_fraction"] = round(
                extra / pool.completed, 4) if pool.completed else 0.0
            results["hedge_wins"] = hedge.stats.hedge_wins
            results["hedges_suppressed_budget"] = \
                hedge.stats.hedges_suppressed_budget
    results["tail_reduction"] = round(
        1.0 - results["hedged_p99_ms"] / results["plain_p99_ms"], 4)
    return results


def run_suite(quick: bool) -> Dict[str, object]:
    # Below ~1000 requests the 5% budget only buys a handful of hedges
    # and the P99 comparison is seed noise; 1000 is the floor at which
    # the tail reduction is stable across seeds.
    hedge_requests = 1000 if quick else 2000
    surge = run_surge_pair(seed=0)
    hedging = run_hedging(num_requests=hedge_requests, seed=0)
    return {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "gates": {
            "goodput_ratio_min": GOODPUT_RATIO_MIN,
            "p99_ratio_max": P99_RATIO_MAX,
            "hedge_budget_max": HEDGE_BUDGET_MAX,
            "unprotected_collapse_max": UNPROTECTED_COLLAPSE_MAX,
        },
        "metrics": {**surge, **hedging},
    }


def check_gates(metrics: Dict[str, float]) -> List[str]:
    """Return a list of human-readable gate violations (empty = pass)."""
    failures = []
    if metrics["protected_goodput_ratio"] < GOODPUT_RATIO_MIN:
        failures.append(
            f"protected surge goodput is "
            f"{metrics['protected_goodput_ratio']:.2f}x pre-surge "
            f"(gate: >= {GOODPUT_RATIO_MIN})")
    if metrics["protected_p99_ratio"] > P99_RATIO_MAX:
        failures.append(
            f"protected admitted P99 is "
            f"{metrics['protected_p99_ratio']:.2f}x pre-surge "
            f"(gate: <= {P99_RATIO_MAX})")
    if metrics["extra_backend_fraction"] > HEDGE_BUDGET_MAX:
        failures.append(
            f"hedging added {metrics['extra_backend_fraction']:.1%} "
            f"backend load (gate: <= {HEDGE_BUDGET_MAX:.0%})")
    if metrics["hedge_fraction"] > HEDGE_BUDGET_MAX + 1e-9:
        failures.append(
            f"hedge fraction {metrics['hedge_fraction']:.1%} "
            f"exceeds the {HEDGE_BUDGET_MAX:.0%} budget")
    if metrics["tail_reduction"] <= 0.0:
        failures.append("hedging did not reduce the limplock P99")
    if metrics["unprotected_goodput_ratio"] > UNPROTECTED_COLLAPSE_MAX:
        failures.append(
            f"unprotected surge goodput ratio "
            f"{metrics['unprotected_goodput_ratio']:.2f} did not "
            f"collapse (guard: < {UNPROTECTED_COLLAPSE_MAX}) — the "
            f"protected gates are vacuous")
    return failures


# ----------------------------------------------------------------------
# Trajectory file
# ----------------------------------------------------------------------
def write_result(result: Dict[str, object], path: Path) -> None:
    """Write ``result`` to ``path``, carrying forward the run history."""
    history: List[Dict[str, object]] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = None
        if isinstance(previous, dict) and "metrics" in previous:
            history = list(previous.get("history", []))
            history.append({k: previous[k] for k in
                            ("quick", "python", "timestamp", "metrics")
                            if k in previous})
    result = dict(result)
    result["history"] = history[-HISTORY_LIMIT:]
    path.write_text(json.dumps(result, indent=1) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_overload.json",
                        help="result/trajectory file to write")
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick)
    for name, value in sorted(result["metrics"].items()):
        print(f"{name:>32}: {value}")
    failures = check_gates(result["metrics"])
    write_result(result, args.output)
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1
    print("all overload gates passed")
    return 0


# ----------------------------------------------------------------------
# pytest gates (the acceptance criteria, asserted)
# ----------------------------------------------------------------------
def test_overload_gates():
    result = run_suite(quick=True)
    metrics = result["metrics"]
    assert check_gates(metrics) == []
    # The protection actually worked, not just relative to a broken
    # baseline: absolute surge goodput beats the unprotected server's.
    assert metrics["protected_surge_goodput_qps"] > \
        10 * metrics["unprotected_surge_goodput_qps"]


if __name__ == "__main__":
    raise SystemExit(main())
