"""E8 — Fig. 12: remote DNN pool latency vs oversubscription.

Average / 95th / 99th percentile request latencies as the ratio of
software clients to pooled FPGAs grows from 0.5 to 3.0 (the paper's
x-axis), normalized to locally-attached performance in each latency
category.  Headline numbers at 1:1 remote vs local: +1% avg, +4.7% 95th,
+32% 99th; latency spikes as the pool saturates near 3 stress clients
per FPGA.

Canonical implementation: :mod:`repro.experiments.fig12`.
"""

import pytest

from repro.experiments import fig12

from conftest import fmt, print_table


def test_fig12_oversubscription(benchmark):
    result = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    local = result.local
    rows = []
    for point in result.points:
        lat = point.latency
        rows.append((fmt(point.oversubscription),
                     fmt(lat.mean / local.latency.mean),
                     fmt(lat.p95 / local.latency.p95),
                     fmt(lat.p99 / local.latency.p99)))
    print_table(
        "Fig. 12 — remote DNN latency vs oversubscription "
        "(normalized to locally-attached)",
        ("clients/FPGA", "avg", "p95", "p99"), rows)

    avg_overhead, _p95_overhead, p99_overhead = \
        result.one_to_one_overheads()
    print(f"\n1:1 remote overheads: avg {100 * avg_overhead:+.1f}% "
          f"(paper +1%), p99 {100 * p99_overhead:+.1f}% (paper +32%)")

    # Shape assertions:
    # 1. 1:1 remote adds a small average overhead but a large p99 one.
    assert 0.0 < avg_overhead < 0.08
    assert 0.10 < p99_overhead < 0.60
    assert p99_overhead > 4 * avg_overhead
    # 2. Latency is flat-ish through moderate oversubscription...
    one_to_one = result.at_ratio(1.0)
    mid = result.at_ratio(2.0)
    assert mid.latency.mean < 1.6 * one_to_one.latency.mean
    # 3. ...then spikes as the pool saturates near 3 clients/FPGA.
    saturated = result.points[-1]
    assert saturated.oversubscription == pytest.approx(3.0)
    assert saturated.latency.p99 > 2.0 * mid.latency.p99
    assert saturated.latency.mean > 1.8 * mid.latency.mean
