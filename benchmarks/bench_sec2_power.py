"""E10 — §II: the power virus and the board's power envelope.

"Under these conditions, the card consumes 29.2 W of power, which is
well within the 32 W TDP limits for a card running in a single server in
our datacenter, and below the max electrical power draw limit of 35 W."
"""

import pytest

from repro.fpga import (
    POWER_VIRUS_UTILIZATION,
    RANKING_ROLE_UTILIZATION,
    PowerModel,
    ThermalConditions,
    validate_envelope,
)

from conftest import fmt, print_table


def run_power_study():
    model = PowerModel()
    scenarios = {
        "idle (nominal)": ({}, ThermalConditions()),
        "ranking role (nominal)": (RANKING_ROLE_UTILIZATION,
                                   ThermalConditions()),
        "power virus (nominal)": (POWER_VIRUS_UTILIZATION,
                                  ThermalConditions()),
        "power virus (thermal chamber)": (POWER_VIRUS_UTILIZATION,
                                          ThermalConditions.worst_case()),
    }
    rows = {name: model.power_w(util, cond)
            for name, (util, cond) in scenarios.items()}
    return rows, validate_envelope()


def test_sec2_power_envelope(benchmark):
    rows, envelope = benchmark.pedantic(run_power_study, rounds=1,
                                        iterations=1)
    print_table("§II — card power (W)", ("scenario", "watts"),
                [(name, fmt(watts, 1)) for name, watts in rows.items()])
    print(f"\npower virus worst-case: "
          f"{envelope['power_virus_w']:.1f} W vs TDP "
          f"{envelope['tdp_w']:.0f} W / electrical limit "
          f"{envelope['max_power_w']:.0f} W (paper: 29.2 W)")

    assert envelope["power_virus_w"] == pytest.approx(29.2, abs=0.15)
    assert envelope["within_tdp"]
    assert envelope["within_electrical_limit"]
    # Ordering: idle < role < virus < worst-case virus.
    values = list(rows.values())
    assert values == sorted(values)
