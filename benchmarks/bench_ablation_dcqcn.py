"""A4 — ablation: DC-QCN congestion control on vs off (§V-A).

"Since the FPGAs are so tightly coupled to the network, they can react
quickly and efficiently to congestion notification and back off when
needed to reduce packets dropped from incast patterns. ... LTL also
implements the DC-QCN end-to-end congestion control scheme."

The experiment: a sustained six-way incast on a *droppable* traffic
class with a small switch queue and ECN marking.  With DC-QCN, marks
turn into CNPs, senders cut their rates at the source, and the queue
rarely overflows; without it, the queue tail-drops and LTL pays
retransmissions — trading a somewhat longer (paced) completion for far
fewer drops, exactly the paper's "back off when needed".
"""

from repro.core import ConfigurableCloud
from repro.fpga import ShellConfig
from repro.ltl import LtlConfig
from repro.net import EcnConfig, TopologyConfig, TrafficClass, idle
from repro.net.dcqcn import DcqcnConfig

from conftest import fmt, print_table

SENDERS = 6
MESSAGES = 400
MESSAGE_BYTES = 1400


def run_incast(congestion_control: bool):
    topology = TopologyConfig(
        background=idle(),
        ecn=EcnConfig(kmin_bytes=3 * 1024, kmax_bytes=16 * 1024,
                      pmax=0.5))
    cloud = ConfigurableCloud(topology=topology, seed=55)
    dcqcn = DcqcnConfig(cnp_min_interval=20e-6,
                        cnp_generation_interval=20e-6,
                        increase_period=150e-6)

    def shell_config():
        return ShellConfig(
            ltl=LtlConfig(congestion_control=congestion_control,
                          window_frames=8,
                          max_consecutive_timeouts=10 ** 6,
                          dcqcn=dcqcn),
            ltl_traffic_class=TrafficClass.BEST_EFFORT)

    receiver = cloud.add_server(0, enroll=False,
                                shell_config=shell_config())
    senders = [cloud.add_server(1 + i, enroll=False,
                                shell_config=shell_config())
               for i in range(SENDERS)]
    coords = cloud.fabric.topology.coords(0)
    tor = cloud.fabric.topology.tor(coords.pod, coords.tor)
    tor.ports[0].queue_capacity_bytes = 32 * 1024

    delivered = []
    receiver.shell.role_receive = lambda p, n: delivered.append(
        cloud.env.now)
    for sender in senders:
        sender.shell.connect_to(receiver.shell)

    def burst(env):
        for sender in senders:
            for _ in range(MESSAGES):
                sender.shell.remote_send(
                    0, b"\x00" * MESSAGE_BYTES, MESSAGE_BYTES)
        yield env.timeout(0)

    cloud.env.process(burst(cloud.env))
    cloud.run(until=2.0)
    return {
        "delivered": len(delivered),
        "expected": SENDERS * MESSAGES,
        "drops": sum(p.stats.dropped for p in tor.ports.values()),
        "ecn_marked": tor.stats.ecn_marked,
        "rate_cuts": sum(
            state.dcqcn.rate_cuts for s in senders
            for state in s.shell.ltl.send_table.values()),
        "retransmissions": sum(
            s.shell.ltl.stats.retransmissions for s in senders),
        "completion_ms": 1e3 * (max(delivered) - min(delivered)),
    }


def test_ablation_dcqcn(benchmark):
    with_cc, without_cc = benchmark.pedantic(
        lambda: (run_incast(True), run_incast(False)),
        rounds=1, iterations=1)
    print_table(
        "A4 — sustained incast, droppable class: DC-QCN on vs off",
        ("metric", "DC-QCN on", "DC-QCN off"),
        [("delivered",
          f"{with_cc['delivered']}/{with_cc['expected']}",
          f"{without_cc['delivered']}/{without_cc['expected']}"),
         ("switch drops", with_cc["drops"], without_cc["drops"]),
         ("ECN marked", with_cc["ecn_marked"],
          without_cc["ecn_marked"]),
         ("sender rate cuts", with_cc["rate_cuts"],
          without_cc["rate_cuts"]),
         ("LTL retransmissions", with_cc["retransmissions"],
          without_cc["retransmissions"]),
         ("completion (ms)", fmt(with_cc["completion_ms"]),
          fmt(without_cc["completion_ms"]))])

    # Reliability holds either way.
    assert with_cc["delivered"] == with_cc["expected"]
    assert without_cc["delivered"] == without_cc["expected"]
    # DC-QCN reacts: rate cuts happen only when enabled...
    assert with_cc["rate_cuts"] > 0
    assert without_cc["rate_cuts"] == 0
    # ...and sharply reduce drops, marks, and retransmissions.
    assert with_cc["drops"] < 0.5 * without_cc["drops"]
    assert with_cc["ecn_marked"] < 0.5 * without_cc["ecn_marked"]
    assert with_cc["retransmissions"] < \
        0.6 * without_cc["retransmissions"]
