"""E4 — Fig. 8: query 99.9% latency vs offered load, from the 5-day data.

The scatter underlying Fig. 7, binned by load: the software DC's
latencies climb with load (and its balancer caps the load it will
admit), while the FPGA DC "is able to absorb more than twice the offered
load, while executing queries at a latency that never exceeds the
software datacenter at any load."
"""

from collections import defaultdict

from repro.ranking.production import run_five_day_study
from repro.workloads import DiurnalTraceConfig

from conftest import fmt, print_table


def run_fig8():
    return run_five_day_study(
        DiurnalTraceConfig(days=5, windows_per_day=16),
        queries_per_window=220, seed=2)


def bin_by_load(windows, target, bin_width=0.25):
    bins = defaultdict(list)
    for w in windows:
        bins[round(w.admitted_load / bin_width) * bin_width].append(
            w.p999_latency / target)
    return {load: sum(v) / len(v) for load, v in sorted(bins.items())}


def test_fig8_load_vs_latency(benchmark):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    target = result.latency_target
    sw_bins = bin_by_load(result.software, target)
    fp_bins = bin_by_load(result.fpga, target)
    rows = []
    for load in sorted(set(sw_bins) | set(fp_bins)):
        rows.append((fmt(load),
                     fmt(sw_bins[load]) if load in sw_bins else "-",
                     fmt(fp_bins[load]) if load in fp_bins else "-"))
    print_table("Fig. 8 — p99.9 latency vs offered load (normalized)",
                ("load", "software", "fpga"), rows)

    max_sw_load = max(w.admitted_load for w in result.software)
    max_fp_load = max(w.offered_load for w in result.fpga)
    print(f"\nmax observed load: software {max_sw_load:.2f} (balancer-"
          f"capped), FPGA {max_fp_load:.2f}")

    # The paper's two claims:
    # 1. FPGA absorbs more than twice the software load.
    assert max_fp_load > 2.0 * max_sw_load
    # 2. FPGA latency never exceeds software latency at any shared load.
    for load in set(sw_bins) & set(fp_bins):
        assert fp_bins[load] <= sw_bins[load]
    # 3. Software latency grows with load (the spike behaviour).
    sw_loads = sorted(sw_bins)
    assert sw_bins[sw_loads[-1]] > sw_bins[sw_loads[0]]
