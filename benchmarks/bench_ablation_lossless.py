"""A2 — ablation: lossless traffic class + PFC vs best-effort (§V-A).

"By using 'lossless' traffic classes provided in datacenter switches and
provisioned for traffic like RDMA and FCoE, we avoid most packet drops
and reorders."

The experiment: an incast — many senders converge on one receiver's TOR
downlink with tiny switch queues.  On the lossless class, PFC pushes
back and nothing is lost; on best-effort, the queue tail-drops and LTL
must recover by retransmission (costing 50 us timeouts).
"""

from repro.core import ConfigurableCloud
from repro.fpga import ShellConfig
from repro.net import PfcConfig, TopologyConfig, TrafficClass, idle

from conftest import print_table

SENDERS = 6
MESSAGES = 40
MESSAGE_BYTES = 1400


def run_incast(traffic_class: int):
    topology = TopologyConfig(background=idle(),
                              pfc=PfcConfig(xoff_bytes=8 * 1024,
                                            xon_bytes=4 * 1024))
    cloud = ConfigurableCloud(topology=topology, seed=33)
    shell_config = ShellConfig(ltl_traffic_class=traffic_class)
    receiver = cloud.add_server(0, enroll=False,
                                shell_config=shell_config)
    senders = [cloud.add_server(1 + i, enroll=False,
                                shell_config=ShellConfig(
                                    ltl_traffic_class=traffic_class))
               for i in range(SENDERS)]
    # Shrink the victim downlink queue so incast actually pressures it.
    coords = cloud.fabric.topology.coords(0)
    tor = cloud.fabric.topology.tor(coords.pod, coords.tor)
    tor.ports[0].queue_capacity_bytes = 12 * 1024

    delivered = []
    receiver.shell.role_receive = lambda p, n: delivered.append(p)
    for sender in senders:
        sender.shell.connect_to(receiver.shell)

    def burst(env):
        # True incast: every sender dumps its whole burst at once; each
        # sender's LTL pump then drives its 40G uplink flat out, and six
        # uplinks converge on the receiver's single 40G downlink.
        for sender in senders:
            for _ in range(MESSAGES):
                sender.shell.remote_send(
                    0, b"\x00" * MESSAGE_BYTES, MESSAGE_BYTES)
        yield env.timeout(0)

    cloud.env.process(burst(cloud.env))
    cloud.run(until=0.2)

    retransmissions = sum(
        s.shell.ltl.stats.retransmissions for s in senders)
    timeouts = sum(s.shell.ltl.stats.timeouts for s in senders)
    pauses = tor.stats.pfc_pause_sent
    drops = sum(port.stats.dropped for port in tor.ports.values())
    return {
        "delivered": len(delivered),
        "expected": SENDERS * MESSAGES,
        "retransmissions": retransmissions,
        "timeouts": timeouts,
        "pfc_pauses": pauses,
        "switch_drops": drops,
    }


def test_ablation_lossless_class(benchmark):
    lossless, best_effort = benchmark.pedantic(
        lambda: (run_incast(TrafficClass.LOSSLESS),
                 run_incast(TrafficClass.BEST_EFFORT)),
        rounds=1, iterations=1)
    print_table(
        "A2 — incast: lossless class + PFC vs best-effort",
        ("metric", "lossless", "best-effort"),
        [("delivered", f"{lossless['delivered']}/{lossless['expected']}",
          f"{best_effort['delivered']}/{best_effort['expected']}"),
         ("switch drops", lossless["switch_drops"],
          best_effort["switch_drops"]),
         ("LTL retransmissions", lossless["retransmissions"],
          best_effort["retransmissions"]),
         ("LTL timeouts", lossless["timeouts"],
          best_effort["timeouts"]),
         ("PFC pauses", lossless["pfc_pauses"],
          best_effort["pfc_pauses"])])

    # Both configurations eventually deliver everything (LTL is
    # reliable either way) ...
    assert lossless["delivered"] == lossless["expected"]
    assert best_effort["delivered"] == best_effort["expected"]
    # ... but the lossless class avoids drops entirely via PFC, while
    # best-effort drops in the switch and pays retransmissions.
    assert lossless["switch_drops"] == 0
    assert lossless["pfc_pauses"] > 0
    assert best_effort["switch_drops"] > 0
    assert best_effort["retransmissions"] > lossless["retransmissions"]
