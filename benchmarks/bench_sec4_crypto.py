"""E5 — §IV: network crypto acceleration numbers.

Regenerates the §IV cost table: CPU cores consumed per cipher suite at
40 Gb/s (GCM-128 ~ 5 cores; CBC-128-SHA1 >= 15 cores full duplex), the
FPGA-vs-software per-packet latency for a 1500 B packet (11 us vs ~4 us
for CBC-SHA1), and verifies real end-to-end flow encryption through two
bump-in-the-wire FPGAs on the fabric.
"""

import pytest

from repro.core import ConfigurableCloud
from repro.crypto import EncryptionTap, FlowKey
from repro.experiments import sec4

from conftest import fmt, print_table


def run_flow_encryption(packets=50):
    cloud = ConfigurableCloud(seed=9)
    a = cloud.add_server(0)
    b = cloud.add_server(1)
    tap_a, tap_b = EncryptionTap(), EncryptionTap()
    tap_a.install(a.shell.bridge)
    tap_b.install(b.shell.bridge)
    template = a.shell.attachment.make_packet(
        1, b"x" * 1200, src_port=9000, dst_port=9001)
    flow = FlowKey.of_packet(template)
    tap_a.flows.setup_flow(flow, bytes(16))
    tap_b.flows.setup_flow(flow, bytes(16))
    received = []
    b.on_packet(lambda p: received.append(p.payload))

    def driver(env):
        for i in range(packets):
            a.nic_send(a.shell.attachment.make_packet(
                1, bytes([i % 251]) * 1200, src_port=9000, dst_port=9001))
            yield env.timeout(5e-6)

    cloud.env.process(driver(cloud.env))
    cloud.run(until=0.1)
    return received, tap_a, tap_b


def test_sec4_crypto_cost_model(benchmark):
    rows = benchmark.pedantic(sec4.run, rounds=1, iterations=1)
    print_table(
        "§IV — crypto at 40 Gb/s (full duplex, Haswell 2.4 GHz)",
        ("suite", "cores", "sw us/1500B", "fpga us/1500B", "fpga Gb/s"),
        [(r.suite, fmt(r.cores_full_duplex),
          fmt(r.sw_latency_1500B * 1e6),
          fmt(r.fpga_latency_1500B * 1e6),
          fmt(r.fpga_throughput_bps / 1e9, 1)) for r in rows])

    by_suite = sec4.by_suite(rows)
    # "40 Gb/s encryption/decryption consumes roughly five cores."
    assert by_suite["aes-gcm-128"].cores_full_duplex == \
        pytest.approx(5.25, abs=0.05)
    # "Consumes at least fifteen cores to achieve 40 Gb/s full duplex."
    assert by_suite["aes-cbc-128-sha1"].cores_full_duplex >= 15 - 1e-9
    # "Worst case half-duplex FPGA crypto latency ... is 11 us."
    assert by_suite["aes-cbc-128-sha1"].fpga_latency_1500B == \
        pytest.approx(11e-6, rel=0.02)
    # "In software ... it is approximately 4 us."
    assert by_suite["aes-cbc-128-sha1"].sw_latency_1500B == \
        pytest.approx(4e-6, rel=0.05)
    # FPGA runs every suite at line rate.
    for row in rows:
        assert row.fpga_throughput_bps >= 38e9


def test_sec4_line_rate_flow_encryption(benchmark):
    received, tap_a, tap_b = benchmark.pedantic(
        run_flow_encryption, rounds=1, iterations=1)
    print(f"\n§IV — transparent flow encryption: "
          f"{tap_a.encrypted} packets encrypted on TX FPGA, "
          f"{tap_b.decrypted} decrypted on RX FPGA, "
          f"{len(received)} delivered as plaintext, "
          f"{tap_b.auth_failures} auth failures")
    assert len(received) == 50
    assert tap_a.encrypted == 50 and tap_b.decrypted == 50
    assert all(payload == bytes([i % 251]) * 1200
               for i, payload in enumerate(received))
