"""A1 — ablation: elastic vs static credit allocation in the ER (§V-B).

"Unlike a conventional router that allocates a static number of flits
per VC, the ER supports an elastic policy that allows a pool of credits
to be shared among multiple VCs, which is effective in reducing the
aggregate flit buffering requirements."

The experiment: one hot VC bursting through a contended output while the
other VCs idle, at several total-buffering budgets.  The elastic policy
needs a smaller buffer budget to reach the same injection performance.
"""

from repro.router import ElasticRouter
from repro.sim import Environment

from conftest import fmt, print_table

BUDGETS = (8, 12, 16, 24)
MESSAGES = 40


def run_one(policy: str, credits_per_port: int):
    env = Environment()
    router = ElasticRouter(env, num_ports=4, num_vcs=4,
                           credit_policy=policy,
                           credits_per_port=credits_per_port)
    router.set_endpoint(3, lambda m: None)
    # Background flows keep output 3 contended.
    for _ in range(MESSAGES):
        router.inject(1, 3, "bg", 128, vc=1)
        router.inject(2, 3, "bg", 128, vc=2)
    hot_done = []

    def hot(env):
        for _ in range(MESSAGES):
            yield router.send(0, 3, "hot", 128, vc=0)
            hot_done.append(env.now)

    env.process(hot(env))
    env.run()
    return {
        "policy": policy,
        "credits": credits_per_port,
        "stall_cycles": router.stats.injection_stall_cycles,
        "hot_handoff_mean_us": 1e6 * sum(hot_done) / len(hot_done),
        "total_time_us": 1e6 * env.now,
    }


def run_ablation():
    return [run_one(policy, budget)
            for budget in BUDGETS
            for policy in ("static", "elastic")]


def test_ablation_elastic_credits(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print_table(
        "A1 — elastic vs static credits (hot VC on contended output)",
        ("policy", "credits/port", "inject stalls", "hot handoff us",
         "total us"),
        [(r["policy"], r["credits"], r["stall_cycles"],
          fmt(r["hot_handoff_mean_us"]), fmt(r["total_time_us"]))
         for r in rows])

    by_key = {(r["policy"], r["credits"]): r for r in rows}
    # At every budget, elastic stalls less and hands the burst off
    # sooner.
    for budget in BUDGETS:
        static = by_key[("static", budget)]
        elastic = by_key[("elastic", budget)]
        assert elastic["stall_cycles"] <= static["stall_cycles"]
        assert elastic["hot_handoff_mean_us"] < \
            static["hot_handoff_mean_us"]
    # The buffering-reduction claim: elastic at the smallest budget
    # performs at least as well as static at twice the budget.
    assert by_key[("elastic", 8)]["hot_handoff_mean_us"] <= \
        by_key[("static", 16)]["hot_handoff_mean_us"] * 1.05
