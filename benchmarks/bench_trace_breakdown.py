"""Per-hop latency attribution benchmark + overlay ablation gates.

Runs the :mod:`repro.trace` overlay suite — the production datapath plus
four ablated variants (see :mod:`repro.trace.overlay`) — and enforces
the honesty contract of the tracing subsystem:

* the full path attributes >= 5 distinct hops,
* the unattributed residual stays below 1% of end-to-end time (per
  overlay, and structurally ``hop sum + residual == e2e``),
* every stage an overlay bypasses carries ~zero cost in its report
  (physically removed hardware cannot spend time),
* each ablation's end-to-end latency is no higher than the full path's
  (removing stages cannot slow the datapath down).

Run standalone to print the Fig. 10-style per-hop tables and write the
committed results file::

    PYTHONPATH=src python benchmarks/bench_trace_breakdown.py           # full
    PYTHONPATH=src python benchmarks/bench_trace_breakdown.py --quick   # CI

``BENCH_trace.json`` records the per-overlay decomposition so the
latency attribution trajectory stays in the repo, not in CI logs.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.trace.overlay import OVERLAYS, run_overlay  # noqa: E402
from repro.trace.recorder import TraceReport  # noqa: E402

#: Max share of end-to-end time a bypassed stage may still carry.
BYPASSED_SHARE_LIMIT = 0.01

#: Residual gate (unattributed share of end-to-end time).
MAX_RESIDUAL = 0.01

#: Distinct hops the full path must attribute.
MIN_FULL_HOPS = 5


def check_overlay(name: str, report: TraceReport,
                  full_report: Optional[TraceReport]) -> List[str]:
    """Return a list of gate failures (empty == overlay passed)."""
    failures: List[str] = []
    config = OVERLAYS[name]
    try:
        report.check(max_residual=MAX_RESIDUAL,
                     min_hops=MIN_FULL_HOPS if name == "full" else 1)
    except AssertionError as exc:
        failures.append(f"{name}: {exc}")
    for stage in config.bypassed:
        hop = report.hops.get(stage)
        if hop is not None and hop["share"] > BYPASSED_SHARE_LIMIT:
            failures.append(
                f"{name}: bypassed stage {stage} still carries "
                f"{hop['share']:.1%} of end-to-end time")
    if full_report is not None and name != "full":
        full_mean = full_report.e2e.get("mean", 0.0)
        mean = report.e2e.get("mean", 0.0)
        # Float slack only: an ablation removes work, it never adds any.
        if mean > full_mean * (1 + 1e-9):
            failures.append(
                f"{name}: mean e2e {mean * 1e6:.3f}us exceeds full path "
                f"{full_mean * 1e6:.3f}us — ablation added latency?")
    return failures


def run_suite(quick: bool) -> Dict[str, object]:
    messages = 200 if quick else 1_000
    reports: Dict[str, TraceReport] = {}
    walls: Dict[str, float] = {}
    for name in OVERLAYS:
        t0 = time.perf_counter()
        reports[name] = run_overlay(name, messages=messages)
        walls[name] = time.perf_counter() - t0

    failures: List[str] = []
    for name, report in reports.items():
        failures.extend(check_overlay(name, report, reports["full"]))

    overlays: Dict[str, object] = {}
    for name, report in reports.items():
        entry = report.to_dict()
        entry["description"] = OVERLAYS[name].description
        entry["bypassed"] = list(OVERLAYS[name].bypassed)
        entry["wall_seconds"] = round(walls[name], 4)
        overlays[name] = entry

    return {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "messages": messages,
        "gates": {
            "max_residual": MAX_RESIDUAL,
            "min_full_hops": MIN_FULL_HOPS,
            "bypassed_share_limit": BYPASSED_SHARE_LIMIT,
        },
        "overlays": overlays,
        "_reports": reports,     # stripped before serialization
        "_failures": failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer messages per overlay (CI smoke)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_trace.json",
                        help="results file to write")
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick)
    reports: Dict[str, TraceReport] = result.pop("_reports")
    failures: List[str] = result.pop("_failures")

    full_mean = reports["full"].e2e.get("mean", 0.0)
    for name, report in reports.items():
        mean = report.e2e.get("mean", 0.0)
        delta = full_mean - mean
        print(f"\n=== overlay: {name} — {OVERLAYS[name].description} ===")
        if name != "full" and full_mean > 0:
            print(f"(vs full path: -{delta * 1e6:.2f} us, "
                  f"{delta / full_mean:.1%} of full e2e)")
        print(report.format_table())

    if failures:
        print("\nFAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1

    args.output.write_text(json.dumps(result, indent=1) + "\n")
    print(f"\nall overlay gates passed; wrote {args.output}")
    return 0


# ----------------------------------------------------------------------
# pytest smoke (kept tiny; full runs happen via __main__)
# ----------------------------------------------------------------------
def test_trace_breakdown_smoke():
    result = run_suite(quick=True)
    assert result.pop("_failures") == []
    reports = result.pop("_reports")
    assert len(reports["full"].hops) >= MIN_FULL_HOPS
    # The ablation ladder is strictly ordered: each overlay removes real
    # work, so mean e2e decreases monotonically down to the kernel floor.
    means = [reports[n].e2e["mean"] for n in
             ("full", "bypass_er", "bypass_tor", "loopback_shell",
              "sim_kernel_only")]
    assert all(a > b for a, b in zip(means, means[1:]))


if __name__ == "__main__":
    raise SystemExit(main())
