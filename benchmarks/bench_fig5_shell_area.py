"""E1 — Fig. 5: area and frequency breakdown of the production image.

Regenerates the per-component ALM/percentage/clock table and checks the
invariants the paper's text states (shell 44%, MACs 14%, DDR 8%, LTL 7%,
ER 2%, total 76%).
"""

from repro.fpga import AreaBudget

from conftest import print_table


def build_fig5_table():
    budget = AreaBudget()
    rows = []
    for row in budget.rows():
        freq = "" if row["freq_mhz"] is None else f"{row['freq_mhz']:.0f}"
        rows.append((row["component"], f"{row['alms']:,}",
                     f"{row['percent']}%", freq))
    return budget, rows


def test_fig5_shell_area(benchmark):
    budget, rows = benchmark.pedantic(build_fig5_table, rounds=1,
                                      iterations=1)
    print_table("Fig. 5 — Area and frequency breakdown",
                ("component", "ALMs", "%", "MHz"), rows)

    # Paper invariants.
    assert budget.used_alms == 131_350
    assert round(100 * budget.used_fraction) == 76
    assert round(100 * budget.shell_fraction) == 44
    assert round(100 * budget.fraction_of("LTL Protocol Engine")) == 7
    assert round(100 * budget.fraction_of("Elastic Router")) == 2
    assert round(100 * budget.fraction_of("DDR3 Memory Controller")) == 8
