"""Core simulator speed benchmark — the repo's performance trajectory.

Measures three throughput numbers that bound every experiment's runtime:

* ``kernel_events_per_sec`` — raw event loop throughput on a pure
  timeout workload (no network, no LTL),
* ``ltl_round_trips_per_sec`` — full-stack LTL message round trips
  (shell -> fabric -> shell and back) per wall-clock second,
* ``fig10_wall_seconds`` / ``fig10_events_per_sec`` — wall clock and
  event throughput of the Fig. 10 tier-latency workload, the paper's
  headline experiment.

Run standalone to append a run to the committed trajectory file::

    PYTHONPATH=src python benchmarks/bench_core_speed.py            # full
    PYTHONPATH=src python benchmarks/bench_core_speed.py --quick    # CI

or compare a fresh result against the committed baseline (exits 1 on a
>20% regression of any guarded metric)::

    PYTHONPATH=src python benchmarks/bench_core_speed.py \
        --check BENCH_core.ci.json --baseline BENCH_core.json

``BENCH_core.json`` keeps a bounded ``history`` of prior runs so the
performance trajectory across PRs stays in the repo, not in CI logs.
The regression gate guards kernel, Fig. 10 *and* LTL round-trip
throughput, and takes each metric's baseline as the best full-mode
value across that history — not just the latest run — so regenerating
the file in the same PR that regresses it does not hide the drop.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.cloud import ConfigurableCloud  # noqa: E402
from repro.experiments.fig10 import DEFAULT_TIER_PAIRS  # noqa: E402
from repro.sim import Environment  # noqa: E402

#: Metrics guarded by ``--check`` (higher is better).
GUARDED_METRICS = ("kernel_events_per_sec", "fig10_events_per_sec",
                   "ltl_round_trips_per_sec")

HISTORY_LIMIT = 50


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def bench_kernel(n_timeouts: int) -> Dict[str, float]:
    """Pure event-loop throughput: one process yielding timeouts."""
    env = Environment()

    def ticker(env: Environment, n: int):
        timeout = env.timeout
        for _ in range(n):
            yield timeout(1e-6)

    env.process(ticker(env, n_timeouts), name="ticker")
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    return {"events": env.events_processed,
            "events_per_sec": env.events_processed / wall}


def bench_ltl_rtt(messages: int) -> Dict[str, float]:
    """Full-stack LTL round trips per second between two L0 hosts."""
    cloud = ConfigurableCloud(seed=10)
    for host in (0, 1):
        cloud.add_server(host, enroll=False)
    t0 = time.perf_counter()
    rtts = cloud.measure_ltl_rtt(0, 1, messages=messages)
    wall = time.perf_counter() - t0
    return {"round_trips": len(rtts),
            "round_trips_per_sec": len(rtts) / wall}


def bench_fig10(messages_per_pair: int) -> Dict[str, float]:
    """The Fig. 10 workload, instrumented for event throughput."""
    cloud = ConfigurableCloud(seed=10)
    t0 = time.perf_counter()
    for _tier, (_reach, pairs) in DEFAULT_TIER_PAIRS.items():
        for src, dst in pairs:
            for host in (src, dst):
                if host not in cloud.servers:
                    cloud.add_server(host, enroll=False)
            cloud.measure_ltl_rtt(src, dst, messages=messages_per_pair)
    wall = time.perf_counter() - t0
    events = cloud.env.events_processed
    return {"wall_seconds": wall, "events": events,
            "events_per_sec": events / wall}


def run_suite(quick: bool) -> Dict[str, object]:
    """Run every workload, best-of-N to damp scheduler noise."""
    repeats = 2 if quick else 3
    n_timeouts = 50_000 if quick else 200_000
    ltl_messages = 500 if quick else 2_000
    # 30 (not 15) messages per pair: short runs under-amortize topology
    # setup, which would skew the quick-vs-full baseline comparison the
    # CI gate performs.
    fig10_messages = 30 if quick else 60

    kernel = max((bench_kernel(n_timeouts) for _ in range(repeats)),
                 key=lambda r: r["events_per_sec"])
    ltl = max((bench_ltl_rtt(ltl_messages) for _ in range(repeats)),
              key=lambda r: r["round_trips_per_sec"])
    fig10 = min((bench_fig10(fig10_messages) for _ in range(repeats)),
                key=lambda r: r["wall_seconds"])

    return {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metrics": {
            "kernel_events_per_sec": round(kernel["events_per_sec"], 1),
            "kernel_events": kernel["events"],
            "ltl_round_trips_per_sec": round(
                ltl["round_trips_per_sec"], 1),
            "fig10_wall_seconds": round(fig10["wall_seconds"], 4),
            "fig10_events": fig10["events"],
            "fig10_events_per_sec": round(fig10["events_per_sec"], 1),
        },
    }


# ----------------------------------------------------------------------
# Trajectory file + regression check
# ----------------------------------------------------------------------
def write_result(result: Dict[str, object], path: Path) -> None:
    """Write ``result`` to ``path``, carrying forward the run history."""
    history: List[Dict[str, object]] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = None
        if isinstance(previous, dict) and "metrics" in previous:
            history = list(previous.get("history", []))
            history.append({k: previous[k] for k in
                            ("quick", "python", "timestamp", "metrics")
                            if k in previous})
    result = dict(result)
    result["history"] = history[-HISTORY_LIMIT:]
    path.write_text(json.dumps(result, indent=1) + "\n")


def _baseline_values(baseline: Dict[str, object]) -> Dict[str, float]:
    """Best committed value per guarded metric across the trajectory.

    The baseline file's top-level ``metrics`` are only the *latest* run.
    A PR that regenerates ``BENCH_core.json`` in the same change that
    regresses it would make the regression its own baseline — exactly how
    the tracing-era 28% Fig. 10 drop merged unnoticed.  The gate therefore
    compares against the best full-mode value anywhere in the committed
    history, so CI keeps failing until throughput is genuinely recovered
    (or the history is consciously rewritten).
    """
    entries = [baseline] + list(baseline.get("history", []))
    full = [e for e in entries if not e.get("quick", False)] or entries
    best: Dict[str, float] = {}
    for entry in full:
        metrics = entry.get("metrics", {})
        for name in GUARDED_METRICS:
            value = metrics.get(name)
            if value is not None and value > best.get(name, 0.0):
                best[name] = value
    return best


def check_regression(current_path: Path, baseline_path: Path,
                     tolerance: float, baseline_mode: str = "best") -> int:
    """Exit status 1 if any guarded metric regressed past tolerance.

    ``baseline_mode="best"`` (the regression gate) compares against the
    best full-mode run across the committed history; ``"latest"``
    compares against the baseline file's top-level metrics only — used
    by the tight-tolerance overhead gate, where chasing an all-time
    best from a different machine would be meaningless.
    """
    current = json.loads(current_path.read_text())["metrics"]
    baseline_doc = json.loads(baseline_path.read_text())
    if baseline_mode == "latest":
        baseline = baseline_doc["metrics"]
    else:
        baseline = _baseline_values(baseline_doc)
    failed = False
    for name in GUARDED_METRICS:
        cur, base = current.get(name), baseline.get(name)
        if cur is None or base is None or base <= 0:
            print(f"{name}: missing from current or baseline, skipping")
            continue
        ratio = cur / base
        verdict = "OK" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(f"{name}: {cur:,.0f} vs baseline {base:,.0f} "
              f"({ratio:.2f}x) {verdict}")
        failed |= verdict == "REGRESSION"
    if failed:
        print(f"FAIL: events/sec regressed more than "
              f"{tolerance:.0%} vs {baseline_path}")
        return 1
    print("benchmark check passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_core.json",
                        help="result/trajectory file to write")
    parser.add_argument("--check", type=Path, metavar="CURRENT",
                        help="compare CURRENT against --baseline "
                             "instead of running")
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_core.json")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional events/sec drop")
    parser.add_argument("--baseline-mode", choices=("best", "latest"),
                        default="best",
                        help="compare against the best full-mode run in "
                             "the committed history (default) or only "
                             "the baseline file's latest metrics")
    args = parser.parse_args(argv)

    if args.check is not None:
        return check_regression(args.check, args.baseline, args.tolerance,
                                args.baseline_mode)

    result = run_suite(quick=args.quick)
    for name, value in result["metrics"].items():
        print(f"{name:>28}: {value:,}")
    write_result(result, args.output)
    print(f"wrote {args.output}")
    return 0


# ----------------------------------------------------------------------
# pytest smoke (kept tiny; full runs happen via __main__)
# ----------------------------------------------------------------------
def test_core_speed_smoke():
    result = run_suite(quick=True)
    metrics = result["metrics"]
    assert metrics["kernel_events_per_sec"] > 0
    assert metrics["ltl_round_trips_per_sec"] > 0
    assert metrics["fig10_events_per_sec"] > 0
    # The Fig. 10 event count is seed-deterministic: a blow-up here means
    # the kernel started scheduling busywork (e.g. idle polling returned).
    assert metrics["fig10_events"] < 500_000


if __name__ == "__main__":
    raise SystemExit(main())
