"""E3 — Fig. 7: five-day production throughput and latency.

Two identical datacenters over a diurnal five-day trace, one software
and one FPGA-accelerated.  The software DC "experiences a high rate of
latency spikes" as load varies, while "the FPGA-accelerated queries have
much lower, tighter-bound latencies, despite seeing much higher peak
query loads."
"""

from repro.ranking.production import run_five_day_study
from repro.workloads import DiurnalTraceConfig

from conftest import fmt, print_table


def run_fig7():
    return run_five_day_study(
        DiurnalTraceConfig(days=5, windows_per_day=16),
        queries_per_window=220, seed=1)


def test_fig7_five_day_trace(benchmark):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    target = result.latency_target
    rows = []
    # Print a daily digest (full series is 80 windows).
    for day in range(5):
        sw_day = [w for w in result.software if int(w.time_days) == day]
        fp_day = [w for w in result.fpga if int(w.time_days) == day]
        rows.append((
            f"day {day + 1}",
            fmt(max(w.admitted_load for w in sw_day)),
            fmt(max(w.p999_latency / target for w in sw_day)),
            fmt(max(w.offered_load for w in fp_day)),
            fmt(max(w.p999_latency / target for w in fp_day))))
    print_table(
        "Fig. 7 — five-day trace (per-day peaks, latency normalized)",
        ("", "sw load", "sw p99.9", "fpga load", "fpga p99.9"), rows)

    sw_p999 = [w.p999_latency / target for w in result.software]
    fp_p999 = [w.p999_latency / target for w in result.fpga]
    sw_load = [w.admitted_load for w in result.software]
    fp_load = [w.offered_load for w in result.fpga]

    spike_threshold = 1.25
    sw_spikes = sum(1 for v in sw_p999 if v > spike_threshold)
    fp_spikes = sum(1 for v in fp_p999 if v > spike_threshold)
    print(f"\nlatency spikes (>1.25x target): software {sw_spikes}, "
          f"FPGA {fp_spikes}")
    print(f"peak load: software {max(sw_load):.2f}, "
          f"FPGA {max(fp_load):.2f} "
          f"({max(fp_load) / max(sw_load):.2f}x higher)")

    # Shape: FPGA sees ~2x the load yet stays tight; software spikes.
    # (p99.9 over ~220 queries/window is max-like, so allow the FPGA a
    # couple of sampling-noise excursions out of 80 windows.)
    assert max(fp_load) > 1.8 * max(sw_load)
    assert sw_spikes > 5
    assert fp_spikes <= 2
    assert fp_spikes < sw_spikes / 3
    assert max(fp_p999) < max(sw_p999)
