"""E9 — §II-B: the 5,760-server deployment and reliability study.

Runs the burn-in protocol over the full bed and a month of mirrored
traffic, regenerating the paper's reliability report: ~2 FPGA hard
failures, 1 cable failure, 5 PCIe Gen3 training failures, 8 DRAM
calibration failures, one SEU bit-flip per 1025 machine-days.
"""

import pytest

from repro.deployment import (
    FLEET_SIZE,
    Fleet,
    MirroredTrafficStudy,
    RANKING_SERVERS,
    expected_report,
)

from conftest import fmt, print_table


def run_deployment():
    fleet = Fleet(size=FLEET_SIZE, seed=20)
    fleet.run_burn_in()
    fleet.deploy_ranking()
    # Average the month-long study over several seeds so the report is
    # a stable estimate rather than one Poisson draw.
    reports = [MirroredTrafficStudy(seed=s).run() for s in range(25)]
    return fleet, reports


def test_sec2_deployment_study(benchmark):
    fleet, reports = benchmark.pedantic(run_deployment, rounds=1,
                                        iterations=1)
    expected = expected_report()
    n = len(reports)

    def mean(attr):
        return sum(getattr(r, attr) for r in reports) / n

    rows = [
        ("FPGA hard failures / month", "2",
         fmt(mean("fpga_hard_failures"))),
        ("cable failures / month", "1", fmt(mean("cable_failures"))),
        ("PCIe Gen3 training failures", "5",
         fmt(mean("pcie_training_failures"))),
        ("DRAM calibration failures", "8",
         fmt(mean("dram_calibration_failures"))),
        ("SEU flips / month", fmt(expected["seu_flips"], 1),
         fmt(mean("seu_flips"), 1)),
        ("machine-days per SEU flip", "1025",
         fmt(reports[0].machine_days / max(1, mean("seu_flips")), 0)),
    ]
    print_table("§II-B — deployment reliability (paper vs simulated, "
                f"mean of {n} runs)", ("metric", "paper", "simulated"),
                rows)
    summary = fleet.summary()
    print(f"\nburn-in: {summary['approved']:.0f}/{FLEET_SIZE} approved, "
          f"max power-virus draw {summary['max_power_virus_w']:.1f} W, "
          f"{summary['ranking_servers']:.0f} machines to ranking "
          f"(paper: {RANKING_SERVERS})")

    assert summary["approved"] == FLEET_SIZE  # "The servers all passed"
    assert summary["ranking_servers"] == RANKING_SERVERS
    assert mean("fpga_hard_failures") == pytest.approx(2.0, abs=1.0)
    assert mean("cable_failures") == pytest.approx(1.0, abs=0.75)
    assert mean("pcie_training_failures") == pytest.approx(5.0, abs=2.0)
    assert mean("dram_calibration_failures") == pytest.approx(8.0,
                                                              abs=2.5)
    assert mean("seu_flips") == pytest.approx(expected["seu_flips"],
                                              rel=0.1)
    # Every hang was recovered by scrubbing.
    assert all(r.seu_recoveries == r.seu_role_hangs for r in reports)
