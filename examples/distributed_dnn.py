#!/usr/bin/env python3
"""Model-parallel DNN inference across a chain of FPGAs over LTL.

The paper motivates datacenter-scale FPGA-to-FPGA communication with
services "that consume more than one FPGA (e.g. ... large-scale machine
learning)".  Here a trained MLP is split layer-wise over three FPGAs;
each inference's activations hop FPGA-to-FPGA over LTL, and pipelining
overlaps many inferences — while the numerical output stays bit-identical
to the single-device model.

Run:  python examples/distributed_dnn.py
"""

import numpy as np

from repro.core import ConfigurableCloud
from repro.dnn import DistributedMlp, Mlp, synthetic_classification


def main() -> None:
    # Train a real model first.
    x, labels = synthetic_classification(400, num_features=16,
                                         num_classes=4, seed=0)
    model = Mlp([16, 128, 64, 4], seed=0)
    model.fit(x, labels, epochs=20, seed=0)
    accuracy = float(np.mean(model.predict(x) == labels))
    print(f"trained MLP ({model.parameter_count} parameters), "
          f"accuracy {accuracy:.1%}")

    # Shard it across three pooled FPGAs.
    cloud = ConfigurableCloud(seed=3)
    hosts = [0, 1, 2]
    cloud.add_servers(hosts)
    client = cloud.add_server(100, enroll=False)
    dmlp = DistributedMlp(cloud, hosts, model)
    print(f"layer shards per FPGA: {dmlp.stages} "
          f"({[dmlp.stage_madds(i) for i in range(3)]} MAdds)")

    # One inference end to end, correctness-checked.
    sample = x[:1]
    outputs = []
    dmlp.submit(sample, callback=outputs.append, client_host=100)
    cloud.run(until=cloud.env.now + 5e-3)
    matches = np.allclose(outputs[0], model.forward(sample))
    latency_us = dmlp.latency.samples[0] * 1e6
    print(f"single inference: {latency_us:.1f} us across 3 FPGAs "
          f"(+client hop), matches single-device output: {matches}")

    # Pipeline 50 inferences: throughput >> 1/latency.
    start = cloud.env.now
    for i in range(50):
        dmlp.submit(x[i % len(x)][None, :], client_host=100)
    cloud.run(until=start + 0.05)
    span = max(dmlp.latency.samples[1:]) * 1e6
    print(f"50 pipelined inferences complete "
          f"({dmlp.completed - 1} done); max request latency "
          f"{span:.1f} us — far below 50 x {latency_us:.1f} us serial")


if __name__ == "__main__":
    main()
