#!/usr/bin/env python3
"""Host-to-host line-rate flow encryption in the bridge tap (paper §IV).

Software sets up an encrypted flow between two servers; every matching
packet is AES-GCM encrypted by the sender's FPGA and decrypted by the
receiver's FPGA — real AES, transparently, "which sees all packets as
unencrypted at the end points."  Then the §IV cost model: CPU cores saved
at 40 Gb/s per cipher suite, and the FPGA-vs-software latency trade.

Run:  python examples/network_crypto.py
"""

from repro import ConfigurableCloud
from repro.crypto import (
    EncryptionTap,
    FlowKey,
    FpgaCryptoEngine,
    SoftwareCryptoModel,
)


def transparent_flow_demo() -> None:
    cloud = ConfigurableCloud(seed=1)
    sender = cloud.add_server(0)
    receiver = cloud.add_server(1)

    tap_tx, tap_rx = EncryptionTap(), EncryptionTap()
    tap_tx.install(sender.shell.bridge)
    tap_rx.install(receiver.shell.bridge)

    # Control plane: both ends install the flow key.
    packet = sender.shell.attachment.make_packet(
        1, b"credit card numbers, obviously " * 8,
        src_port=7000, dst_port=7001)
    flow = FlowKey.of_packet(packet)
    session_key = bytes(range(16))
    tap_tx.flows.setup_flow(flow, session_key)
    tap_rx.flows.setup_flow(flow, session_key)

    received = []
    receiver.on_packet(lambda p: received.append(p.payload))
    sender.nic_send(packet)
    cloud.run(until=1e-3)

    print("flow encryption demo")
    print(f"  plaintext delivered to receiver NIC: "
          f"{received[0][:31]!r}...")
    print(f"  packets encrypted={tap_tx.encrypted} "
          f"decrypted={tap_rx.decrypted} (0 CPU cycles spent)")


def cost_model_demo() -> None:
    software = SoftwareCryptoModel()
    engine = FpgaCryptoEngine()

    print("\n40 Gb/s crypto cost (Haswell @ 2.4 GHz, full duplex)")
    print(f"{'suite':>20} {'cores needed':>13} {'freed by FPGA':>14}")
    for suite in ("aes-gcm-128", "aes-gcm-256", "aes-cbc-128",
                  "aes-cbc-128-sha1"):
        cores = software.cores_for_line_rate(suite)
        print(f"{suite:>20} {cores:>13.2f} {cores:>14.2f}")

    print("\nper-packet latency, 1500 B, AES-CBC-128-SHA1 "
          "(the paper's honest trade-off)")
    print(f"  FPGA (33-packet interleave): "
          f"{engine.cbc_sha1_latency(1500) * 1e6:5.1f} us (paper: 11 us)")
    print(f"  software                   : "
          f"{software.packet_latency('aes-cbc-128-sha1', 1500) * 1e6:5.1f}"
          f" us (paper: ~4 us)")
    print(f"  FPGA AES-GCM (pipelined)   : "
          f"{engine.gcm_latency(1500) * 1e6:5.2f} us")


if __name__ == "__main__":
    transparent_flow_demo()
    cost_model_demo()
