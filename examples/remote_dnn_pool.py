#!/usr/bin/env python3
"""Remote DNN acceleration pool and oversubscription (paper §V-D/E).

Trains a real (small) MLP, attaches it to accelerator roles, then runs
the Fig. 12 experiment: software clients sharing a shrinking pool of
accelerators, with latency percentiles versus the clients-per-FPGA ratio.

Run:  python examples/remote_dnn_pool.py
"""

import numpy as np

from repro.dnn import (
    DnnAccelerator,
    Mlp,
    RemoteNetworkModel,
    oversubscription_sweep,
    synthetic_classification,
)


def train_and_serve() -> None:
    x, labels = synthetic_classification(500, num_features=16,
                                         num_classes=4, seed=0)
    model = Mlp([16, 64, 4], seed=0)
    losses = model.fit(x, labels, epochs=25, seed=0)
    accuracy = float(np.mean(model.predict(x) == labels))
    accel = DnnAccelerator(model=model)
    probs = accel.infer(x[:3])
    print("functional DNN role")
    print(f"  training loss {losses[0]:.3f} -> {losses[-1]:.3f}, "
          f"accuracy {accuracy:.1%}")
    print(f"  sample inference argmax: {np.argmax(probs, axis=1)}")
    print(f"  accelerator mean service time: "
          f"{accel.mean_service_time * 1e3:.2f} ms "
          f"({accel.capacity_rps:.0f} req/s)")


def oversubscription_demo() -> None:
    ratios = [0.5, 1.0, 1.5, 2.0, 2.4, 3.0]
    results = oversubscription_sweep(
        ratios, base_fpgas=12, remote=RemoteNetworkModel(),
        requests_per_client=250)
    baseline = results[0].latency
    print("\noversubscription sweep (latency normalized to the 0.5x "
          "point, Fig. 12)")
    print(f"{'clients/FPGA':>13} {'avg':>7} {'95th':>7} {'99th':>7}")
    for result in results:
        lat = result.latency
        print(f"{result.oversubscription:>13.2f} "
              f"{lat.mean / baseline.mean:>7.2f} "
              f"{lat.p95 / baseline.p95:>7.2f} "
              f"{lat.p99 / baseline.p99:>7.2f}")
    print("Paper's Fig. 12: flat until the pool nears saturation "
          "(~3 stress clients per FPGA), then latency spikes.")


if __name__ == "__main__":
    train_and_serve()
    oversubscription_demo()
