#!/usr/bin/env python3
"""LTL under fire: drops, reordering, duplication, and node failure
(paper §V-A).

Injects transport faults between two LTL engines and shows the protocol
machinery at work — ACK/NACK-based retransmission, the 50 us timeout, and
fast failure detection of a dead peer.

Run:  python examples/ltl_reliability.py
"""

from repro.ltl import (
    DirectTransport,
    FaultModel,
    LtlConfig,
    LtlEngine,
    connect_pair,
)
from repro.sim import Environment


def lossy_link_demo() -> None:
    env = Environment()
    transport = DirectTransport(env, delay=1.5e-6, faults=FaultModel(
        drop_probability=0.25, reorder_probability=0.10,
        duplicate_probability=0.05))
    a, b = LtlEngine(env, 0), LtlEngine(env, 1)
    transport.register(a)
    transport.register(b)
    conn, _ = connect_pair(a, b)

    received = []
    b.on_message = lambda c, p, n: received.append(p)
    for i in range(200):
        a.send_message(conn, f"message-{i}".encode(), 512)
    env.run(until=0.5)

    in_order = received == [f"message-{i}".encode() for i in range(200)]
    print("lossy link (25% drop, 10% reorder, 5% duplicate)")
    print(f"  delivered {len(received)}/200, exactly-once in order: "
          f"{in_order}")
    print(f"  sender: {a.stats.frames_sent} frames, "
          f"{a.stats.retransmissions} retransmissions, "
          f"{a.stats.timeouts} timeout events")
    print(f"  receiver: {b.stats.nacks_sent} NACKs, "
          f"{b.stats.duplicates_dropped} duplicates dropped")


def failure_detection_demo() -> None:
    env = Environment()
    transport = DirectTransport(env, delay=1.5e-6, faults=FaultModel(
        drop_probability=1.0))  # the peer is gone
    config = LtlConfig(max_consecutive_timeouts=4)
    a = LtlEngine(env, 0, config=config)
    b = LtlEngine(env, 1, config=config)
    transport.register(a)
    transport.register(b)
    conn, _ = connect_pair(a, b)

    detected = []
    a.on_connection_failed = lambda cid, host: detected.append(env.now)
    a.send_message(conn, b"are you there?", 14)
    env.run(until=10e-3)

    print("\ndead-peer detection (timeout = "
          f"{config.retransmit_timeout * 1e6:.0f} us, "
          f"{config.max_consecutive_timeouts} strikes)")
    print(f"  connection declared failed after "
          f"{detected[0] * 1e6:.0f} us — 'timeouts can also be used to "
          f"identify failing nodes quickly'")


if __name__ == "__main__":
    lossy_link_demo()
    failure_detection_demo()
