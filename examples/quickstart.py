#!/usr/bin/env python3
"""Quickstart: build a tiny Configurable Cloud and exercise all three
acceleration scenarios on it.

1. Local/network path: host-to-host traffic bridged through each server's
   bump-in-the-wire FPGA.
2. Inter-FPGA path: direct FPGA-to-FPGA messages over LTL, with the
   round-trip latencies the paper reports for each network tier.
3. Global pool: FPGAs are tracked by the Hardware-as-a-Service Resource
   Manager.

Run:  python examples/quickstart.py
"""

import statistics

from repro import ConfigurableCloud


def main() -> None:
    cloud = ConfigurableCloud(seed=42)

    # Three servers on one TOR, one in another pod across the L2 tier.
    near = cloud.add_servers([0, 1, 2])
    far = cloud.add_server(100_000)

    # --- 1. Ordinary host traffic rides through the FPGAs ---------------
    received = []
    cloud.server(1).on_packet(lambda p: received.append(p.payload))
    cloud.server(0).send_to(1, b"hello through the bump-in-the-wire")
    cloud.run(until=1e-3)
    print(f"host 0 -> host 1 via both FPGAs: {received[0]!r}")

    # --- 2. Direct FPGA-to-FPGA messaging over LTL -----------------------
    l0 = cloud.measure_ltl_rtt(0, 1, messages=50)
    l2 = cloud.measure_ltl_rtt(2, 100_000, messages=50)
    print(f"LTL round-trip, same TOR     : "
          f"{statistics.mean(l0) * 1e6:6.2f} us "
          f"(paper: 2.88 us)")
    print(f"LTL round-trip, cross pod L2 : "
          f"{statistics.mean(l2) * 1e6:6.2f} us "
          f"(paper: ~18.7 us average, < 23.5 us)")

    # --- 3. The FPGAs form a global HaaS pool ---------------------------
    rm = cloud.resource_manager
    print(f"HaaS pool: {rm.pool_size} FPGAs registered, "
          f"{len(rm.free_hosts())} available for remote services")


if __name__ == "__main__":
    main()
