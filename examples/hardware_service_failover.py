#!/usr/bin/env python3
"""A complete remote hardware service with automatic failover.

Combines everything: HaaS leases FPGAs from the global pool and deploys
a role image; a client's FPGA talks to the service members directly over
LTL; when a member dies *silently*, the client's LTL engine detects it
within hundreds of microseconds (consecutive 50 us timeouts), HaaS
revokes the lease and provisions a replacement, and requests keep
flowing — "failing nodes are removed from the pool with replacements
quickly added."

Run:  python examples/hardware_service_failover.py
"""

from repro.core import ConfigurableCloud, HardwareService
from repro.fpga import Image, ShellConfig
from repro.haas import Constraints
from repro.ltl import LtlConfig


def main() -> None:
    cloud = ConfigurableCloud(seed=17)
    fast_detect = ShellConfig(ltl=LtlConfig(max_consecutive_timeouts=3))
    client = cloud.add_server(100, enroll=False,
                              shell_config=fast_detect)
    cloud.add_servers(list(range(6)))  # the donated pool

    service = HardwareService(
        cloud, "feature-extraction", Image("ffu-v2", "ffu"),
        Constraints(count=1), components=2)
    cloud.run(until=1.0)  # role images deploy (partial reconfiguration)

    answered = []
    service.set_handler(lambda payload, n: answered.append(payload))
    service.attach_client(client)
    print(f"service '{service.name}' on FPGAs {service.hosts}, "
          f"pool has {len(cloud.resource_manager.free_hosts())} spares")

    for i in range(4):
        service.request(client, f"query-{i}".encode(), 64)
    cloud.run(until=cloud.env.now + 2e-3)
    print(f"served {len(answered)} requests across the members")

    victim = service.hosts[0]
    print(f"\n... FPGA {victim} dies silently (no FIN, no RST, "
          f"nothing — it is hardware) ...")
    cloud.fabric.detach(victim)
    for i in range(2):  # next requests flush out the dead member
        service.request(client, f"probe-{i}".encode(), 64)
    cloud.run(until=cloud.env.now + 5e-3)

    print(f"LTL-detected failovers: {service.failovers}; "
          f"HaaS replacements: {service.sm.stats.replacements}")
    print(f"service now on FPGAs {service.hosts} "
          f"(FPGA {victim} evicted)")

    answered.clear()
    for i in range(4):
        service.request(client, f"after-{i}".encode(), 64)
    cloud.run(until=cloud.env.now + 2e-3)
    print(f"service healthy again: {len(answered)}/4 requests answered")


if __name__ == "__main__":
    main()
