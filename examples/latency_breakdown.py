#!/usr/bin/env python3
"""Where does a remote-FPGA microsecond actually go?

Answers it two ways with :mod:`repro.trace`:

1. Rides a traced request stream over the full acceleration datapath
   (role -> Elastic Router -> LTL -> shell MAC -> TOR -> remote role) and
   prints the per-hop P50/P99/P99.9 decomposition, residual included.
2. Re-runs the same stream over ablated datapaths (no ER, no TOR switch,
   engine loopback, bare event kernel) to *prove* the attribution: a
   bypassed stage's hop disappears and end-to-end latency drops by that
   hop's share.

Run:  python examples/latency_breakdown.py
"""

from repro.trace.overlay import OVERLAYS, run_overlay


def main() -> None:
    # --- 1. The full path, decomposed hop by hop ------------------------
    full = run_overlay("full", messages=400, sample_rate=0.02)
    print("Per-hop latency attribution, full datapath "
          f"({full.spans} one-way requests):\n")
    print(full.format_table())

    # A few captured spans: the exact tap trail of individual requests.
    print("\nSampled span forensics (first 2 captured spans):")
    for span in full.sampled_spans[:2]:
        trail = " -> ".join(
            f"{stage}:{duration * 1e6:.2f}us"
            for stage, duration in span.durations())
        print(f"  request {span.request_id}: {trail}")

    # --- 2. Overlay ablations prove the numbers -------------------------
    print("\nOverlay ablations (same stream, stages physically removed):\n")
    print(f"{'overlay':<16} {'mean e2e (us)':>14} {'vs full':>9}  removed")
    full_mean = full.e2e["mean"]
    for name in OVERLAYS:
        report = full if name == "full" else run_overlay(name, messages=400)
        mean = report.e2e["mean"]
        delta = f"-{(full_mean - mean) / full_mean:.0%}" if name != "full" \
            else "—"
        removed = ", ".join(OVERLAYS[name].bypassed) or "—"
        print(f"{name:<16} {mean * 1e6:>14.2f} {delta:>9}  {removed}")
    print("\nEach ablation's end-to-end drop matches the share the full-path"
          "\nreport attributed to the removed hops — honest accounting.")


if __name__ == "__main__":
    main()
