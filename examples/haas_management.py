#!/usr/bin/env python3
"""Hardware-as-a-Service management (paper §V-F, Fig. 13).

Builds a pool of FPGA-equipped servers, runs two hardware services under
the Resource Manager / Service Manager / FPGA Manager model, exercises
elastic grow/shrink as demand changes, and demonstrates failure handling:
"failing nodes are removed from the pool with replacements quickly
added."

Run:  python examples/haas_management.py
"""

from repro import ConfigurableCloud
from repro.fpga import Image
from repro.haas import Constraints, Locality, ServiceManager


def main() -> None:
    cloud = ConfigurableCloud(seed=11)
    # A rack of donated FPGAs (hosts 0-9 share a TOR) plus two in the
    # next rack.
    cloud.add_servers(list(range(10)) + [24, 25])
    rm = cloud.resource_manager
    print(f"pool: {rm.pool_size} FPGAs registered")

    # Service A: a DNN ensemble needing 2 co-located FPGAs per component.
    dnn = ServiceManager(
        cloud.env, "dnn-serving", rm, Image("dnn-v1", "dnn"),
        Constraints(count=2, locality=Locality.SAME_TOR))
    dnn.grow(2)

    # Service B: ranking feature extraction, singles, anywhere.
    ranking = ServiceManager(
        cloud.env, "ranking-ffu", rm, Image("ffu-v3", "ffu"),
        Constraints(count=1))
    ranking.grow(3)

    cloud.run(until=2.0)  # let partial reconfigurations finish
    print(f"dnn-serving  components={len(dnn.leases)} "
          f"hosts={dnn.hosts}")
    print(f"ranking-ffu  components={len(ranking.leases)} "
          f"hosts={ranking.hosts}")
    print(f"free pool: {sorted(rm.free_hosts())}")

    # Live image check on one allocated node.
    host = dnn.hosts[0]
    print(f"host {host} live image: "
          f"{cloud.shell(host).configuration.live_image.name}")

    # Demand drops: ranking gives a component back to the pool.
    ranking.shrink(1)
    print(f"\nafter shrink: ranking hosts={ranking.hosts}, "
          f"free={sorted(rm.free_hosts())}")

    # A board dies: the RM revokes its lease; the SM replaces it.
    victim = dnn.hosts[0]
    rm.manager(victim).mark_failed()
    cloud.run(until=cloud.env.now + 2.0)
    print(f"\nhost {victim} failed -> dnn-serving now on {dnn.hosts} "
          f"(replacements={dnn.stats.replacements})")
    print(f"free pool: {sorted(rm.free_hosts())} "
          f"(failed node excluded)")


if __name__ == "__main__":
    main()
