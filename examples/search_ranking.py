#!/usr/bin/env python3
"""Bing-style search ranking acceleration (paper §III-A).

Two halves, mirroring the paper:

* **Functional**: build a synthetic corpus, extract FSM + DP features for
  a query's candidate documents (the exact computation the FFU/DPF role
  accelerates), train a boosted-stump scorer, and rank.
* **Performance**: drive one ranking server in software-only and
  local-FPGA modes and print the Fig. 6-style latency-vs-throughput rows.

Run:  python examples/search_ranking.py
"""

from repro.sim import RandomStreams
from repro.ranking import (
    AccelerationMode,
    BoostedStumpModel,
    FeatureExtractor,
    FfuDpfRole,
    RankingServiceConfig,
    SyntheticCorpus,
    run_open_loop,
    saturation_qps,
    synthetic_relevance,
)


def functional_demo() -> None:
    corpus = SyntheticCorpus(seed=7)
    query = corpus.make_query()
    documents = corpus.make_result_set(query, num_docs=60)

    # Software feature extraction and the FFU role produce identical
    # features — hardware accelerates, it does not change the math.
    software_features = FeatureExtractor(query).extract_all(documents)
    hardware_features = FfuDpfRole().extract(query, documents)
    assert [f.values for f in software_features] == \
        [f.values for f in hardware_features]

    labels = [synthetic_relevance(query.terms, d.terms, d.quality)
              for d in documents]
    model = BoostedStumpModel(
        num_rounds=30,
        rng=RandomStreams(seed=0).stream("ranking-model"),
    ).fit(software_features, labels)
    ranking = model.rank(software_features)

    print(f"query terms: {query.terms}")
    print("top 5 documents (doc_id, model score, true relevance):")
    for index in ranking[:5]:
        fv = software_features[index]
        print(f"  doc {documents[index].doc_id:4d}  "
              f"score={model.predict(fv):6.2f}  "
              f"truth={labels[index]:6.2f}")


def performance_demo() -> None:
    software = RankingServiceConfig(mode=AccelerationMode.SOFTWARE)
    fpga = RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA)

    software_capacity = saturation_qps(software)
    target = run_open_loop(software, 0.9 * software_capacity,
                           num_queries=1500)
    latency_target = target.latency.p99
    print(f"\nsoftware capacity ~ {software_capacity:.0f} qps; "
          f"99th-pct latency target = {latency_target * 1e3:.2f} ms")

    print(f"{'mode':>10} {'load (x sw)':>12} {'p99 (norm)':>11}")
    for mode_name, config in (("software", software), ("fpga", fpga)):
        for multiplier in (0.5, 1.0, 1.5, 2.0, 2.25):
            rate = multiplier * 0.9 * software_capacity
            result = run_open_loop(config, rate, num_queries=1200)
            normalized = result.latency.p99 / latency_target
            marker = "  <-- saturated" if normalized > 2 else ""
            print(f"{mode_name:>10} {multiplier:>12.2f} "
                  f"{normalized:>11.2f}{marker}")
        print()
    print("Paper's Fig. 6: at the software latency target the FPGA "
          "sustains ~2.25x the software throughput.")


if __name__ == "__main__":
    functional_demo()
    performance_demo()
