"""Canonical datapath stage vocabulary.

Trace hops and :mod:`repro.overload` deadline drop attribution share this
one enum so the names cannot drift: when a query dies at the FPGA input
queue it shows up as ``fpga.queue`` in ``DeadlineStats`` and the same
``fpga.queue`` is the hop under which a traced query's wait is
accumulated.

The values are dotted lower-case strings grouped by subsystem prefix
(``core.``, ``er.``, ``shell.``, ``link.``, ``switch.``, ``ltl.``,
``role.``, ``pool.``).  Anything that accepts a stage accepts either the
enum member or its string value; normalize with :func:`stage_name`.
"""

from __future__ import annotations

import enum


class Stage(str, enum.Enum):
    """A named segment of the acceleration-plane datapath.

    ``str``-mixin so members compare and hash equal to their dotted
    string values — existing code that keyed dictionaries on ad-hoc
    strings keeps working, and JSON serialization is transparent.
    """

    # Host software / ranking pipeline.
    CORE_QUEUE = "core.queue"
    CORE_SOFTWARE = "core.software"
    SW_PRE = "sw.pre"
    SW_POST = "sw.post"

    # FPGA-side queues and role compute.
    FPGA_QUEUE = "fpga.queue"
    ROLE_ENQUEUE = "role.enqueue"
    ROLE_SERVICE = "role.service"
    POST_QUEUE = "post.queue"

    # Elastic Router crossbar.
    ER_INGRESS = "er.ingress"
    ER_SWITCH = "er.switch"

    # Shell bump-in-the-wire MAC datapath.
    SHELL_MAC_TX = "shell.mac_tx"
    SHELL_MAC_RX = "shell.mac_rx"

    # Physical links and switch tiers.
    LINK_WIRE = "link.wire"
    SWITCH_TOR = "switch.tor"
    SWITCH_L1 = "switch.l1"
    SWITCH_L2 = "switch.l2"

    # Lightweight Transport Layer engine.
    LTL_TX = "ltl.tx"
    LTL_RX = "ltl.rx"
    LTL_RETX = "ltl.retx"

    # DNN pool remote accelerator path.
    POOL_QUEUE = "pool.queue"
    POOL_NET = "pool.net"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Map from ``repro.net.topology`` tier names to the switch-traversal stage.
SWITCH_STAGE_BY_TIER = {
    "tor": Stage.SWITCH_TOR,
    "l1": Stage.SWITCH_L1,
    "l2": Stage.SWITCH_L2,
}


def stage_name(stage) -> str:
    """Normalize a :class:`Stage` member or plain string to its dotted name."""
    value = getattr(stage, "value", stage)
    return str(value)
