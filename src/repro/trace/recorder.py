"""TraceRecorder — streaming per-hop digests and honest decomposition.

The recorder owns the aggregation side of tracing: spans are opened with
:meth:`TraceRecorder.start`, ride the datapath as
:class:`~repro.trace.context.TraceContext` objects, and are closed with
:meth:`TraceRecorder.complete`, which folds the span's per-stage
durations into constant-memory P² digests
(:class:`repro.core.metrics.StreamingQuantile`, P50/P99/P99.9 per hop).

Honest accounting: for every completed span,

``sum(per-hop durations) + residual == end - t0``  (exactly)

where the residual is the uninstrumented interval between the last tap
and the externally observed completion.  :meth:`TraceReport.check`
gates the aggregate residual fraction below 1%, so "the hops explain
the end-to-end latency" is an enforced property, not a hope.

Span forensics: a seeded, deterministic sampler keeps the full mark
trail for a bounded number of spans (tail debugging wants the exact
sequence of taps for a slow request, not just digests).  The sampler
draws from its own private RNG stream — never the simulation's — so
enabling capture cannot perturb seeded runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.metrics import StreamingQuantile
from .context import TraceContext
from .stages import stage_name

__all__ = ["SpanRecord", "TraceRecorder", "TraceReport"]

#: Per-hop quantiles every recorder tracks (Fig. 10-style P50/P99 + P99.9).
TRACE_QUANTILES: Tuple[float, ...] = (50.0, 99.0, 99.9)


@dataclass
class SpanRecord:
    """A fully captured span: the exact tap trail of one request."""

    request_id: Any
    t0: float
    end: float
    marks: Tuple[Tuple[str, float], ...]

    @property
    def e2e(self) -> float:
        return self.end - self.t0

    def durations(self) -> List[Tuple[str, float]]:
        out: List[Tuple[str, float]] = []
        prev = self.t0
        for stage, at in self.marks:
            out.append((stage, at - prev))
            prev = at
        return out


class _HopStats:
    """Streaming aggregate for one stage: count, sum and P² quantiles."""

    __slots__ = ("count", "total", "quantiles")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.quantiles = {q: StreamingQuantile(q) for q in TRACE_QUANTILES}

    def record(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        for estimator in self.quantiles.values():
            estimator.record(duration)


class TraceRecorder:
    """Opens, closes and aggregates request spans.

    Parameters
    ----------
    sample_rate:
        Fraction of completed spans whose full mark trail is retained
        for forensics (0 disables capture).
    seed:
        Seed for the private sampling RNG — same seed, same arrival
        order => same captured spans.
    max_spans:
        Upper bound on retained :class:`SpanRecord` objects (oldest
        kept; once full, further samples only update digests).
    """

    def __init__(self, sample_rate: float = 0.0, seed: int = 0,
                 max_spans: int = 64):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self._rng = random.Random(seed)
        self._hops: Dict[str, _HopStats] = {}
        self._e2e = _HopStats()
        self._residual_total = 0.0
        self._e2e_total = 0.0
        self._spans: List[SpanRecord] = []
        self.started = 0
        self.completed = 0
        #: Spans closed at a drop point (queue overflow, expired
        #: deadline) instead of delivery.  Their attributed hop time is
        #: folded into the digests — the time was really spent — but
        #: they do not contribute to the end-to-end latency quantiles.
        self.abandoned = 0

    # -- span lifecycle ---------------------------------------------------

    def start(self, t0: float, request_id: Any = None) -> TraceContext:
        """Open a span at ``t0``; sampling is decided here, deterministically."""
        sampled = (self.sample_rate > 0.0
                   and self._rng.random() < self.sample_rate)
        self.started += 1
        ctx = TraceContext(t0, request_id=request_id, sampled=sampled)
        ctx.owner = self
        return ctx

    def abandon(self, ctx: TraceContext, now: float) -> None:
        """Close a span at a drop point so it is counted, not leaked.

        Keeps the honest-accounting invariant: the abandoned span's hop
        durations and residual are folded into the totals with
        ``e2e = now - t0``, so ``hop_sum_total + residual_total ==
        e2e_total`` still holds exactly.  Idempotent; a no-op once the
        span completed normally.
        """
        if ctx.closed:
            return
        ctx.closed = True
        self.abandoned += 1
        e2e = now - ctx.t0
        self._e2e_total += e2e
        for stage, duration in ctx.totals().items():
            name = stage_name(stage)
            hop = self._hops.get(name)
            if hop is None:
                hop = self._hops[name] = _HopStats()
            hop.record(duration)
        self._residual_total += now - ctx.last_time

    def complete(self, ctx: TraceContext, now: float) -> None:
        """Close a span at ``now`` and fold it into the digests.

        The mark trail is reduced *here*, once, after the request is
        done — never on the datapath.  Marks are copied into any
        captured :class:`SpanRecord` so later reuse/rewind of the
        context cannot mutate a stored span.
        """
        if ctx.closed:
            return
        ctx.closed = True
        self.completed += 1
        e2e = now - ctx.t0
        self._e2e_total += e2e
        self._e2e.record(e2e)
        totals = ctx.totals()
        for stage, duration in totals.items():
            name = stage_name(stage)
            hop = self._hops.get(name)
            if hop is None:
                hop = self._hops[name] = _HopStats()
            hop.record(duration)
        # Residual: the tail between the last tap and the observed end.
        self._residual_total += now - ctx.last_time
        if ctx.sampled and len(self._spans) < self.max_spans:
            self._spans.append(SpanRecord(
                request_id=ctx.request_id,
                t0=ctx.t0,
                end=now,
                marks=tuple((stage_name(s), t) for s, t in ctx.marks),
            ))

    # -- reporting --------------------------------------------------------

    def report(self) -> "TraceReport":
        hops: Dict[str, Dict[str, float]] = {}
        for name, stats in self._hops.items():
            entry: Dict[str, float] = {
                "count": float(stats.count),
                "total": stats.total,
                "mean": stats.total / stats.count,
                "share": (stats.total / self._e2e_total
                          if self._e2e_total > 0 else 0.0),
            }
            for q, estimator in stats.quantiles.items():
                entry[f"p{q:g}".replace(".", "_")] = estimator.value
            hops[name] = entry
        e2e: Dict[str, float] = {}
        if self._e2e.count:
            e2e = {
                "count": float(self._e2e.count),
                "mean": self._e2e.total / self._e2e.count,
            }
            for q, estimator in self._e2e.quantiles.items():
                e2e[f"p{q:g}".replace(".", "_")] = estimator.value
        hop_sum = sum(s.total for s in self._hops.values())
        return TraceReport(
            spans=self.completed,
            hops=hops,
            e2e=e2e,
            hop_sum_total=hop_sum,
            e2e_total=self._e2e_total,
            residual_total=self._residual_total,
            sampled_spans=tuple(self._spans),
            abandoned_spans=self.abandoned,
        )


@dataclass
class TraceReport:
    """Aggregated per-hop decomposition with an explicit residual.

    ``hop_sum_total + residual_total == e2e_total`` holds exactly by
    construction; ``residual_fraction`` is the share of end-to-end time
    the instrumentation failed to attribute, gated by :meth:`check`.
    """

    spans: int
    hops: Dict[str, Dict[str, float]]
    e2e: Dict[str, float]
    hop_sum_total: float
    e2e_total: float
    residual_total: float
    sampled_spans: Tuple[SpanRecord, ...] = ()
    #: Spans closed at a drop point (see :meth:`TraceRecorder.abandon`).
    abandoned_spans: int = 0

    @property
    def residual_fraction(self) -> float:
        if self.e2e_total <= 0:
            return 0.0
        return self.residual_total / self.e2e_total

    def check(self, max_residual: float = 0.01, min_hops: int = 5) -> None:
        """Raise if the decomposition is not honest enough.

        * hop sums + residual must reconstruct end-to-end time within
          float tolerance (structural invariant — a failure means a tap
          produced a non-monotonic timestamp),
        * the residual must stay below ``max_residual`` of e2e time,
        * at least ``min_hops`` distinct stages must carry attribution.
        """
        recon = self.hop_sum_total + self.residual_total
        if abs(recon - self.e2e_total) > 1e-9 * max(1.0, self.e2e_total):
            raise AssertionError(
                f"hop sum {self.hop_sum_total:.9g} + residual "
                f"{self.residual_total:.9g} != e2e {self.e2e_total:.9g}")
        if self.residual_fraction > max_residual:
            raise AssertionError(
                f"unattributed residual {self.residual_fraction:.2%} exceeds "
                f"{max_residual:.2%} of end-to-end time")
        if len(self.hops) < min_hops:
            raise AssertionError(
                f"only {len(self.hops)} hops attributed; need >= {min_hops}")

    def format_table(self, unit: float = 1e-6, unit_label: str = "us") -> str:
        """Render the Fig. 10-style per-hop table (times in ``unit``)."""
        lines = [
            f"{'hop':<16} {'count':>8} {'share':>7} "
            f"{'mean':>10} {'p50':>10} {'p99':>10} {'p99.9':>10}  ({unit_label})",
            "-" * 78,
        ]
        order = sorted(self.hops.items(), key=lambda kv: -kv[1]["total"])
        for name, h in order:
            lines.append(
                f"{name:<16} {int(h['count']):>8} {h['share']:>6.1%} "
                f"{h['mean'] / unit:>10.2f} {h['p50'] / unit:>10.2f} "
                f"{h['p99'] / unit:>10.2f} {h['p99_9'] / unit:>10.2f}")
        lines.append("-" * 78)
        if self.e2e:
            lines.append(
                f"{'end-to-end':<16} {int(self.e2e['count']):>8} {'':>7} "
                f"{self.e2e['mean'] / unit:>10.2f} "
                f"{self.e2e['p50'] / unit:>10.2f} "
                f"{self.e2e['p99'] / unit:>10.2f} "
                f"{self.e2e['p99_9'] / unit:>10.2f}")
        lines.append(
            f"residual (unattributed): {self.residual_fraction:.3%} "
            f"of end-to-end time over {self.spans} spans")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (used by ``BENCH_trace.json``)."""
        return {
            "spans": self.spans,
            "abandoned_spans": self.abandoned_spans,
            "hops": self.hops,
            "e2e": self.e2e,
            "hop_sum_total": self.hop_sum_total,
            "e2e_total": self.e2e_total,
            "residual_total": self.residual_total,
            "residual_fraction": self.residual_fraction,
        }
