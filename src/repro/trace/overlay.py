"""Overlay ablations: disable datapath stages to isolate their cost.

The per-hop decomposition says where the recorder *thinks* the time
goes; an ablation proves it.  Each overlay runs the same request stream
over a datapath variant with some stages physically removed — if the
attribution is honest, a bypassed stage's hop disappears (cost -> 0)
and end-to-end latency drops by approximately that hop's share, while
the surviving hops keep their costs.  This is hft-latency-lab's
overlay methodology applied to the acceleration plane.

Overlays (``OVERLAYS``):

* ``full`` — the production path: role -> ER -> LTL -> shell MAC -> TOR
  switch -> remote shell -> ER -> remote role.
* ``bypass_er`` — roles talk to the LTL engine directly; both Elastic
  Router traversals disappear.
* ``bypass_tor`` — engines wired by a point-to-point MAC + wire
  transport; the TOR switch traversal disappears (MAC and wire remain).
* ``loopback_shell`` — frames handed engine-to-engine with no MAC, wire
  or switch at all; only the LTL engine itself remains.
* ``sim_kernel_only`` — no datapath, just the event kernel scheduling a
  role-service delay; the floor every other overlay sits on.

``run_overlay(name)`` returns a :class:`~repro.trace.recorder.
TraceReport`; ``benchmarks/bench_trace_breakdown.py`` runs all five and
gates the ablation deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..sim import Environment
from .recorder import TraceRecorder, TraceReport
from .stages import Stage

#: Simulated role compute per request, identical in every overlay so the
#: reports differ only by datapath stages.
ROLE_SERVICE_SECONDS = 1.2e-6


@dataclass(frozen=True)
class OverlayConfig:
    """One ablation variant."""

    name: str
    description: str
    #: Stage names expected to carry ~zero cost under this overlay
    #: (bypassed hardware cannot spend time).
    bypassed: Tuple[str, ...] = ()


OVERLAYS: Dict[str, OverlayConfig] = {
    "full": OverlayConfig(
        "full", "production path: role->ER->LTL->MAC->TOR->remote role"),
    "bypass_er": OverlayConfig(
        "bypass_er", "roles call LTL directly; no Elastic Router",
        bypassed=(Stage.ER_INGRESS.value, Stage.ER_SWITCH.value)),
    "bypass_tor": OverlayConfig(
        "bypass_tor", "point-to-point MAC+wire transport; no TOR switch",
        bypassed=(Stage.SWITCH_TOR.value, Stage.SWITCH_L1.value,
                  Stage.SWITCH_L2.value, Stage.ER_INGRESS.value,
                  Stage.ER_SWITCH.value)),
    "loopback_shell": OverlayConfig(
        "loopback_shell", "engine-to-engine loopback; no MAC/wire/switch",
        bypassed=(Stage.SHELL_MAC_TX.value, Stage.SHELL_MAC_RX.value,
                  Stage.LINK_WIRE.value, Stage.SWITCH_TOR.value,
                  Stage.ER_INGRESS.value, Stage.ER_SWITCH.value)),
    "sim_kernel_only": OverlayConfig(
        "sim_kernel_only", "event kernel + role service only; no transport",
        bypassed=(Stage.SHELL_MAC_TX.value, Stage.SHELL_MAC_RX.value,
                  Stage.LINK_WIRE.value, Stage.SWITCH_TOR.value,
                  Stage.ER_INGRESS.value, Stage.ER_SWITCH.value,
                  Stage.LTL_TX.value, Stage.LTL_RX.value)),
}


def run_overlay(name: str, messages: int = 200, payload_bytes: int = 256,
                gap_seconds: float = 20e-6, seed: int = 0,
                sample_rate: float = 0.05) -> TraceReport:
    """Run one overlay's request stream and return its trace report.

    Every overlay sends ``messages`` one-way requests from a client role
    to a server role over its datapath variant, paced ``gap_seconds``
    apart (idle network — this is a latency instrument, not a throughput
    one), completing each span when the server role receives the
    payload.
    """
    if name not in OVERLAYS:
        raise ValueError(
            f"unknown overlay {name!r}; choose from {sorted(OVERLAYS)}")
    runner = {
        "full": _run_full,
        "bypass_er": _run_bypass_er,
        "bypass_tor": _run_bypass_tor,
        "loopback_shell": _run_loopback_shell,
        "sim_kernel_only": _run_sim_kernel_only,
    }[name]
    return runner(messages, payload_bytes, gap_seconds, seed, sample_rate)


def _drain_time(messages: int, gap_seconds: float) -> float:
    # Generous drain so stragglers (retransmits included) complete.
    return messages * gap_seconds + 10e-3


def _serve(recorder: TraceRecorder, env: Environment):
    """Server-role handler: role compute, then close the span.

    The traced payload IS the span's TraceContext, so the handler can
    complete it without a side channel.
    """

    def handler(payload: Any, _length: int) -> None:
        def finish() -> None:
            payload.tap(Stage.ROLE_SERVICE, env.now)
            recorder.complete(payload, env.now)
        env.call_later(ROLE_SERVICE_SECONDS, finish)

    return handler


def _pace(env: Environment, recorder: TraceRecorder, messages: int,
          gap_seconds: float, send_one) -> None:
    """Open one span per message and hand it to ``send_one(ctx)``."""

    def driver(env):
        for i in range(messages):
            ctx = recorder.start(env.now, request_id=i)
            send_one(ctx)
            yield env.timeout(gap_seconds)

    env.process(driver(env), name="overlay-driver")
    env.run(until=env.now + _drain_time(messages, gap_seconds))


def _run_full(messages, payload_bytes, gap_seconds, seed, sample_rate):
    from ..core.cloud import ConfigurableCloud

    cloud = ConfigurableCloud(seed=seed)
    cloud.add_server(0, enroll=False)
    cloud.add_server(1, enroll=False)
    cloud.connect(0, 1)
    recorder = TraceRecorder(sample_rate=sample_rate, seed=seed)
    shell_a, shell_b = cloud.shell(0), cloud.shell(1)
    shell_b.role_receive = _serve(recorder, cloud.env)

    def send_one(ctx):
        shell_a.remote_send(1, ctx, payload_bytes, trace=ctx)

    _pace(cloud.env, recorder, messages, gap_seconds, send_one)
    return recorder.report()


def _run_bypass_er(messages, payload_bytes, gap_seconds, seed, sample_rate):
    from ..core.cloud import ConfigurableCloud
    from ..fpga.shell import RemoteMessage

    cloud = ConfigurableCloud(seed=seed)
    cloud.add_server(0, enroll=False)
    cloud.add_server(1, enroll=False)
    cloud.connect(0, 1)
    recorder = TraceRecorder(sample_rate=sample_rate, seed=seed)
    env = cloud.env
    shell_a, shell_b = cloud.shell(0), cloud.shell(1)
    conn = shell_a._send_conns[1]
    serve = _serve(recorder, env)
    # Hand LTL deliveries straight to the role: no receiving-side ER.
    shell_b.ltl.on_message = \
        lambda _c, payload, n: serve(payload.payload, n)

    def send_one(ctx):
        # No sending-side ER either: the role talks to LTL directly.
        shell_a.ltl.send_message(
            conn, RemoteMessage(0, ctx, trace=ctx), payload_bytes,
            trace=ctx)

    _pace(env, recorder, messages, gap_seconds, send_one)
    return recorder.report()


class _MacWireTransport:
    """Point-to-point LTL transport: MAC pipelines + one wire, no fabric.

    Taps the same shell/link stages the real shell does, at the same
    relative instants, so the bypass-TOR report is directly comparable
    to the full one minus the switch hop.
    """

    def __init__(self, env: Environment, mac_tx: float = 0.18e-6,
                 wire: float = 0.4e-6, mac_rx: float = 0.18e-6):
        self.env = env
        self.mac_tx = mac_tx
        self.wire = wire
        self.mac_rx = mac_rx
        self.peers: Dict[int, Any] = {}

    def send_frame(self, dst_host: int, frame) -> None:
        env = self.env
        start = env.now
        peer = self.peers[dst_host]

        def deliver() -> None:
            trace = frame.trace
            if trace is not None:
                trace.tap(Stage.SHELL_MAC_TX, start + self.mac_tx)
                trace.tap(Stage.LINK_WIRE,
                          start + self.mac_tx + self.wire)
                trace.tap(Stage.SHELL_MAC_RX,
                          start + self.mac_tx + self.wire + self.mac_rx)
            peer.receive_frame(frame)

        env.call_later(self.mac_tx + self.wire + self.mac_rx, deliver)


class _LoopbackTransport:
    """Zero-cost frame handoff: no MAC, no wire, no switch."""

    def __init__(self, env: Environment):
        self.env = env
        self.peers: Dict[int, Any] = {}

    def send_frame(self, dst_host: int, frame) -> None:
        self.env.call_later(0.0, self.peers[dst_host].receive_frame, frame)


def _engine_pair(env: Environment, transport) -> Tuple[Any, Any, int]:
    from ..ltl.engine import LtlEngine, connect_pair

    a = LtlEngine(env, 0, transport=transport, name="ltl-a")
    b = LtlEngine(env, 1, transport=transport, name="ltl-b")
    transport.peers[0] = a
    transport.peers[1] = b
    conn_ab, _conn_ba = connect_pair(a, b)
    return a, b, conn_ab


def _run_engines(transport_cls, messages, payload_bytes, gap_seconds, seed,
                 sample_rate):
    env = Environment()
    recorder = TraceRecorder(sample_rate=sample_rate, seed=seed)
    engine_a, engine_b, conn = _engine_pair(env, transport_cls(env))
    serve = _serve(recorder, env)
    engine_b.on_message = lambda _c, payload, n: serve(payload, n)

    def send_one(ctx):
        engine_a.send_message(conn, ctx, payload_bytes, trace=ctx)

    _pace(env, recorder, messages, gap_seconds, send_one)
    return recorder.report()


def _run_bypass_tor(messages, payload_bytes, gap_seconds, seed, sample_rate):
    return _run_engines(_MacWireTransport, messages, payload_bytes,
                        gap_seconds, seed, sample_rate)


def _run_loopback_shell(messages, payload_bytes, gap_seconds, seed,
                        sample_rate):
    return _run_engines(_LoopbackTransport, messages, payload_bytes,
                        gap_seconds, seed, sample_rate)


def _run_sim_kernel_only(messages, _payload_bytes, gap_seconds, seed,
                         sample_rate):
    env = Environment()
    recorder = TraceRecorder(sample_rate=sample_rate, seed=seed)
    serve = _serve(recorder, env)

    def send_one(ctx):
        serve(ctx, 0)

    _pace(env, recorder, messages, gap_seconds, send_one)
    return recorder.report()
