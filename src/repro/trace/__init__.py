"""repro.trace — per-hop latency attribution with honest accounting.

Fig. 10 reports *end-to-end* LTL latency; production debugging needs to
know *where* the microseconds go (role -> Elastic Router -> shell MAC ->
TOR -> L1 -> remote role).  This subsystem provides:

* :class:`~repro.trace.stages.Stage` — the canonical stage vocabulary,
  shared with :mod:`repro.overload`'s drop attribution so trace hops and
  deadline drops name the same places,
* :class:`~repro.trace.context.TraceContext` — a context that rides
  packets and LTL frames end to end, collecting timestamp taps at every
  datapath stage,
* :class:`~repro.trace.recorder.TraceRecorder` /
  :class:`~repro.trace.recorder.TraceReport` — per-hop P50/P99/P99.9
  digests (P² streaming quantiles) and a decomposition whose hops are
  *guaranteed* to sum to the measured end-to-end latency (any
  uninstrumented interval is reported as an explicit residual, gated at
  < 1%),
* :mod:`repro.trace.overlay` — ablation configurations (full path,
  bypass-ER, bypass-TOR, loopback-shell, sim-kernel-only) that disable
  stages to isolate their cost, after hft-latency-lab's four-overlay
  methodology.

Tracing is strictly opt-in per request: a request without a context
costs the datapath one ``is not None`` check per tap point and allocates
nothing — see ``benchmarks/bench_trace_breakdown.py`` for the enforced
disabled-tracing overhead budget.
"""

from .stages import SWITCH_STAGE_BY_TIER, Stage
from .context import TraceContext
from .recorder import SpanRecord, TraceRecorder, TraceReport

__all__ = [
    "SWITCH_STAGE_BY_TIER",
    "SpanRecord",
    "Stage",
    "TraceContext",
    "TraceRecorder",
    "TraceReport",
]
