"""TraceContext — the object that rides a request end to end.

Attribution model
-----------------

A context is opened at the moment the request enters the instrumented
datapath (``t0``).  Every tap point calls ``tap(stage, now)`` which
appends ``(stage, now)`` and *attributes the whole interval since the
previous mark to that stage*.  Because each mark closes the interval
behind it, the per-stage durations always sum to ``last_mark - t0``
exactly — honest accounting falls out of the data structure rather than
being asserted after the fact.  Whatever tail is left between the final
mark and the externally measured completion time is the *residual*:
the uninstrumented remainder, which :class:`repro.trace.recorder.
TraceRecorder` reports explicitly and CI gates below 1%.

Go-back-N retransmits
---------------------

The LTL engine snapshots ``checkpoint()`` when a frame is first
transmitted.  If the frame has to be retransmitted, the marks taken by
the doomed traversal (wire, switch queues...) are rolled back with
``rewind()`` and the whole span from the original transmit to the
retransmission is tapped as :attr:`Stage.LTL_RETX` — so wire/switch
hops are never double-counted and retransmit wait lands in its own
bucket (see ``tests/trace/test_retransmit.py``).

Hot-path discipline
-------------------

``tap`` appends to a plain list: no dict lookups, no RNG, no simulator
events.  An untraced request costs each tap site a single
``x.trace is not None`` check.  Taps must never consume randomness or
schedule events, so enabling tracing cannot perturb seeded runs.
"""

from __future__ import annotations

from typing import Any, List, Tuple

__all__ = ["TraceContext"]


class TraceContext:
    """Per-request timestamp trail with interval attribution.

    Parameters
    ----------
    t0:
        Simulation time at which the request entered the datapath.
    request_id:
        Opaque identifier used when the span is captured for forensics.
    sampled:
        When True, the recorder keeps the full per-hop span (not just
        the streaming digests) on completion.
    """

    __slots__ = ("t0", "request_id", "sampled", "marks", "meta",
                 "owner", "closed", "protected")

    def __init__(self, t0: float, request_id: Any = None, sampled: bool = False):
        self.t0 = t0
        self.request_id = request_id
        self.sampled = sampled
        self.marks: List[Tuple[Any, float]] = []
        self.meta: Any = None
        #: The recorder that opened this span (None for bare contexts).
        self.owner: Any = None
        #: True once the span has been completed or abandoned.
        self.closed = False
        #: True while the request is in the custody of a reliable
        #: transport (LTL): a packet drop is then recoverable — the frame
        #: will be retransmitted — so drop sites must NOT abandon the
        #: span.  Set by the LTL engine at first transmit.
        self.protected = False

    # -- hot path ---------------------------------------------------------

    def tap(self, stage, now: float) -> None:
        """Attribute the interval since the previous mark to ``stage``."""
        self.marks.append((stage, now))

    # -- drop handling -----------------------------------------------------

    def abandon(self, now: float) -> None:
        """Close the span at a drop point (packet dropped, deadline hit).

        Routes to the owning recorder's :meth:`~repro.trace.recorder.
        TraceRecorder.abandon` so dropped requests are counted instead of
        leaking; a bare context (no owner) just marks itself closed.
        Idempotent, and a no-op after normal completion.
        """
        if self.closed:
            return
        owner = self.owner
        if owner is not None:
            owner.abandon(self, now)
        else:
            self.closed = True

    # -- retransmit rollback ---------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the trail; pass to :meth:`rewind` to discard later marks."""
        return len(self.marks)

    def rewind(self, checkpoint: int) -> None:
        """Drop every mark recorded after ``checkpoint``.

        Used by the LTL engine to erase the doomed traversal of a frame
        that is about to be retransmitted.
        """
        del self.marks[checkpoint:]

    # -- reduction --------------------------------------------------------

    @property
    def last_time(self) -> float:
        """Time of the newest mark (``t0`` when no marks were taken)."""
        return self.marks[-1][1] if self.marks else self.t0

    def durations(self) -> List[Tuple[Any, float]]:
        """Per-mark ``(stage, duration)`` pairs, in tap order.

        The same stage may appear multiple times (e.g. ``link.wire``
        once per physical hop); callers that want per-stage totals
        should aggregate.  By construction
        ``sum(d for _, d in durations()) == last_time - t0``.
        """
        out: List[Tuple[Any, float]] = []
        prev = self.t0
        for stage, at in self.marks:
            out.append((stage, at - prev))
            prev = at
        return out

    def totals(self) -> dict:
        """Aggregate :meth:`durations` into per-stage sums."""
        acc: dict = {}
        prev = self.t0
        for stage, at in self.marks:
            acc[stage] = acc.get(stage, 0.0) + (at - prev)
            prev = at
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hops = ", ".join(
            f"{getattr(s, 'value', s)}@{t:.9f}" for s, t in self.marks[:6]
        )
        more = "..." if len(self.marks) > 6 else ""
        return f"TraceContext(t0={self.t0:.9f}, [{hops}{more}])"
