"""Sharded multi-process simulation (conservative time windows).

Runs one logical datacenter simulation as N shard processes, each owning
a disjoint set of racks (TORs) with its own :class:`Environment`,
calendar-queue schedule and SHA-256-derived child RNG streams.  Shards
synchronize with a conservative window protocol: every shard simulates
the same time window, then all exchange the boundary frames produced in
it, then the next window starts.

**Partitioning.** Hosts are partitioned by TOR: all hosts under one TOR
land in the same shard, so same-rack traffic never crosses a shard seam
and every cross-shard packet traverses at least the L1 tier.

**Lookahead.** The window protocol is correct as long as no frame sent
inside a window can arrive inside the same window.  The bound is the
minimum un-simulated path latency across any seam: propagation plus
switch forwarding delays from the sender's TOR uplink to the receiver's
QSFP (serialization and queueing jitter only add to it).  With hosts
partitioned by TOR that minimum is the same-pod cross-TOR path
(~2.8 us) when a pod is split between shards, and the cheapest
cross-pod path otherwise.  Windows advance adaptively: the next window
ends at ``min(next unsimulated event across all shards) + lookahead``,
so idle stretches between paced messages cost one barrier, not
thousands.

**The seam.** Outbound cross-shard packets are captured at the source
host's fabric attachment — before they enter the (source-local) switch
tree — and shipped to the owning shard as serialized
:class:`~repro.ltl.frames.LtlFrame` wire bytes between windows.  The
destination shard models the full network path analytically
(:class:`BoundaryPathModel`): the deterministic component sum of the
real per-hop models plus shard-local background-jitter draws.  This is
exact for an uncongested fabric (the Fig. 10 idle-latency regime);
cross-shard congestion (shared queue buildup, PFC, ECN on seam paths)
is *not* modeled — shard within a congestion domain if that matters.

**Determinism.** Every component derives its streams by name from the
global seed, so a shard's event sequence is a pure function of
(spec, seed) — per-shard digests are bit-stable across runs.  Boundary
jitter is drawn from a per-shard stream; it matches the single-process
run in distribution, not draw-for-draw, so merged percentiles agree
within tolerance rather than exactly.  Note that two shards touching
the same pod derive identical jitter streams for their copies of that
pod's L1 switch — marginals are unaffected, but cross-shard samples
through shared aggregation tiers are correlated.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.metrics import LatencyRecorder
from ..ltl.frames import LtlFrame
from ..net.addressing import host_index_to_coords, mac_to_host_index
from ..net.topology import TopologyConfig
from .kernel import Environment
from .randomness import RandomStreams, _derive_seed

_INF = float("inf")

# Boundary-record payload encodings (mirrors LtlFrame.to_wire's tags,
# but at the packet level: non-LTL payloads may also cross the seam).
_KIND_LTL = "ltl"
_KIND_RAW = "raw"
_KIND_PICKLE = "pickle"


# ----------------------------------------------------------------------
# Workload description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PingTask:
    """One measured sender: ``messages`` LTL pings to ``dst``.

    Matches the paper's Fig. 10 methodology — low-rate request/ACK
    round trips, RTT taken inside LTL.  Each source host must appear in
    at most one task (RTT samples are collected per source engine).
    """

    src: int
    dst: int
    messages: int = 60
    gap: float = 100e-6
    start: float = 0.0
    payload_bytes: int = 64


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
@dataclass
class ShardPlan:
    """TOR-level partition of the active hosts into shards."""

    num_shards: int
    #: (pod, tor) -> shard id, for every TOR holding an active host.
    tor_to_shard: Dict[Tuple[int, int], int]
    #: Per-shard sorted active host lists (disjoint, covering).
    hosts: List[List[int]]
    #: host -> shard for all active hosts.
    host_to_shard: Dict[int, int]

    def shard_of_host(self, host: int) -> int:
        return self.host_to_shard[host]

    def is_boundary(self, a: int, b: int) -> bool:
        return self.host_to_shard[a] != self.host_to_shard[b]


def plan_shards(config: TopologyConfig, active_hosts: Iterable[int],
                num_shards: int) -> ShardPlan:
    """Partition ``active_hosts`` by TOR, round-robin over sorted TORs.

    Every host lands in exactly one shard and all hosts under one TOR
    share a shard (rack-local traffic never crosses a seam).  Shard
    count is clamped to the number of distinct active TORs.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    by_tor: Dict[Tuple[int, int], List[int]] = {}
    for host in sorted(set(active_hosts)):
        if not 0 <= host < config.total_hosts:
            raise ValueError(f"host {host} outside the datacenter")
        coords = host_index_to_coords(
            host, config.hosts_per_tor, config.tors_per_pod)
        by_tor.setdefault((coords.pod, coords.tor), []).append(host)
    if not by_tor:
        raise ValueError("no active hosts to partition")
    num_shards = min(num_shards, len(by_tor))
    tor_to_shard: Dict[Tuple[int, int], int] = {}
    hosts: List[List[int]] = [[] for _ in range(num_shards)]
    host_to_shard: Dict[int, int] = {}
    for i, tor in enumerate(sorted(by_tor)):
        shard = i % num_shards
        tor_to_shard[tor] = shard
        for host in by_tor[tor]:
            hosts[shard].append(host)
            host_to_shard[host] = shard
    return ShardPlan(num_shards=num_shards, tor_to_shard=tor_to_shard,
                     hosts=hosts, host_to_shard=host_to_shard)


# ----------------------------------------------------------------------
# Boundary path physics
# ----------------------------------------------------------------------
def _prop(distance_m: float) -> float:
    from ..net.links import propagation_delay
    return propagation_delay(distance_m)


def _pod_distance_m(config: TopologyConfig, seed: int, pod: int) -> float:
    """Per-pod fiber run to L2 — same arithmetic as
    :meth:`repro.net.topology.ThreeTierTopology.pod_distance_m`, exposed
    here so the lookahead can be computed without building a topology."""
    lat = config.latency
    u = (_derive_seed(seed, "pod-distance", pod) & 0xFFFFFF) / float(1 << 24)
    return lat.l1_l2_distance_min_m + u * (
        lat.l1_l2_distance_max_m - lat.l1_l2_distance_min_m)


class BoundaryPathModel:
    """Analytic latency of the un-simulated path across a shard seam.

    Covers the span the capture skips: from the source host's fabric
    attachment (packet fully formed, MAC tx already paid) to the
    destination shell's TOR-facing delivery point (MAC rx paid there).
    The component sum matches the real per-hop models — propagation,
    per-switch forwarding latency, per-link serialization — plus one
    background-jitter draw per switch traversal from ``rng``.
    """

    def __init__(self, config: TopologyConfig, seed: int,
                 rng: Optional[Any] = None):
        self.config = config
        self.seed = seed
        self.rng = rng

    def _coords(self, host: int):
        cfg = self.config
        return host_index_to_coords(
            host, cfg.hosts_per_tor, cfg.tors_per_pod)

    def _hops(self, src: int, dst: int
              ) -> Tuple[Tuple[str, ...], Tuple[Tuple[float, float], ...]]:
        """(switch tiers, ((link distance_m, rate_bps), ...)) on the path."""
        lat = self.config.latency
        ca, cb = self._coords(src), self._coords(dst)
        if ca.same_tor(cb):
            raise ValueError(
                f"hosts {src} and {dst} share a TOR; TOR-partitioned "
                f"shards never ship rack-local traffic across the seam")
        host = (lat.host_tor_distance_m, lat.host_rate_bps)
        tor_l1 = (lat.tor_l1_distance_m, lat.tor_uplink_rate_bps)
        if ca.same_pod(cb):
            return (("tor", "l1", "tor"), (host, tor_l1, tor_l1, host))
        up = (_pod_distance_m(self.config, self.seed, ca.pod),
              lat.l1_uplink_rate_bps)
        down = (_pod_distance_m(self.config, self.seed, cb.pod),
                lat.l1_uplink_rate_bps)
        return (("tor", "l1", "l2", "l1", "tor"),
                (host, tor_l1, up, down, tor_l1, host))

    def min_delay(self, src: int, dst: int) -> float:
        """Deterministic floor of the seam path: propagation + switch
        forwarding only (serialization and jitter are non-negative
        extras).  This is what the lookahead bound is built from."""
        lat = self.config.latency
        tiers, links = self._hops(src, dst)
        delay = sum(_prop(d) for d, _rate in links)
        for tier in tiers:
            delay += getattr(lat, f"{tier}_latency")
        return delay

    def delay(self, src: int, dst: int, wire_bytes: int) -> float:
        """One sampled traversal: floor + serialization + jitter draws."""
        from ..sim.units import serialization_delay
        tiers, links = self._hops(src, dst)
        delay = self.min_delay(src, dst)
        for _d, rate in links:
            delay += serialization_delay(wire_bytes, rate)
        background = self.config.background
        if background is not None and self.rng is not None:
            for tier in tiers:
                delay += background.sample(tier, self.rng)
        return delay


def compute_lookahead(config: TopologyConfig, plan: ShardPlan,
                      seed: int) -> float:
    """Minimum seam-path latency over the partition's actual seams.

    ``inf`` for a single shard (no seam: one process, no windows
    needed).  With any pod split between shards the bound is the
    same-pod cross-TOR floor; otherwise it is the cheapest cross-pod
    path between two pods living in different shards.
    """
    if plan.num_shards <= 1:
        return _INF
    lat = config.latency
    base = (2 * _prop(lat.host_tor_distance_m)
            + 2 * _prop(lat.tor_l1_distance_m)
            + 2 * lat.tor_latency + lat.l1_latency)
    pods_by_shard: Dict[int, set] = {}
    pod_shards: Dict[int, set] = {}
    for (pod, _tor), shard in plan.tor_to_shard.items():
        pods_by_shard.setdefault(shard, set()).add(pod)
        pod_shards.setdefault(pod, set()).add(shard)
    if any(len(shards) > 1 for shards in pod_shards.values()):
        return base
    # Whole pods per shard: every seam crosses L2.  The floor minimizes
    # d(src pod) + d(dst pod) over cross-shard pod pairs, which is the
    # two smallest per-shard minima (from distinct shards, trivially).
    minima = sorted(
        min(_prop(_pod_distance_m(config, seed, pod)) for pod in pods)
        for pods in pods_by_shard.values())
    return (base + lat.l1_latency + lat.l2_latency
            + minima[0] + minima[1])


# ----------------------------------------------------------------------
# Boundary records
# ----------------------------------------------------------------------
@dataclass
class BoundaryRecord:
    """One captured cross-shard packet, in process-portable form."""

    send_time: float
    src: int
    dst: int
    traffic_class: int
    kind: str
    blob: bytes
    payload_bytes: int
    src_port: int = 0
    dst_port: int = 0
    has_udp: bool = True


def _encode_payload(payload: Any) -> Tuple[str, bytes]:
    if isinstance(payload, LtlFrame):
        return _KIND_LTL, payload.to_wire()
    if isinstance(payload, (bytes, bytearray)):
        return _KIND_RAW, bytes(payload)
    return _KIND_PICKLE, pickle.dumps(
        payload, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_payload(kind: str, blob: bytes) -> Any:
    if kind == _KIND_LTL:
        return LtlFrame.from_wire(blob)
    if kind == _KIND_RAW:
        return blob
    return pickle.loads(blob)


# ----------------------------------------------------------------------
# Worker-side world
# ----------------------------------------------------------------------
@dataclass
class ShardSpec:
    """Everything a shard worker needs to build its world."""

    shard_id: int
    seed: int
    topology: Optional[TopologyConfig]
    local_hosts: List[int]
    host_to_shard: Dict[int, int]
    #: Global, ordered (a, b, vc) LTL connection list — every shard
    #: replays the same allocation sequence so connection ids agree
    #: across the seam without any control-plane exchange.
    connections: List[Tuple[int, int, int]]
    workload: List[PingTask]
    streaming: bool = False


class ShardWorld:
    """One shard's simulation: a :class:`ConfigurableCloud` restricted
    to the shard's hosts, with seam capture and injection attached.

    Usable in-process (tests drive several worlds by hand) or inside a
    worker process via :func:`_worker_main`.
    """

    def __init__(self, spec: ShardSpec):
        from ..core.cloud import ConfigurableCloud
        self.spec = spec
        self.cloud = ConfigurableCloud(
            topology=spec.topology, seed=spec.seed)
        self.env: Environment = self.cloud.env
        self.outbox: List[BoundaryRecord] = []
        self.local = set(spec.local_hosts)
        #: Remote hosts this shard holds an LTL connection with.
        self.boundary_peers: set = set()
        self.boundary_sent = 0
        self.boundary_received = 0
        self.path = BoundaryPathModel(
            self.cloud.fabric.config, spec.seed,
            rng=self.cloud.streams.stream(
                f"shard:{spec.shard_id}:boundary"))
        for host in sorted(self.local):
            self.cloud.add_server(host, enroll=False)
            self._capture(host)
        self._establish_connections()
        for task in spec.workload:
            if task.src in self.local:
                self._start_ping(task)

    # -- seam capture ---------------------------------------------------
    def _capture(self, host: int) -> None:
        """Divert packets bound for non-local hosts into the outbox."""
        attachment = self.cloud.shell(host).attachment
        original = attachment.send
        env = self.env
        local = self.local
        outbox = self.outbox

        def send(packet, _original=original, _host=host):
            dst = mac_to_host_index(packet.eth.dst_mac)
            if dst in local:
                return _original(packet)
            kind, blob = _encode_payload(packet.payload)
            udp = packet.udp
            outbox.append(BoundaryRecord(
                send_time=env.now, src=_host, dst=dst,
                traffic_class=packet.traffic_class, kind=kind, blob=blob,
                payload_bytes=packet.payload_bytes,
                src_port=udp.src_port if udp is not None else 0,
                dst_port=udp.dst_port if udp is not None else 0,
                has_udp=udp is not None))
            self.boundary_sent += 1
            return True

        attachment.send = send

    def inject(self, records: Sequence[BoundaryRecord]) -> None:
        """Schedule incoming boundary packets for local delivery.

        The arrival time is the record's send time plus one sampled
        seam-path traversal; by the lookahead invariant it is never in
        the shard's past.
        """
        fabric = self.cloud.fabric
        topo = fabric.topology
        from ..net.packet import make_udp_packet
        for record in records:
            if record.dst not in self.local:
                raise ValueError(
                    f"record for host {record.dst} routed to shard "
                    f"{self.spec.shard_id}")
            payload = _decode_payload(record.kind, record.blob)
            packet = make_udp_packet(
                src_index=record.src, dst_index=record.dst,
                src_ip=topo.ip_of(record.src),
                dst_ip=topo.ip_of(record.dst),
                src_mac=topo.mac_of(record.src),
                dst_mac=topo.mac_of(record.dst),
                src_port=record.src_port, dst_port=record.dst_port,
                payload=payload, payload_bytes=record.payload_bytes,
                traffic_class=record.traffic_class)
            packet.created_at = record.send_time
            arrival = record.send_time + self.path.delay(
                record.src, record.dst, packet.wire_bytes)
            self.env.call_at(arrival, fabric._dispatch, record.dst, packet)
            self.boundary_received += 1

    def drain_outbox(self) -> List[BoundaryRecord]:
        out, self.outbox[:] = list(self.outbox), ()
        return out

    # -- deterministic connection establishment -------------------------
    def _establish_connections(self) -> None:
        """Replay the global ``connect_pair`` allocation sequence.

        Every shard walks the same ordered pair list and advances one
        allocation counter per engine — local engines get real table
        entries, remote ones just advance their shadow counter.  Fresh
        :class:`~repro.ltl.connection.ConnectionTable` allocation is
        sequential from 0, so the shadow ids equal the ids the owning
        shard installs, and frames crossing the seam carry connection
        ids the receiver already has in its tables.
        """
        from ..ltl.connection import (ReceiveConnectionState,
                                      SendConnectionState)
        from ..net.dcqcn import DcqcnRateController
        send_ctr: Dict[int, int] = {}
        recv_ctr: Dict[int, int] = {}

        def alloc(counters: Dict[int, int], host: int) -> int:
            i = counters.get(host, 0)
            counters[host] = i + 1
            return i

        for a, b, vc in self.spec.connections:
            # Allocation order matches repro.ltl.engine.connect_pair:
            # recv@b, send@a, recv@a, send@b.
            recv_b = alloc(recv_ctr, b)
            send_a = alloc(send_ctr, a)
            recv_a = alloc(recv_ctr, a)
            send_b = alloc(send_ctr, b)
            cross = self.spec.host_to_shard.get(a) != \
                self.spec.host_to_shard.get(b)
            for (local_host, remote_host, my_send, my_recv,
                 peer_send) in ((a, b, send_a, recv_a, send_b),
                                (b, a, send_b, recv_b, send_a)):
                if local_host not in self.local:
                    continue
                shell = self.cloud.shell(local_host)
                if shell.ltl is None:
                    raise RuntimeError(
                        f"host {local_host} has no LTL block")
                peer_recv = recv_b if local_host == a else recv_a
                shell.ltl.recv_table.install(
                    my_recv, ReceiveConnectionState(
                        connection_id=my_recv, remote_host=remote_host,
                        remote_connection_id=peer_send))
                shell.ltl.send_table.install(
                    my_send, SendConnectionState(
                        connection_id=my_send, remote_host=remote_host,
                        remote_connection_id=peer_recv, vc=vc,
                        dcqcn=DcqcnRateController(
                            shell.ltl.config.dcqcn)))
                shell._send_conns[remote_host] = my_send
                if cross:
                    self.boundary_peers.add(remote_host)

    # -- workload -------------------------------------------------------
    def _start_ping(self, task: PingTask) -> None:
        shell = self.cloud.shell(task.src)
        payload = b"\x00" * task.payload_bytes

        def driver(env, _shell=shell, _task=task, _payload=payload):
            if _task.start > 0:
                yield env.timeout(_task.start)
            for _ in range(_task.messages):
                _shell.remote_send(_task.dst, _payload,
                                   _task.payload_bytes)
                yield env.timeout(_task.gap)

        self.env.process(driver(self.env),
                         name=f"ping-{task.src}-{task.dst}")

    # -- results --------------------------------------------------------
    def run_window(self, until: float) -> None:
        self.env.run(until=until)

    def peek(self) -> float:
        return self.env.peek()

    def collect(self) -> Dict[str, Any]:
        """Per-shard metrics: per-tier recorders + a stability digest."""
        topo = self.cloud.fabric.topology
        tiers: Dict[str, LatencyRecorder] = {}
        digest = hashlib.sha256()
        sample_count = 0
        for task in self.spec.workload:
            if task.src not in self.local:
                continue
            samples = self.cloud.shell(task.src).ltl.rtt_samples()
            tier = topo.tier_between(task.src, task.dst)
            recorder = tiers.get(tier)
            if recorder is None:
                recorder = tiers[tier] = LatencyRecorder(
                    tier, streaming=self.spec.streaming)
            recorder.extend(samples)
            sample_count += len(samples)
            digest.update(struct.pack("!II", task.src, task.dst))
            digest.update(struct.pack(f"!{len(samples)}d", *samples))
        return {
            "shard_id": self.spec.shard_id,
            "tiers": tiers,
            "samples": sample_count,
            "digest": digest.hexdigest(),
            "events_processed": self.env.events_processed,
            "boundary_sent": self.boundary_sent,
            "boundary_received": self.boundary_received,
        }


def _worker_main(conn, spec: ShardSpec) -> None:
    """Child-process loop: build the world, serve window commands."""
    try:
        world = ShardWorld(spec)
        conn.send(("ready", spec.shard_id))
        while True:
            message = conn.recv()
            command = message[0]
            if command == "window":
                _, until, records = message
                world.inject(records)
                world.run_window(until)
                conn.send(("done", spec.shard_id, world.peek(),
                           world.drain_outbox()))
            elif command == "finish":
                conn.send(("result", world.collect()))
                return
            else:
                raise ValueError(f"unknown command {command!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
        raise


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class ShardResult:
    """Merged view of one sharded run."""

    tiers: Dict[str, LatencyRecorder]
    per_shard: List[Dict[str, Any]]
    plan: ShardPlan
    lookahead: float
    windows: int
    horizon: float
    boundary_records: int = 0

    @property
    def events_processed(self) -> int:
        return sum(s["events_processed"] for s in self.per_shard)

    @property
    def total_samples(self) -> int:
        return sum(s["samples"] for s in self.per_shard)

    def summary(self) -> Dict[str, Any]:
        return {
            "shards": self.plan.num_shards,
            "lookahead_us": self.lookahead * 1e6,
            "windows": self.windows,
            "horizon_s": self.horizon,
            "boundary_records": self.boundary_records,
            "events_processed": self.events_processed,
            "tiers": {tier: rec.summary()
                      for tier, rec in sorted(self.tiers.items())},
        }


def _merge_tiers(per_shard: List[Dict[str, Any]],
                 streaming: bool) -> Dict[str, LatencyRecorder]:
    merged: Dict[str, LatencyRecorder] = {}
    for result in per_shard:
        for tier, recorder in result["tiers"].items():
            into = merged.get(tier)
            if into is None:
                into = merged[tier] = LatencyRecorder(
                    tier, streaming=streaming)
            into.merge(recorder)
    return merged


def _workload_horizon(workload: Sequence[PingTask],
                      drain: float = 2e-3) -> float:
    return max(t.start + t.messages * t.gap for t in workload) + drain


def default_connections(workload: Sequence[PingTask]
                        ) -> List[Tuple[int, int, int]]:
    """One vc-0 connection pair per ping task, in task order."""
    return [(t.src, t.dst, 0) for t in workload]


class ShardDriver:
    """Launch shard workers, run the window protocol, merge metrics."""

    def __init__(self, topology: Optional[TopologyConfig] = None,
                 seed: int = 0, num_shards: int = 4,
                 streaming: bool = False):
        self.topology = topology
        self.seed = seed
        self.num_shards = num_shards
        self.streaming = streaming

    def _specs(self, plan: ShardPlan,
               connections: List[Tuple[int, int, int]],
               workload: Sequence[PingTask]) -> List[ShardSpec]:
        validate_workload(workload)
        return [ShardSpec(
            shard_id=shard, seed=self.seed, topology=self.topology,
            local_hosts=plan.hosts[shard],
            host_to_shard=plan.host_to_shard,
            connections=connections, workload=list(workload),
            streaming=self.streaming) for shard in range(plan.num_shards)]

    def run(self, workload: Sequence[PingTask],
            connections: Optional[List[Tuple[int, int, int]]] = None,
            horizon: Optional[float] = None) -> ShardResult:
        import multiprocessing as mp
        if not workload:
            raise ValueError("empty workload")
        connections = connections if connections is not None \
            else default_connections(workload)
        horizon = horizon if horizon is not None \
            else _workload_horizon(workload)
        config = self.topology or TopologyConfig()
        active = sorted({t.src for t in workload}
                        | {t.dst for t in workload}
                        | {h for a, b, _vc in connections for h in (a, b)})
        plan = plan_shards(config, active, self.num_shards)
        lookahead = compute_lookahead(config, plan, self.seed)
        specs = self._specs(plan, connections, workload)

        if plan.num_shards == 1:
            # Degenerate partition: no seam, no processes to spawn.
            world = ShardWorld(specs[0])
            world.run_window(horizon)
            per_shard = [world.collect()]
            return ShardResult(
                tiers=_merge_tiers(per_shard, self.streaming),
                per_shard=per_shard, plan=plan, lookahead=lookahead,
                windows=1, horizon=horizon)

        ctx = mp.get_context()
        pipes, workers = [], []
        try:
            for spec in specs:
                parent, child = ctx.Pipe()
                worker = ctx.Process(
                    target=_worker_main, args=(child, spec),
                    name=f"shard-{spec.shard_id}", daemon=True)
                worker.start()
                child.close()
                pipes.append(parent)
                workers.append(worker)
            for pipe in pipes:
                self._expect(pipe, "ready")

            pending: List[List[BoundaryRecord]] = \
                [[] for _ in range(plan.num_shards)]
            peeks = [0.0] * plan.num_shards
            now = 0.0
            windows = 0
            boundary_records = 0
            while now < horizon:
                bound = min(min(peeks), min(
                    (record.send_time + lookahead
                     for batch in pending for record in batch),
                    default=_INF))
                if bound == _INF:
                    break  # globally idle: nothing will ever happen
                until = min(horizon, max(bound, now) + lookahead)
                for shard, pipe in enumerate(pipes):
                    pipe.send(("window", until, pending[shard]))
                    pending[shard] = []
                for pipe in pipes:
                    reply = self._expect(pipe, "done")
                    _tag, shard, peek, outbox = reply
                    peeks[shard] = peek
                    for record in outbox:
                        dst_shard = plan.host_to_shard.get(record.dst)
                        if dst_shard is None:
                            raise ValueError(
                                f"boundary record for inactive host "
                                f"{record.dst}")
                        pending[dst_shard].append(record)
                        boundary_records += 1
                now = until
                windows += 1

            per_shard = []
            for pipe in pipes:
                pipe.send(("finish",))
            for pipe in pipes:
                per_shard.append(self._expect(pipe, "result")[1])
            per_shard.sort(key=lambda s: s["shard_id"])
        finally:
            for pipe in pipes:
                pipe.close()
            for worker in workers:
                worker.join(timeout=30)
                if worker.is_alive():
                    worker.terminate()
                    worker.join()

        return ShardResult(
            tiers=_merge_tiers(per_shard, self.streaming),
            per_shard=per_shard, plan=plan, lookahead=lookahead,
            windows=windows, horizon=horizon,
            boundary_records=boundary_records)

    @staticmethod
    def _expect(pipe, tag: str):
        reply = pipe.recv()
        if reply[0] == "error":
            raise RuntimeError(f"shard worker failed:\n{reply[1]}")
        if reply[0] != tag:
            raise RuntimeError(
                f"protocol violation: expected {tag!r}, got {reply[0]!r}")
        return reply


def validate_workload(workload: Sequence[PingTask]) -> None:
    """RTT attribution requires one measured task per source engine."""
    sources = [t.src for t in workload]
    if len(sources) != len(set(sources)):
        raise ValueError("each host may be the source of only one "
                         "PingTask (RTT samples are per source engine)")


# ----------------------------------------------------------------------
# Single-process reference
# ----------------------------------------------------------------------
def run_reference(workload: Sequence[PingTask],
                  connections: Optional[List[Tuple[int, int, int]]] = None,
                  topology: Optional[TopologyConfig] = None,
                  seed: int = 0, horizon: Optional[float] = None,
                  streaming: bool = False) -> Dict[str, LatencyRecorder]:
    """The same workload in one process, on the real fabric end to end.

    The comparison baseline for sharded runs: identical topology, seed
    derivation, connection order and ping schedule — the only
    difference is that no path is replaced by the analytic seam model.
    """
    from ..core.cloud import ConfigurableCloud
    validate_workload(workload)
    connections = connections if connections is not None \
        else default_connections(workload)
    horizon = horizon if horizon is not None \
        else _workload_horizon(workload)
    cloud = ConfigurableCloud(topology=topology, seed=seed)
    active = sorted({t.src for t in workload} | {t.dst for t in workload}
                    | {h for a, b, _vc in connections for h in (a, b)})
    for host in active:
        cloud.add_server(host, enroll=False)
    for a, b, vc in connections:
        cloud.connect(a, b, vc=vc)

    env = cloud.env
    for task in workload:
        shell = cloud.shell(task.src)
        payload = b"\x00" * task.payload_bytes

        def driver(env, _shell=shell, _task=task, _payload=payload):
            if _task.start > 0:
                yield env.timeout(_task.start)
            for _ in range(_task.messages):
                _shell.remote_send(_task.dst, _payload,
                                   _task.payload_bytes)
                yield env.timeout(_task.gap)

        env.process(driver(env), name=f"ping-{task.src}-{task.dst}")
    env.run(until=horizon)

    topo = cloud.fabric.topology
    tiers: Dict[str, LatencyRecorder] = {}
    for task in workload:
        tier = topo.tier_between(task.src, task.dst)
        recorder = tiers.get(tier)
        if recorder is None:
            recorder = tiers[tier] = LatencyRecorder(
                tier, streaming=streaming)
        recorder.extend(cloud.shell(task.src).ltl.rtt_samples())
    return tiers
