"""Event primitives for the discrete-event simulation kernel.

The kernel (:mod:`repro.sim.kernel`) advances virtual time by popping the
earliest scheduled :class:`Event` from its calendar queue and running its
callbacks.  Processes — Python generators that ``yield`` events — are
resumed whenever the event they are waiting on succeeds or fails.

The design intentionally mirrors a minimal SimPy: ``Environment.process``
wraps a generator into a :class:`Process`, ``Environment.timeout`` creates a
pre-scheduled :class:`Timeout`, and arbitrary events can be created, succeeded
and failed by user code.

Hot-path notes
--------------
Everything here sits under every simulated packet, frame and RPC, so the
implementation trades a little elegance for constant-factor speed:

* every event class uses ``__slots__`` (no per-event ``__dict__``),
* trigger paths call ``env._push(time, priority, event)`` — the kernel's
  raw calendar-queue insert — instead of going through
  ``Environment.schedule``,
* :class:`Deferred` is a two-slot pseudo-event carrying a bare callback for
  one-shot "run ``fn(*args)`` after ``delay``" work, so subsystems don't
  need to spin up a whole :class:`Process` (generator + bootstrap event)
  just to apply a fixed latency,
* a :class:`Process` is itself the callback registered on the event it
  waits on (``__call__`` aliases :meth:`Process._resume`): appending the
  process avoids allocating a fresh bound method per resume, and lets
  the kernel's inlined run loop recognize process waiters and resume
  them without an extra call frame.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .kernel import Environment

#: Sentinel stored in :attr:`Event._value` while the event is still pending.
PENDING = object()

#: Priority of normal events on the schedule (re-exported by the kernel).
NORMAL = 1
#: Priority of urgent events (processed before normal ones at equal time).
URGENT = 0


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available on the exception.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Deferred:
    """A one-shot scheduled callback: the cheapest possible schedule entry.

    The kernel runs ``fn(*args)`` when the entry's time arrives — no
    callback list, no success/failure state, nothing to wait on.  Created
    via :meth:`Environment.call_later` / :meth:`Environment.call_at`; used
    throughout the network and LTL hot paths where the old code spawned a
    whole :class:`Process` just to ``yield timeout(d)`` and call a function.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., None], args: Tuple = ()):
        self.fn = fn
        self.args = args

    def __repr__(self) -> str:
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Deferred {name}>"


class _Bootstrap:
    """Duck-typed stand-in for the event a process is first resumed with."""

    __slots__ = ()
    _ok = True
    _value = None


_BOOT = _Bootstrap()


class Event:
    """A condition that may succeed (with a value) or fail (with an error).

    Events move through three states: *pending* (just created), *triggered*
    (scheduled on the event queue but callbacks not yet run) and *processed*
    (callbacks executed).  Callbacks are plain callables receiving the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callbacks invoked (in order) when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is discarded)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded, False if it failed."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception carried by the event."""
        if self._value is PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event as successful with an optional ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._push(env._now, NORMAL, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed, carrying ``exception``.

        When a failed event is processed with no waiters the exception is
        re-raised by the kernel unless a waiter marked it *defused*.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        env = self.env
        env._push(env._now, NORMAL, self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds after a fixed delay in virtual time."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__: timeouts are the single most created
        # object in any simulation.  (Environment.timeout additionally
        # inlines this whole constructor plus the queue insert.)
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._push(env._now + delay, NORMAL, self)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running coroutine of simulation events.

    A process wraps a generator that yields :class:`Event` objects.  The
    process itself is an event: it succeeds with the generator's return value
    or fails with any uncaught exception, so processes can wait on each other.

    The process object is registered *itself* as the callback on whatever
    event it waits on (it is callable; calling it resumes the generator).
    The kernel's inlined run loop relies on this to recognize and resume
    process waiters without any intermediate frames — keep
    :meth:`_resume` in sync with that inline copy when changing either.
    """

    __slots__ = ("generator", "_send", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        self.generator = generator
        self._send = generator.send
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when ready).
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator at the current simulation time.
        # A Deferred is enough — nothing ever waits on the bootstrap event.
        env._push(env._now, NORMAL, Deferred(self._resume, (_BOOT,)))

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated")
        if self._target is None:
            raise SimulationError(f"{self!r} is not waiting; cannot interrupt")
        # Detach from the event currently waited on, then schedule a
        # poisoned resumption.
        target = self._target
        if target.callbacks is not None and self in target.callbacks:
            target.callbacks.remove(self)
        self._target = None
        poison = Event(self.env)
        poison.callbacks.append(self)
        poison._ok = False
        poison._value = Interrupt(cause)
        poison._defused = True
        self.env.schedule(poison)

    def _continue_processed(self, result: Event) -> None:
        """Re-arm on an event that has already been processed.

        Waiting on a processed event resumes the process immediately (at
        the current time, in FIFO turn) via a relay event carrying the
        original outcome.
        """
        env = self.env
        immediate = Event.__new__(Event)
        immediate.env = env
        immediate.callbacks = [self]
        immediate._ok = result._ok
        immediate._value = result._value
        immediate._defused = False
        if not result._ok:
            result._defused = True
            immediate._defused = True
        env._push(env._now, NORMAL, immediate)
        self._target = immediate

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``.

        Mirrored by the inlined dispatch in :meth:`Environment.run`; any
        behavioral change here must be made there too.
        """
        env = self.env
        env._active_process = self
        self._target = None
        try:
            if event._ok:
                result = self._send(event._value)
            else:
                event._defused = True
                result = self.generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._ok = True
            self._value = stop.value
            env._push(env._now, NORMAL, self)
            return
        except BaseException as exc:
            env._active_process = None
            self._ok = False
            self._value = exc
            env._push(env._now, NORMAL, self)
            return
        env._active_process = None

        try:
            callbacks = result.callbacks
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded non-event {result!r}"
            ) from None
        if callbacks is None:
            # Already processed: resume immediately at the current time.
            self._continue_processed(result)
        else:
            callbacks.append(self)
            self._target = result
            if not result._ok and result._value is not PENDING:
                result._defused = True

    #: Calling a process delivers an event outcome to it, so the process
    #: object itself can sit in an event's callback list.
    __call__ = _resume

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class AnyOf(Event):
    """Succeeds when any of the given events succeeds (or one fails)."""

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                self._on_child(event)
                break
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok:
            # Only events whose callbacks have run count as "done":
            # Timeout carries its value from creation, so `triggered`
            # alone would wrongly include still-pending timeouts.
            done = {e: e._value for e in self.events
                    if (e.processed or e is event) and e._ok}
            self.succeed(done)
        else:
            event._defused = True
            self.fail(event._value)


class AllOf(Event):
    """Succeeds when all of the given events have succeeded."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self.events = list(events)
        self._remaining = 0
        for event in self.events:
            if event.callbacks is None:
                if not event._ok:
                    event._defused = True
                    self.fail(event._value)
                    return
                continue
            self._remaining += 1
            event.callbacks.append(self._on_child)
        if self._remaining == 0 and not self.triggered:
            self.succeed({e: e._value for e in self.events})

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e._value for e in self.events})
