"""Discrete-event simulation kernel underlying every simulated subsystem.

Quick example::

    from repro.sim import Environment

    env = Environment()

    def pinger(env):
        yield env.timeout(1.0)
        return "pong"

    proc = env.process(pinger(env))
    env.run()
    assert proc.value == "pong"
"""

from .events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .kernel import NORMAL, URGENT, EmptySchedule, Environment
from .randomness import RandomStreams, percentile
from .resources import Container, PriorityStore, Resource, Store
from .trace import TraceRecord, Tracer
from . import units

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "EmptySchedule",
    "Environment",
    "Event",
    "Interrupt",
    "NORMAL",
    "URGENT",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "percentile",
    "units",
]
