"""Execution tracing for simulations.

Debugging a distributed protocol inside a discrete-event simulation is
miserable without visibility.  :class:`Tracer` hooks an Environment's
``step`` to record a bounded trail of processed events — timestamp,
event type, and (for process resumptions) the process name — without
touching simulation semantics.

This is a *kernel* instrument (which events ran).  For *datapath*
attribution — where one request's microseconds went, hop by hop — use
:mod:`repro.trace` instead.

Usage::

    env = Environment()
    tracer = Tracer(env, capacity=1000)
    ... run ...
    for record in tracer.records[-10:]:
        print(record)
    tracer.uninstall()
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Optional

from .kernel import Environment


@dataclass(frozen=True)
class TraceRecord:
    """One processed event."""

    time: float
    kind: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.time * 1e6:12.3f} us] {self.kind:<10} {self.detail}"


class Tracer:
    """Bounded event-trail recorder attached to an Environment."""

    def __init__(self, env: Environment, capacity: int = 10_000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.counts: Counter = Counter()
        self._original_step = env.step
        self._installed = True
        env.step = self._traced_step  # type: ignore[method-assign]

    def _describe(self) -> Optional[TraceRecord]:
        entry = self.env.peek_entry()
        if entry is None:
            return None
        when, _prio, _seq, event = entry
        kind = type(event).__name__
        detail = getattr(event, "name", "") or repr(event)
        return TraceRecord(time=when, kind=kind, detail=detail)

    def _traced_step(self) -> None:
        record = self._describe()
        if record is not None:
            self.records.append(record)
            self.counts[record.kind] += 1
        self._original_step()

    # ------------------------------------------------------------------
    def uninstall(self) -> None:
        """Detach from the environment (idempotent)."""
        if self._installed:
            self.env.step = self._original_step  # type: ignore
            self._installed = False

    def summary(self) -> dict:
        """Event-kind histogram of everything traced so far."""
        return dict(self.counts)

    def since(self, time: float) -> list:
        """Records at or after ``time`` (within the retained window)."""
        return [r for r in self.records if r.time >= time]
