"""Unit helpers.

All simulation code keeps time in **seconds** and sizes in **bytes**.  These
constants/converters keep call sites readable: ``3 * us`` instead of
``3e-6``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------
SECOND = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9

# ---------------------------------------------------------------------------
# Size
# ---------------------------------------------------------------------------
BYTE = 1
KB = 1024
MB = 1024 ** 2
GB = 1024 ** 3

# ---------------------------------------------------------------------------
# Rates (bits per second)
# ---------------------------------------------------------------------------
Kbps = 1e3
Mbps = 1e6
Gbps = 1e9


def seconds_to_us(t: float) -> float:
    """Convert seconds to microseconds."""
    return t / US


def us_to_seconds(t: float) -> float:
    """Convert microseconds to seconds."""
    return t * US


def serialization_delay(nbytes: int, rate_bps: float) -> float:
    """Time to clock ``nbytes`` onto a link of ``rate_bps`` bits/second."""
    if rate_bps <= 0:
        raise ValueError("link rate must be positive")
    return (nbytes * 8) / rate_bps


def cycles_to_seconds(cycles: float, freq_hz: float) -> float:
    """Convert a cycle count at ``freq_hz`` into seconds."""
    if freq_hz <= 0:
        raise ValueError("frequency must be positive")
    return cycles / freq_hz
