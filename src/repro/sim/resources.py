"""Shared resources for simulation processes.

* :class:`Store` — an unbounded/bounded FIFO of items; ``put``/``get`` return
  events a process can yield on.
* :class:`PriorityStore` — a Store whose ``get`` returns the smallest item.
* :class:`Resource` — counted resource with FIFO request queue (models a CPU
  core pool, an FPGA role slot, a DMA channel, ...).
* :class:`Container` — continuous quantity (credits, bytes of buffer).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional, TYPE_CHECKING

from .events import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Environment


class StorePut(Event):
    """Pending ``put`` into a :class:`Store`; succeeds when space exists."""

    __slots__ = ("item",)

    def __init__(self, env: "Environment", item: Any):
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    """Pending ``get`` from a :class:`Store`; succeeds with the item."""
    __slots__ = ()


class Store:
    """FIFO item store with optional capacity.

    ``put(item)`` and ``get()`` both return events.  A ``put`` on a full
    store blocks until a ``get`` frees a slot; a ``get`` on an empty store
    blocks until an item arrives.
    """

    def __init__(self, env: "Environment",
                 capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; returns an event that succeeds on acceptance."""
        event = StorePut(self.env, item)
        self._put_waiters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Request an item; returns an event succeeding with the item."""
        event = StoreGet(self.env)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: pop an item immediately or return None."""
        if not self.items:
            return None
        item = self._pop_item()
        self._dispatch()
        return item

    # -- internals -----------------------------------------------------
    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _pop_item(self) -> Any:
        return self.items.popleft()

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Admit puts while there is capacity.
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.popleft()
                self._store_item(put.item)
                put.succeed()
                progress = True
            # Satisfy gets while items exist.
            while self._get_waiters and self.items:
                get = self._get_waiters.popleft()
                get.succeed(self._pop_item())
                progress = True


class PriorityStore(Store):
    """A store whose ``get`` always yields the smallest item (heap order)."""

    def __init__(self, env: "Environment",
                 capacity: float = float("inf")):
        super().__init__(env, capacity)
        self.items: List[Any] = []  # type: ignore[assignment]

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _pop_item(self) -> Any:
        return heapq.heappop(self.items)


class ResourceRequest(Event):
    """Pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "released")

    def __init__(self, env: "Environment", resource: "Resource"):
        super().__init__(env)
        self.resource = resource
        self.released = False

    def release(self) -> None:
        """Give the slot back (idempotent)."""
        self.resource.release(self)

    # Context-manager sugar so processes can write
    # ``with resource.request() as req: yield req``.
    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """Counted resource with a FIFO wait queue.

    ``capacity`` slots exist; ``request()`` returns an event that succeeds
    when a slot is granted.  Slots are returned via ``release`` (or the
    request's context manager).
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self.queue: Deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        event = ResourceRequest(self.env, self)
        self.queue.append(event)
        self._grant()
        return event

    def release(self, request: ResourceRequest) -> None:
        if request.released:
            return
        request.released = True
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            # Cancelled before being granted.
            self.queue.remove(request)
            if not request.triggered:
                request._defused = True
            return
        self._grant()

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.popleft()
            self.users.append(request)
            request.succeed()


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, env: "Environment", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(env)
        self.amount = amount


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, env: "Environment", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(env)
        self.amount = amount


class Container:
    """A continuous quantity with blocking put/get.

    Used for credit pools and byte-counted buffers.  ``get(n)`` blocks until
    at least ``n`` units are present; ``put(n)`` blocks until the level would
    not exceed capacity.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._put_waiters: Deque[ContainerPut] = deque()
        self._get_waiters: Deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        event = ContainerPut(self.env, amount)
        if amount > self.capacity:
            event.fail(SimulationError(
                f"put of {amount} exceeds container capacity {self.capacity}"))
            return event
        self._put_waiters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> ContainerGet:
        event = ContainerGet(self.env, amount)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters and \
                    self._level + self._put_waiters[0].amount <= self.capacity:
                put = self._put_waiters.popleft()
                self._level += put.amount
                put.succeed()
                progress = True
            if self._get_waiters and \
                    self._get_waiters[0].amount <= self._level:
                get = self._get_waiters.popleft()
                self._level -= get.amount
                get.succeed(get.amount)
                progress = True
