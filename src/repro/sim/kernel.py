"""The discrete-event simulation environment.

:class:`Environment` owns virtual time and the event heap.  All simulated
subsystems (network switches, LTL engines, FPGA roles, ranking servers)
schedule work here.  Time units are **seconds** throughout the library;
helpers for microseconds/nanoseconds live in :mod:`repro.sim.units`.

Performance
-----------
``run()`` is the innermost loop of every experiment, so it inlines the
work of :meth:`Environment.step` (heap pop, callback dispatch) with all
hot names bound locally.  The inlined loop is only used while ``step`` has
not been replaced — :class:`~repro.sim.trace.Tracer` installs an
instance-level ``step`` wrapper, and subclasses may override it; both fall
back to the semantically identical ``step()``-per-event loop.

One-shot latency callbacks (apply delay *d*, then call ``fn``) should use
:meth:`Environment.call_later` rather than spawning a process: a
:class:`~repro.sim.events.Deferred` costs one heap entry and no generator.

Instrumentation reading ``env.now`` must never write back: trace taps
(:mod:`repro.trace`) only record timestamps — they schedule no events
and draw no randomness, so enabling them cannot perturb seeded runs.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Iterable, List, Optional

from .events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Deferred,
    Event,
    Process,
    ProcessGenerator,
    SimulationError,
    Timeout,
)

__all__ = ["EmptySchedule", "Environment", "NORMAL", "URGENT"]


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Execution environment for a discrete-event simulation.

    The environment keeps a heap of ``(time, priority, seq, event)`` tuples.
    ``seq`` is a monotonically increasing tie-breaker so that events scheduled
    at the same instant are processed in FIFO order, which keeps runs
    deterministic.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []
        self._seq = count()
        self._active_process: Optional[Process] = None
        #: Total events (including deferred callbacks) processed so far —
        #: the numerator of every events/sec benchmark.
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    def peek(self) -> float:
        """Return the time of the next scheduled event, or ``inf``."""
        return self._queue[0][0] if self._queue else float("inf")

    # ------------------------------------------------------------------
    # Event creation
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event owned by this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new process from a generator of events."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event succeeding when any of ``events`` succeeds."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event succeeding when all of ``events`` have succeeded."""
        return AllOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Place a triggered event on the heap ``delay`` seconds from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event))

    def call_later(self, delay: float, fn: Callable[..., None],
                   *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time.

        The fast path for one-shot latency modeling: one slotted heap entry,
        no :class:`Event` machinery, nothing to wait on.  Use a process (or
        ``timeout``) when something must be able to wait on the result.
        """
        if delay < 0:
            raise ValueError(f"negative call_later delay: {delay}")
        heapq.heappush(
            self._queue,
            (self._now + delay, NORMAL, next(self._seq), Deferred(fn, args)))

    def call_at(self, when: float, fn: Callable[..., None],
                *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(
                f"call_at({when}) is in the past (now={self._now})")
        heapq.heappush(
            self._queue, (when, NORMAL, next(self._seq), Deferred(fn, args)))

    def step(self) -> None:
        """Process the single next event; raise :class:`EmptySchedule` if none."""
        try:
            when, _prio, _seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events remain") from None
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        self.events_processed += 1
        if event.__class__ is Deferred:
            event.fn(*event.args)
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody handled: surface the error.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run until
        that simulation time) or an :class:`Event` (run until it triggers and
        return its value).
        """
        if until is None:
            stop_event = None
            stop_time = float("inf")
        elif isinstance(until, Event):
            stop_event = until
            stop_time = float("inf")
            if stop_event.callbacks is None:
                # Already processed.
                if stop_event._ok:
                    return stop_event._value
                # Re-raising counts as handling: defuse so teardown (or a
                # later run) doesn't surface the same failure twice.
                stop_event._defused = True
                raise stop_event._value
        else:
            stop_event = None
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) is in the past (now={self._now})")

        if stop_event is not None:
            done = []

            def _mark(ev: Event) -> None:
                done.append(ev)

            stop_event.callbacks.append(_mark)
            while not done:
                try:
                    self.step()
                except EmptySchedule:
                    raise SimulationError(
                        "simulation ended before the awaited event triggered"
                    ) from None
            if stop_event._ok:
                return stop_event._value
            stop_event._defused = True
            raise stop_event._value

        # Tight loop: inline step() unless it has been wrapped (Tracer
        # assigns an instance attribute) or overridden by a subclass.
        if "step" not in self.__dict__ and type(self).step is Environment.step:
            queue = self._queue
            pop = heapq.heappop
            events_seen = 0
            try:
                while queue and queue[0][0] <= stop_time:
                    when, _prio, _seq, event = pop(queue)
                    if when < self._now:
                        raise SimulationError("event scheduled in the past")
                    self._now = when
                    events_seen += 1
                    if event.__class__ is Deferred:
                        event.fn(*event.args)
                        continue
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
            finally:
                self.events_processed += events_seen
        else:
            while self._queue and self.peek() <= stop_time:
                self.step()
        if stop_time != float("inf"):
            self._now = stop_time
        return None
