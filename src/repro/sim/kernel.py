"""The discrete-event simulation environment.

:class:`Environment` owns virtual time and the event schedule.  All
simulated subsystems (network switches, LTL engines, FPGA roles, ranking
servers) schedule work here.  Time units are **seconds** throughout the
library; helpers for microseconds/nanoseconds live in
:mod:`repro.sim.units`.

Scheduler
---------
The schedule is a *calendar queue* specialized for the dominant
short-horizon timers (serialization delays, LTL retransmits, jitter),
with three layers ordered cheapest-first:

* a one-entry **head slot** holding the global minimum.  In chain-style
  workloads (an event's handler schedules the very next event) pushes
  and pops never touch a heap at all: arming the slot is one compare,
  popping it is one load.
* a dict of **calendar buckets** keyed by ``int(time / bucket_width)``
  for entries due within ``horizon`` seconds.  Future buckets are plain
  appended lists; a bucket is lazily ``heapify``-ed when it becomes the
  *active* (earliest) bucket, so out-of-order inserts into a future
  bucket cost one ``list.append``.  A small heap of bucket ids finds
  the earliest non-empty bucket without scanning.
* an **overflow heap** for entries beyond the horizon (reconnect
  backoffs, coarse experiment phases).  Overflow entries never migrate;
  extraction min-merges the active bucket head against the overflow
  head.

Every entry is a ``(time, priority, seq, event)`` tuple and every layer
orders entries by exactly that tuple, so FIFO determinism at equal
timestamps is preserved no matter which layer an entry lands in —
seeded runs are bit-identical to the historical single-``heapq``
scheduler (``Environment(scheduler="heapq")`` keeps that fallback alive:
it routes everything to the overflow heap).

Performance
-----------
``run()`` is the innermost loop of every experiment, so it inlines the
work of :meth:`Environment.step` (pop, callback dispatch) with all hot
names bound locally, plus two dispatch fast paths:

* an event whose only waiter is a :class:`~repro.sim.events.Process` is
  resumed inline (no bound-method allocation, no extra frame);
* when the event a process just yielded is itself the next event due
  (the common ``while True: yield timeout(d)`` shape), the loop chains
  straight into the next resume without re-entering the generic
  dispatcher.

The inlined loop is only used while ``step`` has not been replaced —
:class:`~repro.sim.trace.Tracer` installs an instance-level ``step``
wrapper, and subclasses may override it; both fall back to the
semantically identical ``step()``-per-event loop.

One-shot latency callbacks (apply delay *d*, then call ``fn``) should
use :meth:`Environment.call_later` rather than spawning a process: a
:class:`~repro.sim.events.Deferred` costs one schedule entry and no
generator.

Instrumentation reading ``env.now`` must never write back: trace taps
(:mod:`repro.trace`) only record timestamps — they schedule no events
and draw no randomness, so enabling them cannot perturb seeded runs.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterable, Optional, Tuple

from .events import (
    NORMAL,
    PENDING,
    URGENT,
    AllOf,
    AnyOf,
    Deferred,
    Event,
    Process,
    ProcessGenerator,
    SimulationError,
    Timeout,
)

__all__ = ["EmptySchedule", "Environment", "NORMAL", "URGENT"]

_INF = float("inf")

#: Priority of a bounded run's stop sentinel: sorts after every URGENT
#: and NORMAL event scheduled at the same instant, so a run(until=t)
#: still processes everything due at exactly ``t`` first.
_LAST = 2


class _StopRun(BaseException):
    """Internal control-flow signal: a bounded run reached its horizon.

    Derives from :class:`BaseException` so simulation code catching
    ``Exception`` can never swallow it (it is only ever raised in the
    kernel's own dispatch loop, never inside user generators).
    """


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Execution environment for a discrete-event simulation.

    The environment keeps a calendar queue of ``(time, priority, seq,
    event)`` tuples (see the module docstring for the layer layout).
    ``seq`` is a monotonically increasing tie-breaker so that events
    scheduled at the same instant are processed in FIFO order, which
    keeps runs deterministic.

    ``bucket_width`` (seconds) sets the calendar resolution and
    ``horizon`` (seconds) how far ahead of *now* an entry may land in a
    bucket before spilling to the overflow heap.  ``scheduler="heapq"``
    disables the calendar (every entry goes to the overflow heap) — a
    pure binary-heap fallback used to cross-check determinism.
    """

    def __init__(self, initial_time: float = 0.0, *,
                 bucket_width: float = 4e-6,
                 horizon: float = 512e-6,
                 scheduler: str = "calendar"):
        if scheduler not in ("calendar", "heapq"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self._now = float(initial_time)
        self._seq = 0
        #: Head slot: the single earliest entry, or None.
        self._head: Optional[Tuple] = None
        #: Calendar buckets: bucket id -> list of entries.
        self._cal: dict = {}
        #: Heap of non-empty bucket ids.
        self._cal_ids: list = []
        #: Bucket id currently maintained as a heap (-1: none).
        self._active_bid = -1
        #: Binary heap for beyond-horizon (and pre-epoch) entries.
        self._overflow: list = []
        #: Entries in buckets + overflow (the head slot not included).
        self._ssize = 0
        #: Cached min entry of buckets + overflow (None: recompute).
        self._smin: Optional[Tuple] = None
        self.scheduler = scheduler
        self.bucket_width = bucket_width
        self._width_inv = 1.0 / bucket_width
        # horizon < 0 makes every entry overflow: plain-heapq fallback.
        self._horizon = -1.0 if scheduler == "heapq" else float(horizon)
        #: Identity token of the currently armed bounded-run sentinel
        #: (None outside a bounded run).  A sentinel left behind by a
        #: run that terminated with an exception no-ops on mismatch.
        self._stop_token: Optional[object] = None
        self._active_process: Optional[Process] = None
        #: Total events (including deferred callbacks) processed so far —
        #: the numerator of every events/sec benchmark.  Macro-event
        #: sites that collapse several formerly scheduled hops into one
        #: callback add the subsumed count here so the metric (and the
        #: seed-pinned Fig. 10 event count) stays comparable across
        #: kernel generations.
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    def __len__(self) -> int:
        """Number of scheduled entries (all layers)."""
        return self._ssize + (self._head is not None)

    def peek(self) -> float:
        """Return the time of the next scheduled event, or ``inf``."""
        head = self._head
        if head is not None:
            return head[0]
        if self._ssize:
            smin = self._smin
            if smin is None:
                smin = self._structure_min()
            return smin[0]
        return _INF

    def peek_entry(self) -> Optional[Tuple]:
        """The next ``(time, priority, seq, event)`` entry, or None.

        Read-only introspection for instruments (e.g. the kernel
        :class:`~repro.sim.trace.Tracer`); does not consume the entry.
        """
        head = self._head
        if head is not None:
            return head
        if self._ssize:
            smin = self._smin
            if smin is None:
                smin = self._structure_min()
            return smin
        return None

    # ------------------------------------------------------------------
    # Event creation
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event owned by this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Timeout.__init__ + push: timeouts are the single most
        # created object in any simulation.
        t = Timeout.__new__(Timeout)
        t.env = self
        t.callbacks = []
        t._value = value
        t._ok = True
        t._defused = False
        t.delay = delay
        when = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        entry = (when, NORMAL, seq, t)
        head = self._head
        if head is None:
            if self._ssize == 0 or \
                    entry < (self._smin or self._structure_min()):
                self._head = entry
                return t
        elif entry < head:
            self._insert(head)
            self._head = entry
            return t
        self._insert(entry)
        return t

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new process from a generator of events."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event succeeding when any of ``events`` succeeds."""
        return AnyOf(self, list(events))

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event succeeding when all of ``events`` have succeeded."""
        return AllOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _push(self, when: float, priority: int, event: Any) -> None:
        """Schedule ``event`` at absolute time ``when`` (no validation)."""
        seq = self._seq
        self._seq = seq + 1
        entry = (when, priority, seq, event)
        head = self._head
        if head is None:
            # Arm the head slot only when the new entry provably beats
            # everything queued, so `head <= structure min` stays true.
            if self._ssize == 0 or \
                    entry < (self._smin or self._structure_min()):
                self._head = entry
                return
        elif entry < head:
            self._insert(head)
            self._head = entry
            return
        self._insert(entry)

    def _insert(self, entry: Tuple) -> None:
        """Place ``entry`` in a calendar bucket or the overflow heap."""
        self._ssize += 1
        smin = self._smin
        if smin is not None and entry < smin:
            self._smin = entry
        when = entry[0]
        if when - self._now > self._horizon or when < 0.0:
            heappush(self._overflow, entry)
            return
        bid = int(when * self._width_inv)
        bucket = self._cal.get(bid)
        if bucket is None:
            self._cal[bid] = [entry]
            heappush(self._cal_ids, bid)
        elif bid == self._active_bid:
            heappush(bucket, entry)
        else:
            bucket.append(entry)

    def _structure_min(self) -> Optional[Tuple]:
        """Compute and cache the min entry of buckets + overflow."""
        cand = None
        cal_ids = self._cal_ids
        cal = self._cal
        while cal_ids:
            bid = cal_ids[0]
            bucket = cal.get(bid)
            if not bucket:
                heappop(cal_ids)
                cal.pop(bid, None)
                continue
            if bid != self._active_bid:
                # Earliest bucket changed (possibly backwards: a new
                # near-term entry may land before a bucket that was
                # already activated).  Re-heapify: appends since the
                # last activation may have broken the heap invariant.
                heapify(bucket)
                self._active_bid = bid
            cand = bucket[0]
            break
        overflow = self._overflow
        if overflow:
            other = overflow[0]
            if cand is None or other < cand:
                cand = other
        self._smin = cand
        return cand

    def _extract(self) -> Tuple:
        """Pop the min entry of buckets + overflow (``_ssize`` > 0)."""
        cand = None
        bid = -1
        bucket = None
        cal_ids = self._cal_ids
        cal = self._cal
        while cal_ids:
            bid = cal_ids[0]
            bucket = cal.get(bid)
            if not bucket:
                heappop(cal_ids)
                cal.pop(bid, None)
                continue
            if bid != self._active_bid:
                heapify(bucket)
                self._active_bid = bid
            cand = bucket[0]
            break
        overflow = self._overflow
        if overflow and (cand is None or overflow[0] < cand):
            entry = heappop(overflow)
        else:
            entry = heappop(bucket)
            if not bucket:
                heappop(cal_ids)
                del cal[bid]
                self._active_bid = -1
        self._ssize -= 1
        self._smin = None
        return entry

    def _remove_entry(self, entry: Tuple) -> None:
        """Remove a specific scheduled ``entry`` from whichever layer
        holds it (the entry is known to be queued).

        ``seq`` values are unique, so tuple equality implies identity.
        Only the bounded-run sentinel cleanup uses this — it is O(bucket)
        and never on the hot path.
        """
        if self._head is entry:
            self._head = None
            return
        when = entry[0]
        bid = int(when * self._width_inv)
        bucket = self._cal.get(bid)
        if bucket is not None:
            try:
                bucket.remove(entry)
            except ValueError:
                bucket = None  # not in its natural bucket: overflow
            else:
                if not bucket:
                    del self._cal[bid]
                    # A stale id may linger in _cal_ids; _extract and
                    # _structure_min skip ids with missing buckets.
                # list.remove broke the heap invariant if this bucket
                # was the active (heapified) one; force a re-heapify on
                # next access.
                if self._active_bid == bid:
                    self._active_bid = -1
        if bucket is None:
            self._overflow.remove(entry)
            heapify(self._overflow)
        self._ssize -= 1
        self._smin = None

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Place a triggered event on the schedule ``delay`` s from now."""
        self._push(self._now + delay, priority, event)

    def call_later(self, delay: float, fn: Callable[..., None],
                   *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time.

        The fast path for one-shot latency modeling: one slotted
        schedule entry, no :class:`Event` machinery, nothing to wait on.
        Use a process (or ``timeout``) when something must be able to
        wait on the result.  (``_push`` is inlined: with macro-events
        this is the kernel's most-trafficked insert path.)
        """
        if delay < 0:
            raise ValueError(f"negative call_later delay: {delay}")
        when = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        entry = (when, NORMAL, seq, Deferred(fn, args))
        head = self._head
        if head is None:
            if self._ssize == 0 or \
                    entry < (self._smin or self._structure_min()):
                self._head = entry
                return
        elif entry < head:
            self._insert(head)
            self._head = entry
            return
        self._insert(entry)

    def call_at(self, when: float, fn: Callable[..., None],
                *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self._now:
            raise ValueError(
                f"call_at({when}) is in the past (now={self._now})")
        self._push(when, NORMAL, Deferred(fn, args))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event; raise :class:`EmptySchedule` if none."""
        entry = self._head
        if entry is not None:
            self._head = None
        elif self._ssize:
            entry = self._extract()
        else:
            raise EmptySchedule("no scheduled events remain")
        when = entry[0]
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        self.events_processed += 1
        event = entry[3]
        if event.__class__ is Deferred:
            event.fn(*event.args)
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failed event nobody handled: surface the error.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run until
        that simulation time) or an :class:`Event` (run until it triggers and
        return its value).
        """
        if until is None:
            stop_event = None
            stop_time = _INF
        elif isinstance(until, Event):
            stop_event = until
            stop_time = _INF
            if stop_event.callbacks is None:
                # Already processed.
                if stop_event._ok:
                    return stop_event._value
                # Re-raising counts as handling: defuse so teardown (or a
                # later run) doesn't surface the same failure twice.
                stop_event._defused = True
                raise stop_event._value
        else:
            stop_event = None
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) is in the past (now={self._now})")

        if stop_event is not None:
            done = []

            def _mark(ev: Event) -> None:
                done.append(ev)

            stop_event.callbacks.append(_mark)
            while not done:
                try:
                    self.step()
                except EmptySchedule:
                    raise SimulationError(
                        "simulation ended before the awaited event triggered"
                    ) from None
            if stop_event._ok:
                return stop_event._value
            stop_event._defused = True
            raise stop_event._value

        # Fallback: step() has been wrapped (Tracer assigns an instance
        # attribute) or overridden by a subclass — run it per event.
        # The probe reads ``self.step`` rather than ``self.__dict__``:
        # merely touching ``__dict__`` materializes the managed dict on
        # CPython 3.11+, permanently de-specializing every attribute
        # access on this instance (measured: -35% run() throughput).
        if getattr(self.step, "__func__", None) is not Environment.step:
            while (self._head is not None or self._ssize) and \
                    self.peek() <= stop_time:
                self.step()
            if stop_time != _INF:
                self._now = stop_time
            return None

        # Tight loop: inline step() with all hot names bound locally.
        extract = self._extract
        push = self._push
        # Processed-event count via sequence accounting: every seq
        # draw enters the schedule exactly once, so pops = draws
        # minus the change in queued entries.  Saves an interpreted
        # increment per event in the hottest loop of the repo.
        seq0 = self._seq
        size0 = self._ssize + (self._head is not None)
        sentinel: Optional[Tuple] = None
        if stop_time != _INF:
            # Bounded run.  Comparing ``entry[0] > stop_time`` on every
            # pop costs ~40% of loop throughput (measured: 1.25M vs
            # 2.0M events/s on the timer chain benchmark), so instead a
            # sentinel is scheduled *at* the stop time with a priority
            # that sorts after every simulation event due at that
            # instant; dispatching it raises :class:`_StopRun`, ending
            # the run.  The head-slot invariant (head <= structure min)
            # guarantees the chain fast path below can never overtake
            # the sentinel.  The entry tuple is kept so a run that
            # terminates with an exception can remove its own sentinel
            # in the ``finally`` below — left behind, it would be a
            # phantom schedule entry (``len``/``peek`` would report a
            # nonexistent event at ``stop_time``) that the next bounded
            # run would pop and miscount.  The identity token
            # additionally keeps any stale sentinel from stopping a
            # later run.
            token = self._stop_token = object()
            seq = self._seq
            self._seq = seq + 1
            sentinel = (stop_time, _LAST, seq,
                        Deferred(self._raise_stop, (token,)))
            head = self._head
            if head is None:
                if self._ssize == 0 or \
                        sentinel < (self._smin or self._structure_min()):
                    self._head = sentinel
                else:
                    self._insert(sentinel)
            elif sentinel < head:
                self._insert(head)
                self._head = sentinel
            else:
                self._insert(sentinel)
        consumed = False
        try:
            while True:
                entry = self._head
                if entry is not None:
                    self._head = None
                elif self._ssize:
                    entry = extract()
                else:
                    break
                self._now = entry[0]
                event = entry[3]
                if event.__class__ is Deferred:
                    event.fn(*event.args)
                    continue
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1 and \
                        (proc := callbacks[0]).__class__ is Process:
                    # Inlined Process._resume (keep in sync with
                    # events.Process._resume): resuming a process is
                    # the second-hottest operation after Deferred
                    # dispatch, and the inline saves a bound-method
                    # allocation plus a frame per event.
                    while True:
                        self._active_process = proc
                        proc._target = None
                        try:
                            if event._ok:
                                result = proc._send(event._value)
                            else:
                                event._defused = True
                                result = proc.generator.throw(
                                    event._value)
                        except StopIteration as stop:
                            self._active_process = None
                            proc._ok = True
                            proc._value = stop.value
                            push(self._now, NORMAL, proc)
                            break
                        except BaseException as exc:
                            self._active_process = None
                            proc._ok = False
                            proc._value = exc
                            push(self._now, NORMAL, proc)
                            break
                        self._active_process = None
                        try:
                            rcb = result.callbacks
                        except AttributeError:
                            raise SimulationError(
                                f"process {proc.name!r} yielded "
                                f"non-event {result!r}") from None
                        if rcb is None:
                            proc._continue_processed(result)
                            break
                        sole = not rcb
                        rcb.append(proc)
                        proc._target = result
                        if not result._ok and \
                                result._value is not PENDING:
                            result._defused = True
                        # Chain: if the event the process just
                        # yielded is itself the next event due (and
                        # has no other waiter), dispatch it without
                        # re-entering the generic loop.
                        head = self._head
                        if head is None or head[3] is not result \
                                or not sole:
                            break
                        self._head = None
                        self._now = head[0]
                        result.callbacks = None
                        event = result
                    continue
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        except _StopRun:
            consumed = True
        finally:
            self._stop_token = None
            if sentinel is not None:
                if not consumed:
                    # An exception escaped mid-window: pull the unspent
                    # sentinel back out so repeated bounded runs stay
                    # exactly equivalent to one long run.
                    self._remove_entry(sentinel)
                # The sentinel's own seq draw is not a simulation event
                # (whether it was dispatched or surgically removed).
                seq0 += 1
            self.events_processed += (self._seq - seq0) - (
                self._ssize + (self._head is not None) - size0)
        if stop_time != _INF:
            self._now = stop_time
        return None

    def _raise_stop(self, token: object) -> None:
        """Dispatch target of the bounded-run stop sentinel."""
        if token is self._stop_token:
            raise _StopRun
