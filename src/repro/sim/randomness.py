"""Deterministic random-number streams.

Every stochastic component takes a :class:`RandomStreams` (or a stream drawn
from one) so that whole-cloud simulations are reproducible from a single
seed, and so that changing the amount of randomness one component consumes
does not perturb any other component's draws.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(master_seed: int, *parts: object) -> int:
    """Stable 48-bit child seed from a master seed and a name path.

    Built on SHA-256 rather than ``hash()``: Python salts string hashing
    per process (PYTHONHASHSEED), so ``hash((seed, name))`` silently broke
    the "reproducible from a single seed" contract — every fresh
    interpreter got different child streams for the same master seed.
    """
    key = repr((int(master_seed),) + parts).encode()
    return int.from_bytes(hashlib.sha256(key).digest()[:6], "big")


class RandomStreams:
    """A registry of independent, named ``random.Random`` streams.

    Streams are derived from the master seed and the stream name, so the
    same (seed, name) pair always yields the same sequence regardless of
    creation order — and, since the derivation is a stable hash, regardless
    of interpreter process and PYTHONHASHSEED.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream registered under ``name``."""
        if name not in self._streams:
            # Derive a child seed that depends on both master seed and name.
            self._streams[name] = random.Random(_derive_seed(self.seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child registry namespaced under ``name``."""
        return RandomStreams(_derive_seed(self.seed, "spawn", name))


def percentile(sorted_values, q: float) -> float:
    """Percentile (0..100) of a pre-sorted sequence, linear interpolation.

    Kept here (not numpy) so hot simulation paths avoid array conversion for
    small samples; large-sample analysis code uses numpy directly.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (n - 1)
    lo = int(rank)
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    a, b = float(sorted_values[lo]), float(sorted_values[hi])
    if frac == 0.0 or a == b:
        return a
    # Clamp: a + (b-a)*frac can land an ulp outside [a, b].
    return min(max(a + (b - a) * frac, a), b)
