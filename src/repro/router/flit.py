"""Flits and messages for the Elastic Router.

Messages entering the ER are packetized into flits (head / body / tail; a
single-flit message is head+tail).  The head flit carries routing state:
destination port and virtual channel.  Flit size is parameterizable, per
the paper ("fully parameterized in the number of ports, virtual channels,
flit and phit sizes, and buffer capacities").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, List, Optional

_message_ids = count()


@dataclass
class Message:
    """A variable-length payload crossing the ER between two ports."""

    src_port: int
    dst_port: int
    vc: int
    payload: Any
    length_bytes: int
    message_id: int = field(default_factory=lambda: next(_message_ids))
    injected_at: float = 0.0
    delivered_at: float = 0.0
    #: Absolute expiry (seconds of sim time) of the carried request, or
    #: ``None`` for no deadline.  The head flit carries it like routing
    #: state; the ER drops expired messages at delivery.
    deadline: Optional[float] = None
    #: Optional :class:`repro.trace.TraceContext`; rides the head flit's
    #: message like ``deadline`` does.  Not part of the flit format.
    trace: Any = None

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise ValueError("message length must be positive")


@dataclass
class Flit:
    """One flow-control unit of a message."""

    message: Message
    index: int
    is_head: bool
    is_tail: bool

    @property
    def vc(self) -> int:
        return self.message.vc

    @property
    def dst_port(self) -> int:
        return self.message.dst_port

    def __repr__(self) -> str:
        kind = ("H" if self.is_head else "") + ("T" if self.is_tail else "")
        return (f"<Flit m{self.message.message_id}[{self.index}]{kind or 'B'} "
                f"vc={self.vc} ->p{self.dst_port}>")


def packetize(message: Message, flit_bytes: int) -> List[Flit]:
    """Split ``message`` into flits of at most ``flit_bytes`` each."""
    if flit_bytes <= 0:
        raise ValueError("flit size must be positive")
    num_flits = max(1, -(-message.length_bytes // flit_bytes))
    return [
        Flit(message=message, index=i, is_head=(i == 0),
             is_tail=(i == num_flits - 1))
        for i in range(num_flits)
    ]
