"""Elastic Router: the intra-FPGA multi-VC message crossbar (paper §V-B).

In an example single-role deployment the ER is instantiated with 4 ports —
PCIe DMA, Role, DRAM, and Remote (to LTL) — which is exactly how
:mod:`repro.fpga.shell` wires it.
"""

from .compose import ComposedNetwork, Envelope, MeshNetwork, RingNetwork
from .credits import (
    CreditError,
    CreditPool,
    ElasticCreditPool,
    StaticCreditPool,
    make_credit_pool,
)
from .elastic_router import DEFAULT_FREQ_HZ, ElasticRouter, RouterStats
from .flit import Flit, Message, packetize

__all__ = [
    "ComposedNetwork",
    "CreditError",
    "CreditPool",
    "DEFAULT_FREQ_HZ",
    "ElasticCreditPool",
    "ElasticRouter",
    "Envelope",
    "Flit",
    "MeshNetwork",
    "Message",
    "RingNetwork",
    "RouterStats",
    "StaticCreditPool",
    "make_credit_pool",
    "packetize",
]
