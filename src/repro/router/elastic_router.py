"""The Elastic Router: an input-buffered, credit-flow-controlled crossbar.

Architecture per the paper (Section V-B):

* N ports x V virtual channels; any port may send to any port, including
  itself (U-turns are supported).
* Input-buffered: flits wait in per-(input-port, VC) queues; credits (one
  per flit) are granted by the input port's :class:`CreditPool`, which may
  be *static* (fixed per VC) or *elastic* (shared pool).
* Wormhole switching with per-VC output locking: once a head flit claims
  an (output, VC) pair, body/tail flits of the same message hold it until
  the tail passes, so messages never interleave within a VC.
* One flit per input port and one flit per output port per cycle;
  arbitration is round-robin per output for fairness.

In the production image the ER runs at 175 MHz (Fig. 5); the default
frequency matches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..sim import Environment, Event
from ..trace.stages import Stage
from .credits import CreditPool, make_credit_pool
from .flit import Flit, Message, packetize

#: Clock frequency of the ER in the production-deployed image (Fig. 5).
DEFAULT_FREQ_HZ = 175e6

# Hoisted Stage members for the per-flit tap sites.
_STAGE_ER_INGRESS = Stage.ER_INGRESS
_STAGE_ER_SWITCH = Stage.ER_SWITCH


@dataclass
class RouterStats:
    """Counters aggregated over a router's lifetime."""

    messages_injected: int = 0
    messages_delivered: int = 0
    flits_switched: int = 0
    cycles: int = 0
    injection_stall_cycles: int = 0
    peak_buffer_occupancy: int = 0
    per_vc_delivered: Dict[int, int] = field(default_factory=dict)
    #: Messages fully switched but dropped at the output port because
    #: their deadline expired in transit (see :mod:`repro.overload`).
    deadline_drops: int = 0


class ElasticRouter:
    """A single ER instance.

    Endpoints attach a delivery callback per port via :meth:`set_endpoint`
    and inject messages with :meth:`send` (an event the caller can yield
    on, succeeding when the last flit has been accepted into the input
    buffer) or fire-and-forget :meth:`inject`.
    """

    def __init__(self, env: Environment, name: str = "er",
                 num_ports: int = 4, num_vcs: int = 2,
                 flit_bytes: int = 32, freq_hz: float = DEFAULT_FREQ_HZ,
                 credit_policy: str = "elastic",
                 credits_per_port: int = 16, reserved_per_vc: int = 1):
        if num_ports < 1:
            raise ValueError("router needs at least one port")
        if num_vcs < 1:
            raise ValueError("router needs at least one VC")
        self.env = env
        self.name = name
        self.num_ports = num_ports
        self.num_vcs = num_vcs
        self.flit_bytes = flit_bytes
        self.cycle_time = 1.0 / freq_hz
        self.credit_policy = credit_policy
        self.stats = RouterStats()

        self._credits: List[CreditPool] = [
            make_credit_pool(credit_policy, credits_per_port, num_vcs,
                             reserved_per_vc)
            for _ in range(num_ports)]
        # Input buffers: [port][vc] -> deque of flits.
        self._buffers: List[List[Deque[Flit]]] = [
            [deque() for _ in range(num_vcs)] for _ in range(num_ports)]
        # Pending injections: [port] -> deque of (flit, done_event, remaining)
        self._pending: List[Deque[Tuple[Flit, Event]]] = [
            deque() for _ in range(num_ports)]
        # Output (port, vc) -> (in_port, vc) holding the wormhole lock.
        self._output_locks: Dict[Tuple[int, int],
                                 Optional[Tuple[int, int]]] = {}
        # Reassembly: (out_port, vc) -> list of flits received so far.
        self._reassembly: Dict[Tuple[int, int], List[Flit]] = {}
        self._endpoints: List[Optional[Callable[[Message], None]]] = \
            [None] * num_ports
        # Round-robin arbitration pointer per output port.
        self._rr: List[int] = [0] * num_ports
        # Clock state machine (macro-event form of the old Store-parked
        # clock process; see _kick for the state/draw correspondence).
        self._running = False
        self._parked = False
        self._stored = False
        # Running flit count across all input buffers, so _step need not
        # re-sum every queue per cycle.
        self._occupancy = 0
        env.call_later(0.0, self._boot)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def set_endpoint(self, port: int,
                     deliver: Callable[[Message], None]) -> None:
        """Attach the consumer of messages arriving at ``port``."""
        self._check_port(port)
        self._endpoints[port] = deliver

    def send(self, src_port: int, dst_port: int, payload: Any,
             length_bytes: int, vc: int = 0,
             deadline: Optional[float] = None,
             trace: Any = None) -> Event:
        """Inject a message; returns an event that succeeds once the last
        flit has entered the input buffer (i.e. the sender may reuse its
        staging space).  ``deadline`` is an absolute expiry instant; a
        message still in flight past it is dropped at delivery and
        counted in ``stats.deadline_drops``.  ``trace`` is an optional
        :class:`~repro.trace.TraceContext`: ``er.ingress`` is tapped when
        the head flit wins a buffer credit, ``er.switch`` when the tail
        flit exits the crossbar."""
        self._check_port(src_port)
        self._check_port(dst_port)
        if not 0 <= vc < self.num_vcs:
            raise ValueError(f"vc {vc} out of range")
        message = Message(src_port=src_port, dst_port=dst_port, vc=vc,
                          payload=payload, length_bytes=length_bytes,
                          injected_at=self.env.now, deadline=deadline,
                          trace=trace)
        flits = packetize(message, self.flit_bytes)
        done = self.env.event()
        for flit in flits:
            self._pending[src_port].append((flit, done))
        self.stats.messages_injected += 1
        self._kick()
        return done

    def inject(self, src_port: int, dst_port: int, payload: Any,
               length_bytes: int, vc: int = 0,
               deadline: Optional[float] = None,
               trace: Any = None) -> Message:
        """Fire-and-forget variant of :meth:`send`."""
        event = self.send(src_port, dst_port, payload, length_bytes, vc,
                          deadline=deadline, trace=trace)
        event._defused = True
        # The message object is reachable through the queued flits.
        return self._pending[src_port][-1][0].message

    def buffer_occupancy(self, port: int) -> int:
        """Flits currently buffered at ``port`` across all VCs."""
        return sum(len(q) for q in self._buffers[port])

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    # The clock used to be a generator parked on a one-slot Store; every
    # wake cost a Process resume plus two Store events.  It is now a
    # macro-event state machine of chained Deferreds.  Determinism note:
    # each transition schedules exactly as many queue entries, at the
    # same instants, as the Store machine did — wakes collapse the old
    # consecutive StorePut+StoreGet pair into one Deferred, and stashed
    # kicks drop the StorePut entirely; both eliminations are no-op pops
    # compensated in ``events_processed`` so seeded event counts stay
    # bit-identical.
    def _kick(self) -> None:
        if self._running or self._stored:
            return
        env = self.env
        if self._parked:
            # Wake the parked clock: one Deferred where the Store drew
            # StorePut (no-op) + StoreGet (resume) back to back.
            self._parked = False
            env.events_processed += 1
            env.call_later(0.0, self._wake)
        else:
            # Clock mid-boot, mid-wake, or bootstrap-running: the Store
            # stashed the kick as an item (one no-op StorePut event) and
            # replayed it as a spurious wake at the next park attempt.
            self._stored = True
            env.events_processed += 1

    def _has_work(self) -> bool:
        return any(self._pending) or self._occupancy > 0

    def _boot(self) -> None:
        """First scheduling decision (the old process bootstrap)."""
        if self._has_work():
            self.env.call_later(self.cycle_time, self._tick)
        elif self._stored:
            self._stored = False
            self.env.call_later(0.0, self._wake)
        else:
            self._parked = True

    def _wake(self) -> None:
        self._running = True
        self.env.call_later(self.cycle_time, self._tick)

    def _tick(self) -> None:
        self._step()
        if self._has_work():
            self.env.call_later(self.cycle_time, self._tick)
        elif self._stored:
            # Replay a kick stashed while the clock was running: the old
            # machine's get() found the stored item and span one more
            # (idle) cycle before parking for real.
            self._stored = False
            self._running = False
            self.env.call_later(0.0, self._wake)
        else:
            self._running = False
            self._parked = True

    def _step(self) -> None:
        """One router cycle: buffer injections, then switch allocation."""
        self.stats.cycles += 1
        self._admit_pending()
        # Occupancy is sampled between admission and switch allocation —
        # the instant buffers are fullest within a cycle.
        if self._occupancy > self.stats.peak_buffer_occupancy:
            self.stats.peak_buffer_occupancy = self._occupancy
        self._allocate_and_switch()

    def _admit_pending(self) -> None:
        """Move at most one pending flit per port into its input buffer."""
        for port in range(self.num_ports):
            pending = self._pending[port]
            if not pending:
                continue
            flit, done = pending[0]
            if self._credits[port].try_acquire(flit.vc):
                pending.popleft()
                self._buffers[port][flit.vc].append(flit)
                self._occupancy += 1
                if flit.is_head and flit.message.trace is not None:
                    # Pending wait + credit stalls up to buffer entry.
                    flit.message.trace.tap(_STAGE_ER_INGRESS, self.env.now)
                if flit.is_tail and not done.triggered:
                    done.succeed()
            else:
                self.stats.injection_stall_cycles += 1

    def _candidates(self) -> Dict[int, List[Tuple[int, int]]]:
        """(in_port, vc) pairs whose head-of-queue flit may proceed,
        grouped by requested output port.

        One pass over the input queues instead of one per output: safe
        because a move for an earlier output can only invalidate the
        head of a queue whose input port is already in ``inputs_used``
        (filtered below) and only touches that output's own lock.
        """
        wants: Dict[int, List[Tuple[int, int]]] = {}
        locks = self._output_locks
        for in_port in range(self.num_ports):
            for vc, queue in enumerate(self._buffers[in_port]):
                if not queue:
                    continue
                flit = queue[0]
                out_port = flit.dst_port
                lock = locks.get((out_port, vc))
                if (lock is None) if flit.is_head else \
                        (lock == (in_port, vc)):
                    wants.setdefault(out_port, []).append((in_port, vc))
        return wants

    def _allocate_and_switch(self) -> None:
        if not self._occupancy:
            return
        wants = self._candidates()
        inputs_used = set()
        for out_port in sorted(wants):
            candidates = [c for c in wants[out_port]
                          if c[0] not in inputs_used]
            if not candidates:
                continue
            # Round-robin: rotate candidate order by the per-output pointer.
            pointer = self._rr[out_port] % (self.num_ports * self.num_vcs)
            candidates.sort(key=lambda c: (
                (c[0] * self.num_vcs + c[1] - pointer)
                % (self.num_ports * self.num_vcs)))
            in_port, vc = candidates[0]
            self._rr[out_port] = (in_port * self.num_vcs + vc + 1)
            inputs_used.add(in_port)
            self._move_flit(in_port, vc, out_port)

    def _move_flit(self, in_port: int, vc: int, out_port: int) -> None:
        flit = self._buffers[in_port][vc].popleft()
        self._occupancy -= 1
        self._credits[in_port].release(vc)
        self.stats.flits_switched += 1
        if flit.is_head:
            self._output_locks[(out_port, vc)] = (in_port, vc)
        self._reassembly.setdefault((out_port, vc), []).append(flit)
        if flit.is_tail:
            self._output_locks[(out_port, vc)] = None
            flits = self._reassembly.pop((out_port, vc))
            self._deliver(out_port, vc, flits)

    def _deliver(self, out_port: int, vc: int, flits: List[Flit]) -> None:
        message = flits[0].message
        if any(f.message is not message for f in flits):
            raise RuntimeError(
                f"{self.name}: interleaved messages on output "
                f"({out_port}, vc {vc})")
        message.delivered_at = self.env.now
        if message.trace is not None:
            # Crossbar residency: buffer entry through tail-flit exit.
            message.trace.tap(_STAGE_ER_SWITCH, self.env.now)
        # Deadline check at the output port: an expired message has
        # already consumed its crossbar bandwidth, but the endpoint's
        # time is still worth saving (drop-and-account).
        if message.deadline is not None and self.env.now > message.deadline:
            self.stats.deadline_drops += 1
            if message.trace is not None:
                # Terminal drop: close the span so the recorder counts
                # the deadline-expired request instead of leaking it.
                message.trace.abandon(self.env.now)
            return
        self.stats.messages_delivered += 1
        self.stats.per_vc_delivered[vc] = \
            self.stats.per_vc_delivered.get(vc, 0) + 1
        endpoint = self._endpoints[out_port]
        if endpoint is not None:
            endpoint(message)

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.num_ports:
            raise ValueError(
                f"port {port} out of range for {self.num_ports}-port router")
