"""Credit allocation policies for Elastic Router input buffers.

Flow control is credit-based, one credit per flit.  The paper's design
point: "Unlike a conventional router that allocates a static number of
flits per VC, the ER supports an elastic policy that allows a pool of
credits to be shared among multiple VCs, which is effective in reducing
the aggregate flit buffering requirements."

Two policies implement a common interface:

* :class:`StaticCreditPool` — each VC owns ``total // num_vcs`` credits.
* :class:`ElasticCreditPool` — each VC reserves a small minimum (to avoid
  starvation/deadlock) and the remainder floats in a shared pool any VC
  may borrow from.
"""

from __future__ import annotations

from typing import List


class CreditError(Exception):
    """Raised on credit protocol violations (double-free, over-acquire)."""


class CreditPool:
    """Interface: acquire/release one credit for a given VC."""

    def try_acquire(self, vc: int) -> bool:
        raise NotImplementedError

    def release(self, vc: int) -> None:
        raise NotImplementedError

    def available(self, vc: int) -> int:
        """Credits a new flit on ``vc`` could claim right now."""
        raise NotImplementedError

    @property
    def in_use(self) -> int:
        raise NotImplementedError


class StaticCreditPool(CreditPool):
    """Conventional fixed per-VC credit allocation."""

    def __init__(self, total_credits: int, num_vcs: int):
        if total_credits < num_vcs:
            raise ValueError("need at least one credit per VC")
        self.num_vcs = num_vcs
        base, extra = divmod(total_credits, num_vcs)
        self._capacity: List[int] = [
            base + (1 if vc < extra else 0) for vc in range(num_vcs)]
        self._used: List[int] = [0] * num_vcs

    def try_acquire(self, vc: int) -> bool:
        if self._used[vc] < self._capacity[vc]:
            self._used[vc] += 1
            return True
        return False

    def release(self, vc: int) -> None:
        if self._used[vc] <= 0:
            raise CreditError(f"release on idle VC {vc}")
        self._used[vc] -= 1

    def available(self, vc: int) -> int:
        return self._capacity[vc] - self._used[vc]

    @property
    def in_use(self) -> int:
        return sum(self._used)


class ElasticCreditPool(CreditPool):
    """Shared credit pool with a reserved minimum per VC.

    A VC first consumes its reserved credits; beyond those it borrows from
    the shared pool.  A release refills the VC's reserved credits *first*
    and only then repays the shared pool: the per-VC reserve is the
    deadlock-avoidance guarantee, so it must be replenished before any
    credit goes back to the communal float.
    """

    def __init__(self, total_credits: int, num_vcs: int,
                 reserved_per_vc: int = 1):
        if reserved_per_vc < 1:
            raise ValueError("each VC needs >= 1 reserved credit "
                             "(deadlock avoidance)")
        if total_credits < num_vcs * reserved_per_vc:
            raise ValueError("total credits below reserved requirement")
        self.num_vcs = num_vcs
        self.reserved_per_vc = reserved_per_vc
        self._reserved_used: List[int] = [0] * num_vcs
        self._shared_capacity = total_credits - num_vcs * reserved_per_vc
        self._shared_used = 0
        #: Per-VC count of credits borrowed from the shared pool.
        self._borrowed: List[int] = [0] * num_vcs

    def try_acquire(self, vc: int) -> bool:
        if self._reserved_used[vc] < self.reserved_per_vc:
            self._reserved_used[vc] += 1
            return True
        if self._shared_used < self._shared_capacity:
            self._shared_used += 1
            self._borrowed[vc] += 1
            return True
        return False

    def release(self, vc: int) -> None:
        # Reserved refills first (paper-faithful): while any reserved
        # credit is outstanding the VC's deadlock-avoidance floor is
        # compromised, so restore it before repaying borrowed shared
        # credits.
        if self._reserved_used[vc] > 0:
            self._reserved_used[vc] -= 1
        elif self._borrowed[vc] > 0:
            self._borrowed[vc] -= 1
            self._shared_used -= 1
        else:
            raise CreditError(f"release on idle VC {vc}")

    def available(self, vc: int) -> int:
        reserved_left = self.reserved_per_vc - self._reserved_used[vc]
        return reserved_left + (self._shared_capacity - self._shared_used)

    @property
    def in_use(self) -> int:
        return sum(self._reserved_used) + self._shared_used

    @property
    def shared_in_use(self) -> int:
        return self._shared_used


def make_credit_pool(policy: str, total_credits: int, num_vcs: int,
                     reserved_per_vc: int = 1) -> CreditPool:
    """Factory keyed by policy name: ``"static"`` or ``"elastic"``."""
    if policy == "static":
        return StaticCreditPool(total_credits, num_vcs)
    if policy == "elastic":
        return ElasticCreditPool(total_credits, num_vcs, reserved_per_vc)
    raise ValueError(f"unknown credit policy: {policy!r}")
