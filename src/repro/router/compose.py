"""Composing multiple Elastic Routers into on-chip networks.

Per the paper, "multiple ERs can be composed to form a larger on-chip
network topology, e.g., a ring or a 2-D mesh."  Each router keeps port 0
as its local endpoint; link ports forward to neighbor routers through a
re-injecting bridge that implements the topology's routing function
(shortest-way for the ring, dimension-order X-then-Y for the mesh).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..sim import Environment
from .elastic_router import ElasticRouter
from .flit import Message

#: Port index reserved for the local endpoint on every composed router.
LOCAL_PORT = 0


@dataclass
class Envelope:
    """Wraps a payload with its final destination router."""

    dst_router: int
    payload: Any


class ComposedNetwork:
    """Base class: a set of ERs joined by forwarding bridges."""

    def __init__(self, env: Environment, num_routers: int, ports_per_router:
                 int, name: str = "noc", **router_kwargs):
        self.env = env
        self.name = name
        self.routers: List[ElasticRouter] = [
            ElasticRouter(env, name=f"{name}-r{i}",
                          num_ports=ports_per_router, **router_kwargs)
            for i in range(num_routers)]
        self._local_handlers: List[
            Optional[Callable[[int, Any], None]]] = [None] * num_routers
        for i, router in enumerate(self.routers):
            router.set_endpoint(
                LOCAL_PORT, lambda msg, idx=i: self._deliver_local(idx, msg))

    # -- topology hooks --------------------------------------------------
    def next_hop_port(self, router_index: int, dst_router: int) -> int:
        """Output port of ``router_index`` on the route toward ``dst``."""
        raise NotImplementedError

    def _wire(self, a: int, a_port: int, b: int, b_port: int) -> None:
        """Connect router ``a`` port ``a_port`` -> router ``b`` (and back).

        Delivery at a link output port re-injects into the neighbor at the
        peer port, so flits buffer where they physically arrive.
        """
        self.routers[a].set_endpoint(
            a_port, lambda msg, nbr=b, arrival=b_port:
            self._forward(nbr, arrival, msg))
        self.routers[b].set_endpoint(
            b_port, lambda msg, nbr=a, arrival=a_port:
            self._forward(nbr, arrival, msg))

    # -- datapath ---------------------------------------------------------
    def set_local_handler(self, router_index: int,
                          handler: Callable[[int, Any], None]) -> None:
        """``handler(router_index, payload)`` is called on final delivery."""
        self._local_handlers[router_index] = handler

    def send(self, src_router: int, dst_router: int, payload: Any,
             length_bytes: int, vc: int = 0):
        """Inject a message at ``src_router``'s local port."""
        envelope = Envelope(dst_router=dst_router, payload=payload)
        if src_router == dst_router:
            out_port = LOCAL_PORT
        else:
            out_port = self.next_hop_port(src_router, dst_router)
        return self.routers[src_router].send(
            LOCAL_PORT, out_port, envelope, length_bytes, vc=vc)

    def _forward(self, router_index: int, arrival_port: int,
                 message: Message) -> None:
        envelope: Envelope = message.payload
        if envelope.dst_router == router_index:
            out_port = LOCAL_PORT
        else:
            out_port = self.next_hop_port(router_index, envelope.dst_router)
        # Re-inject at the neighbor's arrival port; the bridge reuses the
        # neighbor's own credit machinery for link-level flow control.
        event = self.routers[router_index].send(
            arrival_port, out_port, envelope, message.length_bytes,
            vc=message.vc)
        event._defused = True

    def _deliver_local(self, router_index: int, message: Message) -> None:
        envelope: Envelope = message.payload
        handler = self._local_handlers[router_index]
        if handler is not None:
            handler(router_index, envelope.payload)


class RingNetwork(ComposedNetwork):
    """ERs in a bidirectional ring; routing takes the shorter way round.

    Port map: 0 local, 1 clockwise (toward index+1), 2 counter-clockwise.
    """

    CW, CCW = 1, 2

    def __init__(self, env: Environment, num_routers: int,
                 name: str = "ring", **router_kwargs):
        if num_routers < 2:
            raise ValueError("a ring needs at least 2 routers")
        super().__init__(env, num_routers, ports_per_router=3, name=name,
                         **router_kwargs)
        self.num_routers = num_routers
        for i in range(num_routers):
            j = (i + 1) % num_routers
            # i's CW port faces j; j's CCW port faces i.
            self._wire(i, self.CW, j, self.CCW)

    def next_hop_port(self, router_index: int, dst_router: int) -> int:
        forward = (dst_router - router_index) % self.num_routers
        backward = (router_index - dst_router) % self.num_routers
        return self.CW if forward <= backward else self.CCW


class MeshNetwork(ComposedNetwork):
    """ERs in a 2-D mesh with dimension-order (X then Y) routing.

    Port map: 0 local, 1 east, 2 west, 3 north, 4 south.
    """

    EAST, WEST, NORTH, SOUTH = 1, 2, 3, 4

    def __init__(self, env: Environment, width: int, height: int,
                 name: str = "mesh", **router_kwargs):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        super().__init__(env, width * height, ports_per_router=5, name=name,
                         **router_kwargs)
        self.width = width
        self.height = height
        for y in range(height):
            for x in range(width):
                idx = self.index(x, y)
                if x + 1 < width:
                    self._wire(idx, self.EAST, self.index(x + 1, y),
                               self.WEST)
                if y + 1 < height:
                    self._wire(idx, self.NORTH, self.index(x, y + 1),
                               self.SOUTH)

    def index(self, x: int, y: int) -> int:
        return y * self.width + x

    def coords(self, index: int) -> Tuple[int, int]:
        return index % self.width, index // self.width

    def next_hop_port(self, router_index: int, dst_router: int) -> int:
        x, y = self.coords(router_index)
        dx, dy = self.coords(dst_router)
        if dx > x:
            return self.EAST
        if dx < x:
            return self.WEST
        if dy > y:
            return self.NORTH
        return self.SOUTH
