"""The Resource Manager's write-ahead journal.

Every durable control-plane decision — lease grants, renews, releases,
revocations, expirations, quarantines, fence movements, epoch bumps —
is appended here *before* it takes effect in the RM's in-memory tables,
so a crashed RM can be restarted and its state reconstructed by replay
(:meth:`Journal.replay`).  Periodic snapshots bound replay time the way
log compaction would bound a real WAL; the full record history is kept
in memory for the campaign auditor (:mod:`repro.haas.audit`), which
re-derives the no-double-allocation and fencing invariants from it.

The journal is deterministic: records carry simulation time and a
monotonic sequence number, nothing wall-clock or random.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Record kinds with durable replay semantics.  Kinds not listed here
#: (``fence_reject``, ``crash``, ``restart`` ...) are evidence for the
#: auditor but do not change recovered state.
REPLAYED_KINDS = frozenset({
    "epoch", "register", "unregister", "grant", "renew", "release",
    "revoke", "expire", "quarantine", "fence_barrier", "snapshot",
})


@dataclass
class JournalRecord:
    seq: int
    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def jsonable(self) -> Dict[str, Any]:
        """Plain-data view (rich objects like Constraints elided)."""
        data = {key: value for key, value in self.data.items()
                if isinstance(value, (int, float, str, bool, type(None)))
                or (isinstance(value, list)
                    and all(isinstance(v, (int, float, str)) for v in value))}
        return {"seq": self.seq, "t": round(self.time, 6),
                "kind": self.kind, **data}


@dataclass
class RecoveredState:
    """What journal replay hands a restarting Resource Manager."""

    #: lease_id -> lease fields (service, hosts, granted_at, duration,
    #: epoch, fence, constraints, token) for leases still open at the
    #: replay point.
    leases: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: host -> quarantine-until time.
    quarantine: Dict[int, float] = field(default_factory=dict)
    registered: List[int] = field(default_factory=list)
    max_fence: int = 0
    max_epoch: int = 0
    replayed_records: int = 0


class Journal:
    """Append-only, deterministic WAL with snapshot compaction."""

    def __init__(self, name: str = "rm",
                 clock: Optional[Callable[[], float]] = None,
                 snapshot_interval: int = 256):
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self.snapshot_interval = snapshot_interval
        self.records: List[JournalRecord] = []
        self._seq = 0
        self._last_snapshot_index: Optional[int] = None
        self._records_since_snapshot = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(self, kind: str, **data: Any) -> JournalRecord:
        self._seq += 1
        rec = JournalRecord(seq=self._seq, time=self._clock(),
                            kind=kind, data=data)
        self.records.append(rec)
        if kind in REPLAYED_KINDS and kind != "snapshot":
            self._records_since_snapshot += 1
        return rec

    def snapshot(self, state: Dict[str, Any]) -> JournalRecord:
        """Append a full-state snapshot; replay starts from the latest."""
        rec = self.record("snapshot", state=state)
        self._last_snapshot_index = len(self.records) - 1
        self._records_since_snapshot = 0
        return rec

    def maybe_snapshot(self,
                       state_fn: Callable[[], Dict[str, Any]]) -> bool:
        """Snapshot if enough replayed records accumulated since the
        last one (log compaction for replay time, not space — history
        is retained for the auditor)."""
        if self._records_since_snapshot < self.snapshot_interval:
            return False
        self.snapshot(state_fn())
        return True

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, now: Optional[float] = None) -> RecoveredState:
        """Reconstruct RM state from the latest snapshot + tail.

        ``now`` is informational only — expiry of recovered leases is
        the restarted RM's decision, not the journal's.
        """
        state = RecoveredState()
        start = 0
        if self._last_snapshot_index is not None:
            snap = self.records[self._last_snapshot_index].data["state"]
            state.leases = {lease_id: dict(fields) for lease_id, fields
                            in snap.get("leases", {}).items()}
            state.quarantine = dict(snap.get("quarantine", {}))
            state.registered = list(snap.get("registered", []))
            state.max_fence = snap.get("max_fence", 0)
            state.max_epoch = snap.get("max_epoch", 0)
            start = self._last_snapshot_index + 1
        registered = set(state.registered)
        for rec in self.records[start:]:
            kind, data = rec.kind, rec.data
            if kind == "epoch":
                state.max_epoch = max(state.max_epoch, data["epoch"])
            elif kind == "register":
                registered.add(data["host"])
            elif kind == "unregister":
                registered.discard(data["host"])
            elif kind == "grant":
                state.leases[data["lease_id"]] = {
                    "service": data["service"],
                    "hosts": list(data["hosts"]),
                    "granted_at": data["granted_at"],
                    "duration": data["duration"],
                    "epoch": data["epoch"],
                    "fence": data["fence"],
                    "constraints": data.get("constraints"),
                    "token": data.get("token"),
                }
                state.max_fence = max(state.max_fence, data["fence"])
            elif kind == "renew":
                lease = state.leases.get(data["lease_id"])
                if lease is not None:
                    lease["granted_at"] = data["granted_at"]
            elif kind in ("release", "revoke", "expire"):
                state.leases.pop(data["lease_id"], None)
            elif kind == "quarantine":
                state.quarantine[data["host"]] = data["until"]
            elif kind == "fence_barrier":
                state.max_fence = max(state.max_fence, data["fence"])
            state.replayed_records += 1
        state.registered = sorted(registered)
        return state
