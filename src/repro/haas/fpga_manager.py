"""The per-node FPGA Manager (FM).

"An FPGA Manager runs on each node to provide configuration and status
monitoring for the system."  The FM is the only HaaS component that
touches the shell directly: it loads role images on behalf of Service
Managers and reports health to the Resource Manager.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from ..fpga.reconfig import Image
from ..fpga.shell import Shell
from ..sim import Environment


class FpgaHealth(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"     # soft errors above threshold
    FAILED = "failed"


@dataclass
class FpgaStatus:
    """Snapshot the FM reports upward."""

    host: int
    health: FpgaHealth
    live_image: str
    link_up: bool
    allocated_to: Optional[str]


class FpgaManager:
    """One node's configuration/monitoring agent."""

    def __init__(self, env: Environment, shell: Shell):
        self.env = env
        self.shell = shell
        self.health = FpgaHealth.HEALTHY
        self.allocated_to: Optional[str] = None
        self.configurations = 0
        #: RM's failure callback, installed at registration.
        self.on_failure: Optional[Callable[[int], None]] = None

    @property
    def host(self) -> int:
        return self.shell.host_index

    def status(self) -> FpgaStatus:
        return FpgaStatus(
            host=self.host, health=self.health,
            live_image=self.shell.configuration.live_image.name,
            link_up=self.shell.bridge.link_up,
            allocated_to=self.allocated_to)

    def configure(self, image: Image):
        """Process: deploy a role image (partial reconfiguration, so the
        bridge keeps passing packets during the swap)."""
        yield from self.shell.configuration.partial_reconfigure(image)
        self.configurations += 1

    def recover(self):
        """Process: power-cycle to the golden image (last-resort repair)."""
        yield from self.shell.configuration.power_cycle()
        if self.health is not FpgaHealth.FAILED:
            self.health = FpgaHealth.HEALTHY

    def mark_failed(self) -> None:
        """Declare this FPGA dead (hard failure or persistent SEUs)."""
        self.health = FpgaHealth.FAILED
        self.shell.board.mark_hard_failure("declared failed by FM")
        if self.on_failure is not None:
            self.on_failure(self.host)
