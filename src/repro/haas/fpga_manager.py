"""The per-node FPGA Manager (FM).

"An FPGA Manager runs on each node to provide configuration and status
monitoring for the system."  The FM is the only HaaS component that
touches the shell directly: it loads role images on behalf of Service
Managers, reports health to the Resource Manager, and runs a periodic
health monitor that escalates HEALTHY -> DEGRADED -> FAILED from shell and
bridge state — covering gray (slow) nodes reported by peers, SEU role
hangs, links down outside reconfiguration, dead boards, and network
detachment.  A DEGRADED node is evicted from its lease and auto-repaired
with :meth:`recover` (power-cycle to golden); a FAILED node whose failure
cause clears (e.g. a transient link flap ends) is likewise repaired and
returned to the pool.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..fpga.reconfig import Image
from ..fpga.shell import Shell
from ..sim import Environment

#: Default health-monitor scan period (control-plane scale).
MONITOR_PERIOD_SECONDS = 2.0
#: Peer gray reports within the window needed before declaring DEGRADED —
#: one transient timeout episode must not power-cycle a healthy node.
GRAY_REPORT_THRESHOLD = 2
GRAY_REPORT_WINDOW_SECONDS = 1.0


class FpgaHealth(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"     # soft errors above threshold
    FAILED = "failed"


@dataclass
class FpgaStatus:
    """Snapshot the FM reports upward."""

    host: int
    health: FpgaHealth
    live_image: str
    link_up: bool
    allocated_to: Optional[str]


class FpgaManager:
    """One node's configuration/monitoring agent."""

    def __init__(self, env: Environment, shell: Shell,
                 monitor_period: Optional[float] = MONITOR_PERIOD_SECONDS):
        self.env = env
        self.shell = shell
        self.health = FpgaHealth.HEALTHY
        self.allocated_to: Optional[str] = None
        self.configurations = 0
        self.recoveries = 0
        #: Newest fencing token installed for this host (by lease grants
        #: and by the RM's fence barriers at evict/release/expire time).
        #: Operations carrying an older fence are rejected: that caller
        #: is acting on a lease the RM has since superseded.
        self.fence = 0
        self.fence_rejections = 0
        #: RM journal, attached at registration, so fence rejections are
        #: auditable evidence in the campaign record.
        self.journal = None
        #: RM's failure callback, installed at registration.
        self.on_failure: Optional[Callable[[int], None]] = None
        #: Observer hook: (manager, old_health, new_health, reason).
        self.on_health_change: Optional[Callable[
            ["FpgaManager", FpgaHealth, FpgaHealth, str], None]] = None
        #: (time, old, new, reason) history of health transitions.
        self.transitions: List[
            Tuple[float, FpgaHealth, FpgaHealth, str]] = []
        self.gray_report_threshold = GRAY_REPORT_THRESHOLD
        self.gray_report_window = GRAY_REPORT_WINDOW_SECONDS
        self._gray_reports: List[float] = []
        self._recovering = False
        self.monitor_period = monitor_period
        if monitor_period is not None:
            env.process(self._monitor(), name=f"fm-monitor-{self.host}")

    @property
    def host(self) -> int:
        return self.shell.host_index

    def status(self) -> FpgaStatus:
        return FpgaStatus(
            host=self.host, health=self.health,
            live_image=self.shell.configuration.live_image.name,
            link_up=self.shell.bridge.link_up,
            allocated_to=self.allocated_to)

    def install_fence(self, fence: int) -> None:
        """Raise this host's fence floor (monotonic)."""
        self.fence = max(self.fence, fence)

    def _check_fence(self, fence: Optional[int], op: str) -> bool:
        if fence is None or fence >= self.fence:
            return True
        self.fence_rejections += 1
        if self.journal is not None:
            self.journal.record("fence_reject", host=self.host,
                                op=op, fence=fence, current=self.fence)
        return False

    def admit_traffic(self, fence: Optional[int] = None) -> bool:
        """Data-plane admission: False iff the caller's fence is stale
        (its lease was superseded — likely a split-brain survivor)."""
        return self._check_fence(fence, "traffic")

    def configure(self, image: Image, fence: Optional[int] = None):
        """Process: deploy a role image (partial reconfiguration, so the
        bridge keeps passing packets during the swap).

        A stale ``fence`` makes this a recorded no-op rather than an
        exception: the caller is on the wrong side of a partition and
        must not overwrite whatever the host's new owner deployed.
        """
        if not self._check_fence(fence, "configure"):
            return
        yield from self.shell.configuration.partial_reconfigure(image)
        self.configurations += 1

    # ------------------------------------------------------------------
    # Health transitions
    # ------------------------------------------------------------------
    def _set_health(self, new: FpgaHealth, reason: str) -> None:
        if new is self.health:
            return
        old = self.health
        self.health = new
        self.transitions.append((self.env.now, old, new, reason))
        if self.on_health_change is not None:
            self.on_health_change(self, old, new, reason)

    def recover(self):
        """Process: power-cycle to the golden image (last-resort repair).

        On completion the node is HEALTHY again unless the underlying
        cause persists (dead board or detached from the fabric).
        """
        self._recovering = True
        try:
            yield from self.shell.configuration.power_cycle()
            self.recoveries += 1
        finally:
            self._recovering = False
        # Reloading the full configuration clears any SEU-wedged role.
        scrubber = self.shell.scrubber
        if scrubber is not None and scrubber.role_hung:
            scrubber.role_hung = False
            scrubber.stats.recoveries += 1
        if self.shell.board.usable and \
                self.shell.fabric.is_attached(self.host):
            self._set_health(FpgaHealth.HEALTHY, "power-cycle repair")
        else:
            self._set_health(FpgaHealth.FAILED,
                             "power-cycle did not clear the fault")

    def mark_failed(self, reason: str = "declared failed by FM",
                    hard: bool = True) -> None:
        """Declare this FPGA dead.

        ``hard=True`` (operator/board-level death) poisons the board so the
        node never returns to the pool.  ``hard=False`` records an
        observed failure (e.g. peers' LTL timeouts) that the monitor may
        repair later if the cause turns out to be transient.
        """
        self._set_health(FpgaHealth.FAILED, reason)
        if hard:
            self.shell.board.mark_hard_failure(reason)
        if self.on_failure is not None:
            self.on_failure(self.host)

    def report_gray(self, reporter: Optional[int] = None) -> None:
        """A peer suspects this node is gray (slow).  Enough reports in a
        short window escalate to DEGRADED and trigger repair."""
        now = self.env.now
        self._gray_reports.append(now)
        self._gray_reports = [
            t for t in self._gray_reports
            if now - t <= self.gray_report_window]
        if len(self._gray_reports) >= self.gray_report_threshold and \
                self.health is FpgaHealth.HEALTHY:
            self._set_health(FpgaHealth.DEGRADED,
                             "gray-failure reports from peers")
            self._escalate_degraded()

    def _escalate_degraded(self) -> None:
        """Evict the node from its lease and start repair."""
        if self.on_failure is not None:
            self.on_failure(self.host)
        if not self._recovering and \
                not self.shell.configuration.reconfiguring:
            self.env.process(self.recover(),
                             name=f"fm-recover-{self.host}")

    # ------------------------------------------------------------------
    # Periodic health monitor
    # ------------------------------------------------------------------
    def _monitor(self):
        while True:
            yield self.env.timeout(self.monitor_period)
            self._scan()

    def _scan(self) -> None:
        shell = self.shell
        if self._recovering or shell.configuration.reconfiguring:
            return  # legitimate downtime; don't misdiagnose it
        if not shell.board.usable:
            if self.health is not FpgaHealth.FAILED:
                self.mark_failed("board hard failure", hard=False)
            return
        if not shell.fabric.is_attached(self.host):
            if self.health is not FpgaHealth.FAILED:
                self.mark_failed("network unreachable", hard=False)
            return
        if self.health is FpgaHealth.FAILED:
            # The failure cause has cleared (e.g. link flap ended):
            # repair and let the RM's quarantine gate re-admission.
            self.env.process(self.recover(),
                             name=f"fm-recover-{self.host}")
            return
        reason = None
        if not shell.bridge.link_up:
            reason = "link down outside reconfiguration"
        elif shell.scrubber is not None and shell.scrubber.role_hung:
            reason = "role hung (SEU)"
        if reason is not None and self.health is FpgaHealth.HEALTHY:
            self._set_health(FpgaHealth.DEGRADED, reason)
        if self.health is FpgaHealth.DEGRADED:
            self._escalate_degraded()
