"""Lease bookkeeping for the Resource Manager.

"The RM provides simple APIs for higher-level Service Managers to easily
manage FPGA-based hardware Components through a lease-based model."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import List

from .constraints import Constraints

_lease_ids = count(1)


class LeaseState(enum.Enum):
    ACTIVE = "active"
    EXPIRED = "expired"
    RELEASED = "released"
    REVOKED = "revoked"   # RM pulled it back (e.g. hardware failure)


@dataclass
class Lease:
    """A grant of specific FPGAs to a service for a bounded time."""

    service: str
    hosts: List[int]
    constraints: Constraints
    granted_at: float
    duration: float
    lease_id: int = field(default_factory=lambda: next(_lease_ids))
    state: LeaseState = LeaseState.ACTIVE

    @property
    def expires_at(self) -> float:
        return self.granted_at + self.duration

    def is_active(self, now: float) -> bool:
        return self.state is LeaseState.ACTIVE and now < self.expires_at

    def renew(self, now: float) -> None:
        if self.state is not LeaseState.ACTIVE:
            raise ValueError(f"cannot renew lease in state {self.state}")
        self.granted_at = now
