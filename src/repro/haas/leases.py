"""Lease bookkeeping for the Resource Manager.

"The RM provides simple APIs for higher-level Service Managers to easily
manage FPGA-based hardware Components through a lease-based model."

Lease identity is assigned by the granting RM, scoped to its epoch
(``epoch * EPOCH_STRIDE + seq``): IDs stay unique across RM restarts,
and two RMs in one process never share a counter.  Every lease also
carries its grant **fence** — a monotonically increasing token checked
by FpgaManagers so that an SM stranded behind a partition cannot act on
a host the recovered RM has since re-leased.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from .constraints import Constraints

#: Lease IDs are ``rm_epoch * EPOCH_STRIDE + per-epoch sequence``; the
#: stride keeps IDs from different epochs disjoint (no epoch grants a
#: billion leases).
EPOCH_STRIDE = 1_000_000_000


def lease_id_for(epoch: int, seq: int) -> int:
    return epoch * EPOCH_STRIDE + seq


class LeaseState(enum.Enum):
    ACTIVE = "active"
    EXPIRED = "expired"
    RELEASED = "released"
    REVOKED = "revoked"   # RM pulled it back (e.g. hardware failure)


@dataclass(eq=False)
class Lease:
    """A grant of specific FPGAs to a service for a bounded time.

    ``eq=False``: leases are identity objects.  Under a lossy RPC
    channel the SM holds a *copy* of the RM's lease (the two sides of a
    partition must be able to diverge); the ``lease_id`` is the only
    cross-side name for a grant.
    """

    service: str
    hosts: List[int]
    constraints: Constraints
    granted_at: float
    duration: float
    lease_id: int = 0
    #: RM epoch that granted this lease (bumped on every RM restart).
    rm_epoch: int = 0
    #: Fencing token: FpgaManagers reject configure/traffic carrying a
    #: fence older than the newest they have seen for the host.
    fence: int = 0
    state: LeaseState = LeaseState.ACTIVE

    @property
    def expires_at(self) -> float:
        return self.granted_at + self.duration

    def is_active(self, now: float) -> bool:
        return self.state is LeaseState.ACTIVE and now < self.expires_at

    def renew(self, now: float) -> None:
        if self.state is not LeaseState.ACTIVE:
            raise ValueError(f"cannot renew lease in state {self.state}")
        self.granted_at = now
