"""The logically centralized Resource Manager (RM).

"A logically centralized Resource Manager tracks FPGA resources
throughout the datacenter ... FPGAs are allocated to each service from
Resource Manager's resource pool."  Failed nodes are removed from the
pool and any lease holding them is revoked so the owning Service Manager
can re-acquire capacity ("failing nodes are removed from the pool with
replacements quickly added").

Resilience model (see docs/architecture.md, "Control-plane resilience"):

* Every durable decision is appended to a write-ahead **journal**
  (:mod:`repro.haas.journal`) before it touches the in-memory tables,
  so :meth:`crash` / :meth:`restart` reconstruct the lease table by
  replay, reconciled against current FpgaManager health.
* Each restart bumps the RM **epoch**; lease IDs are epoch-scoped and
  every grant carries a monotonically increasing **fence** that
  FpgaManagers check, so a Service Manager stranded behind a partition
  cannot act on a host the recovered RM has re-leased.
* RPC-facing entry points (:meth:`rpc_dispatch`) deduplicate
  **idempotency tokens**: a retried or duplicated ``acquire`` returns
  the original grant instead of allocating twice.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net.topology import ThreeTierTopology
from ..sim import Environment
from .constraints import Constraints, select_hosts
from .fpga_manager import FpgaHealth, FpgaManager
from .journal import Journal
from .leases import Lease, LeaseState, lease_id_for
from .rpc import RpcChannel, RpcConfig, ServerUnavailable

#: Default lease duration (control-plane heartbeat scale, not data plane).
DEFAULT_LEASE_SECONDS = 300.0
#: How long a recently-failed host sits out before it can be leased again
#: — a flapping node must prove itself stable, not bounce straight back
#: into a service.
DEFAULT_QUARANTINE_SECONDS = 60.0
#: Idempotency tokens for closed leases are forgotten after this many
#: sweep periods — long past any retransmit horizon.
TOKEN_RETENTION_SWEEPS = 4
#: ...but never sooner than this: an aggressive sweep cadence must not
#: shrink the dedup horizon below the RPC retransmit window (a lossy
#: call can keep resending for several seconds).
TOKEN_RETENTION_MIN_SECONDS = 10.0


class AllocationError(Exception):
    """No feasible allocation for the requested constraints."""


class LeaseExpired(KeyError):
    """Renew rejected: the lease is already past ``expires_at``.

    Subclasses :class:`KeyError` so callers treating "unknown lease" and
    "dead lease" alike keep working.
    """


@dataclass
class RmStats:
    acquires: int = 0
    releases: int = 0
    revocations: int = 0
    failed_acquires: int = 0
    expirations: int = 0
    quarantines: int = 0
    renew_rejections: int = 0     # renews of already-expired leases
    deduped_acquires: int = 0     # retried acquires answered from cache
    deduped_releases: int = 0
    crashes: int = 0
    restarts: int = 0
    recovered_leases: int = 0


class ResourceManager:
    """Datacenter-wide FPGA pool with lease-based allocation."""

    def __init__(self, env: Environment, topology: ThreeTierTopology,
                 lease_duration: float = DEFAULT_LEASE_SECONDS,
                 sweep_period: float = 30.0,
                 quarantine_seconds: float = DEFAULT_QUARANTINE_SECONDS,
                 journal: Optional[Journal] = None,
                 fm_rpc_config: Optional[RpcConfig] = None):
        self.env = env
        self.topology = topology
        self.lease_duration = lease_duration
        self.quarantine_seconds = quarantine_seconds
        #: host -> time until which it may not be re-leased.
        self._quarantine_until: Dict[int, float] = {}
        self.stats = RmStats()
        self.journal = journal or Journal(name="rm")
        self.journal.bind_clock(lambda: self.env.now)
        self.epoch = 1
        self._lease_seq = 0
        self._fence = 0
        self._crashed = False
        self._fm_rpc_config = fm_rpc_config
        self._managers: Dict[int, FpgaManager] = {}
        #: host -> RM->FM control link (fence installs, failure reports).
        self._fm_links: Dict[int, RpcChannel] = {}
        self._leases: Dict[int, Lease] = {}
        #: host -> lease_id for allocated hosts.
        self._allocation: Dict[int, int] = {}
        #: lease_id -> revocation callback (installed by the SM).
        self._revocation_handlers: Dict[
            int, Callable[[Lease, List[int]], None]] = {}
        #: idempotency token -> (lease_id, grant time).
        self._granted_tokens: Dict[str, Tuple[int, float]] = {}
        self._released_tokens: Dict[str, float] = {}
        self.journal.record("epoch", epoch=self.epoch)
        env.process(self._expiry_sweeper(), name="rm-sweeper")
        self._sweep_period = sweep_period

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, manager: FpgaManager) -> None:
        host = manager.host
        if host in self._managers:
            raise ValueError(f"host {host} already registered")
        self._managers[host] = manager
        link = RpcChannel(self.env, self._fm_dispatch,
                          name=f"fm-{host}", config=self._fm_rpc_config)
        self._fm_links[host] = link
        manager.on_failure = lambda h=host: link.notify(
            "node_failure", {"host": h})
        manager.journal = self.journal
        self.journal.record("register", host=host)

    def unregister(self, host: int) -> None:
        manager = self._managers.pop(host, None)
        if manager is None:
            raise KeyError(f"host {host} not registered")
        self._fm_links.pop(host, None)
        manager.journal = None
        self.journal.record("unregister", host=host)
        self._evict(host)

    def manager(self, host: int) -> FpgaManager:
        return self._managers[host]

    def _fm_dispatch(self, channel: RpcChannel, method: str,
                     payload: Dict[str, Any]) -> Any:
        """Server side of the per-FM control link."""
        if self._crashed:
            raise ServerUnavailable("resource manager is down")
        if method == "node_failure":
            self._on_node_failure(payload["host"])
            return True
        raise ValueError(f"unknown FM RPC method {method!r}")

    # ------------------------------------------------------------------
    # Pool queries
    # ------------------------------------------------------------------
    def free_hosts(self) -> List[int]:
        now = self.env.now
        return [
            host for host, fm in self._managers.items()
            if host not in self._allocation
            and fm.health is FpgaHealth.HEALTHY
            and self._quarantine_until.get(host, 0.0) <= now]

    def in_quarantine(self, host: int) -> bool:
        return self._quarantine_until.get(host, 0.0) > self.env.now

    def is_allocated(self, host: int) -> bool:
        return host in self._allocation

    @property
    def pool_size(self) -> int:
        return len(self._managers)

    @property
    def allocated_count(self) -> int:
        return len(self._allocation)

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def fence(self) -> int:
        return self._fence

    # ------------------------------------------------------------------
    # Lease lifecycle
    # ------------------------------------------------------------------
    def _next_lease_id(self) -> int:
        self._lease_seq += 1
        return lease_id_for(self.epoch, self._lease_seq)

    def _next_fence(self) -> int:
        self._fence += 1
        return self._fence

    def acquire(self, service: str, constraints: Constraints,
                on_revoked: Optional[
                    Callable[[Lease, List[int]], None]] = None,
                token: Optional[str] = None) -> Lease:
        """Allocate a component; raises :class:`AllocationError` if
        infeasible."""
        if self._crashed:
            raise ServerUnavailable("resource manager is down")
        if token is not None:
            cached = self._granted_tokens.get(token)
            if cached is not None:
                lease = self._leases.get(cached[0])
                if lease is not None:
                    self.stats.deduped_acquires += 1
                    if on_revoked is not None:
                        self._revocation_handlers[lease.lease_id] = \
                            on_revoked
                    return lease
        hosts = select_hosts(self.topology, self.free_hosts(), constraints)
        if hosts is None:
            self.stats.failed_acquires += 1
            raise AllocationError(
                f"cannot satisfy {constraints} for service {service!r}")
        now = self.env.now
        lease = Lease(service=service, hosts=hosts,
                      constraints=constraints, granted_at=now,
                      duration=self.lease_duration,
                      lease_id=self._next_lease_id(),
                      rm_epoch=self.epoch, fence=self._next_fence())
        # WAL discipline: journal the grant before it takes effect.
        self.journal.record(
            "grant", lease_id=lease.lease_id, service=service,
            hosts=list(hosts), granted_at=now, duration=lease.duration,
            epoch=self.epoch, fence=lease.fence, token=token,
            constraints=constraints)
        self._leases[lease.lease_id] = lease
        for host in hosts:
            self._allocation[host] = lease.lease_id
            manager = self._managers[host]
            manager.allocated_to = service
            manager.install_fence(lease.fence)
        if on_revoked is not None:
            self._revocation_handlers[lease.lease_id] = on_revoked
        if token is not None:
            self._granted_tokens[token] = (lease.lease_id, now)
        self.stats.acquires += 1
        self.journal.maybe_snapshot(self._snapshot_state)
        return lease

    def release(self, lease: Lease) -> None:
        if self._crashed:
            raise ServerUnavailable("resource manager is down")
        # Look up our own record: under a lossy channel the caller holds
        # a copy, and a duplicated release must be a no-op.
        mine = self._leases.get(lease.lease_id)
        if mine is None or mine.state is not LeaseState.ACTIVE:
            if lease.state is LeaseState.ACTIVE:
                lease.state = LeaseState.RELEASED
            return
        self.journal.record("release", lease_id=mine.lease_id,
                            service=mine.service)
        mine.state = LeaseState.RELEASED
        lease.state = LeaseState.RELEASED
        self._fence_off(mine)
        self._free_hosts_of(mine)
        self._leases.pop(mine.lease_id, None)
        self._revocation_handlers.pop(mine.lease_id, None)
        self.stats.releases += 1

    def renew(self, lease: Lease) -> float:
        """Extend a live lease; returns the new ``granted_at``.

        Raises :class:`KeyError` for an unknown lease and
        :class:`LeaseExpired` (a ``KeyError``) for a lease that is past
        ``expires_at`` but not yet swept — renewing the dead must not
        resurrect them, or a stalled SM could keep hosts the RM already
        promised elsewhere.
        """
        if self._crashed:
            raise ServerUnavailable("resource manager is down")
        mine = self._leases.get(lease.lease_id)
        if mine is None:
            raise KeyError(f"unknown lease {lease.lease_id}")
        now = self.env.now
        if now >= mine.expires_at:
            self.stats.renew_rejections += 1
            self._expire(mine)
            raise LeaseExpired(
                f"lease {lease.lease_id} expired at {mine.expires_at}")
        self.journal.record("renew", lease_id=mine.lease_id,
                            granted_at=now)
        mine.renew(now)
        if lease is not mine:
            lease.granted_at = now
        return now

    def _free_hosts_of(self, lease: Lease) -> None:
        for host in lease.hosts:
            if self._allocation.get(host) == lease.lease_id:
                del self._allocation[host]
                manager = self._managers.get(host)
                if manager is not None:
                    manager.allocated_to = None

    def _fence_off(self, lease: Lease) -> None:
        """Install a fence barrier on the lease's hosts: any message
        still carrying this lease's fence is now stale there."""
        for host in lease.hosts:
            if self._allocation.get(host) != lease.lease_id:
                continue
            manager = self._managers.get(host)
            if manager is None:
                continue
            barrier = self._next_fence()
            self.journal.record("fence_barrier", host=host, fence=barrier)
            manager.install_fence(barrier)

    # ------------------------------------------------------------------
    # RPC server side
    # ------------------------------------------------------------------
    def rpc_dispatch(self, channel: RpcChannel, method: str,
                     payload: Dict[str, Any]) -> Any:
        """Dispatch one SM->RM call (the ``server`` of an
        :class:`~repro.haas.rpc.RpcChannel`).

        Retransmits and duplicates land here too; the idempotency-token
        tables make ``acquire``/``release`` exactly-once in effect.
        """
        if self._crashed:
            raise ServerUnavailable("resource manager is down")
        token = payload.get("token")
        if method == "acquire":
            on_revoked = payload.get("on_revoked")
            handler = None
            if on_revoked is not None:
                # Revocations travel back over the same unreliable
                # channel (server -> client push).
                handler = lambda lease, survivors: channel.push(
                    on_revoked, lease.lease_id, survivors)
            lease = self.acquire(payload["service"],
                                 payload["constraints"],
                                 on_revoked=handler, token=token)
            if channel.inline:
                return lease
            # The SM gets a *copy*: the two sides of a partition must
            # be able to diverge (that is what fencing defends against).
            return replace(lease, hosts=list(lease.hosts))
        if method == "release":
            if token is not None and token in self._released_tokens:
                self.stats.deduped_releases += 1
                return True
            lease = self._leases.get(payload["lease_id"])
            if lease is not None:
                self.release(lease)
            if token is not None:
                self._released_tokens[token] = self.env.now
            return True
        if method == "renew":
            lease = self._leases.get(payload["lease_id"])
            if lease is None:
                raise KeyError(f"unknown lease {payload['lease_id']}")
            return self.renew(lease)
        if method == "reattach":
            return self._reattach(channel, payload)
        if method == "epoch":
            return self.epoch
        raise ValueError(f"unknown RPC method {method!r}")

    def _reattach(self, channel: RpcChannel,
                  payload: Dict[str, Any]) -> Dict[str, Any]:
        """An SM re-binding after an RM restart (its revocation handlers
        died with the old process).  Returns which of its leases
        survived recovery; the SM replaces the rest."""
        on_revoked = payload.get("on_revoked")
        kept: Dict[int, float] = {}
        for lease_id in payload.get("lease_ids", []):
            lease = self._leases.get(lease_id)
            if lease is None or lease.state is not LeaseState.ACTIVE:
                continue
            kept[lease_id] = lease.granted_at
            if on_revoked is not None:
                self._revocation_handlers[lease_id] = \
                    lambda l, s: channel.push(on_revoked, l.lease_id, s)
        return {"kept": kept, "epoch": self.epoch}

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the RM process: all in-memory state is gone; only the
        journal survives.  Calls raise :class:`ServerUnavailable` (which
        channels surface as timeouts) until :meth:`restart`."""
        if self._crashed:
            return
        self.journal.record("crash", epoch=self.epoch)
        self._crashed = True
        self.stats.crashes += 1
        self._leases.clear()
        self._allocation.clear()
        self._revocation_handlers.clear()
        self._granted_tokens.clear()
        self._released_tokens.clear()
        self._quarantine_until.clear()
        for manager in self._managers.values():
            manager.allocated_to = None

    def restart(self) -> int:
        """Bring the RM back: replay the journal, bump the epoch,
        reconcile recovered leases against live FpgaManager health.
        Returns the number of leases recovered."""
        if not self._crashed:
            return 0
        state = self.journal.replay(now=self.env.now)
        self.epoch = state.max_epoch + 1
        self._lease_seq = 0
        self._fence = state.max_fence
        self._quarantine_until = dict(state.quarantine)
        self.journal.record("restart", epoch=self.epoch,
                            replayed=state.replayed_records,
                            leases=len(state.leases))
        self.journal.record("epoch", epoch=self.epoch)
        now = self.env.now
        recovered = 0
        for lease_id, fields in state.leases.items():
            lease = Lease(service=fields["service"],
                          hosts=list(fields["hosts"]),
                          constraints=fields.get("constraints")
                          or Constraints(),
                          granted_at=fields["granted_at"],
                          duration=fields["duration"],
                          lease_id=lease_id,
                          rm_epoch=fields["epoch"],
                          fence=fields["fence"])
            token = fields.get("token")
            self._leases[lease_id] = lease
            for host in lease.hosts:
                self._allocation[host] = lease_id
                manager = self._managers.get(host)
                if manager is not None:
                    manager.allocated_to = lease.service
                    manager.install_fence(lease.fence)
            if token is not None:
                self._granted_tokens[token] = (lease_id,
                                               fields["granted_at"])
            recovered += 1
        self._crashed = False
        self.stats.restarts += 1
        self.stats.recovered_leases += recovered
        # Reconcile against the world as it is *now*: hosts that died or
        # vanished while the RM was down get their leases revoked the
        # normal way (quarantine + replacement).
        for lease in list(self._leases.values()):
            for host in list(lease.hosts):
                manager = self._managers.get(host)
                if manager is None:
                    self._evict(host)
                elif manager.health is not FpgaHealth.HEALTHY:
                    self._on_node_failure(host)
        # Recovered leases keep their old expiry; unreachable SMs will
        # simply fail to renew and the sweeper reclaims their hosts.
        self.journal.snapshot(self._snapshot_state())
        return recovered

    def _snapshot_state(self) -> Dict[str, Any]:
        return {
            "leases": {
                lease.lease_id: {
                    "service": lease.service,
                    "hosts": list(lease.hosts),
                    "granted_at": lease.granted_at,
                    "duration": lease.duration,
                    "epoch": lease.rm_epoch,
                    "fence": lease.fence,
                    "constraints": lease.constraints,
                    "token": next(
                        (tok for tok, (lid, _t)
                         in self._granted_tokens.items()
                         if lid == lease.lease_id), None),
                }
                for lease in self._leases.values()
            },
            "quarantine": dict(self._quarantine_until),
            "registered": sorted(self._managers),
            "max_fence": self._fence,
            "max_epoch": self.epoch,
        }

    # ------------------------------------------------------------------
    # Failure / expiry
    # ------------------------------------------------------------------
    def _on_node_failure(self, host: int) -> None:
        # Quarantine first, evict second: the replacement acquire running
        # inside the revocation handler must not pick the failed host.
        until = self.env.now + self.quarantine_seconds
        self._quarantine_until[host] = until
        self.journal.record("quarantine", host=host, until=until)
        self.stats.quarantines += 1
        self._evict(host)

    def _evict(self, host: int) -> None:
        lease_id = self._allocation.get(host)
        if lease_id is None:
            return
        lease = self._leases.get(lease_id)
        if lease is None:
            self._allocation.pop(host, None)
            return
        self.journal.record("revoke", lease_id=lease_id,
                            service=lease.service, cause_host=host)
        lease.state = LeaseState.REVOKED
        self.stats.revocations += 1
        remaining = [h for h in lease.hosts if h != host
                     and self._allocation.get(h) == lease_id]
        # Free the survivors too: the SM re-acquires a whole component
        # (simplest correct semantics for component-granularity leases).
        self._fence_off(lease)
        self._free_hosts_of(lease)
        self._leases.pop(lease_id, None)
        handler = self._revocation_handlers.pop(lease_id, None)
        if handler is not None:
            handler(lease, remaining)

    def _expire(self, lease: Lease) -> None:
        self.journal.record("expire", lease_id=lease.lease_id,
                            service=lease.service)
        lease.state = LeaseState.EXPIRED
        self.stats.expirations += 1
        self._fence_off(lease)
        self._free_hosts_of(lease)
        self._leases.pop(lease.lease_id, None)
        handler = self._revocation_handlers.pop(lease.lease_id, None)
        if handler is not None:
            handler(lease, [])

    def _expiry_sweeper(self):
        while True:
            yield self.env.timeout(self._sweep_period)
            if self._crashed:
                continue
            now = self.env.now
            for lease in list(self._leases.values()):
                if lease.state is LeaseState.ACTIVE and \
                        now >= lease.expires_at:
                    self._expire(lease)
            # Prune expired quarantine entries: long soaks must not leak
            # one dict entry per ever-quarantined host.
            for host in [h for h, until in self._quarantine_until.items()
                         if until <= now]:
                del self._quarantine_until[host]
            # Forget idempotency tokens for long-closed grants.
            horizon = now - max(
                TOKEN_RETENTION_SWEEPS * self._sweep_period,
                TOKEN_RETENTION_MIN_SECONDS)
            for token in [t for t, (lid, at)
                          in self._granted_tokens.items()
                          if lid not in self._leases and at <= horizon]:
                del self._granted_tokens[token]
            for token in [t for t, at in self._released_tokens.items()
                          if at <= horizon]:
                del self._released_tokens[token]
            self.journal.maybe_snapshot(self._snapshot_state)
