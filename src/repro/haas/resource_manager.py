"""The logically centralized Resource Manager (RM).

"A logically centralized Resource Manager tracks FPGA resources
throughout the datacenter ... FPGAs are allocated to each service from
Resource Manager's resource pool."  Failed nodes are removed from the
pool and any lease holding them is revoked so the owning Service Manager
can re-acquire capacity ("failing nodes are removed from the pool with
replacements quickly added").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.topology import ThreeTierTopology
from ..sim import Environment
from .constraints import Constraints, select_hosts
from .fpga_manager import FpgaHealth, FpgaManager
from .leases import Lease, LeaseState

#: Default lease duration (control-plane heartbeat scale, not data plane).
DEFAULT_LEASE_SECONDS = 300.0
#: How long a recently-failed host sits out before it can be leased again
#: — a flapping node must prove itself stable, not bounce straight back
#: into a service.
DEFAULT_QUARANTINE_SECONDS = 60.0


class AllocationError(Exception):
    """No feasible allocation for the requested constraints."""


@dataclass
class RmStats:
    acquires: int = 0
    releases: int = 0
    revocations: int = 0
    failed_acquires: int = 0
    expirations: int = 0
    quarantines: int = 0


class ResourceManager:
    """Datacenter-wide FPGA pool with lease-based allocation."""

    def __init__(self, env: Environment, topology: ThreeTierTopology,
                 lease_duration: float = DEFAULT_LEASE_SECONDS,
                 sweep_period: float = 30.0,
                 quarantine_seconds: float = DEFAULT_QUARANTINE_SECONDS):
        self.env = env
        self.topology = topology
        self.lease_duration = lease_duration
        self.quarantine_seconds = quarantine_seconds
        #: host -> time until which it may not be re-leased.
        self._quarantine_until: Dict[int, float] = {}
        self.stats = RmStats()
        self._managers: Dict[int, FpgaManager] = {}
        self._leases: Dict[int, Lease] = {}
        #: host -> lease_id for allocated hosts.
        self._allocation: Dict[int, int] = {}
        #: lease_id -> revocation callback (installed by the SM).
        self._revocation_handlers: Dict[
            int, Callable[[Lease, List[int]], None]] = {}
        env.process(self._expiry_sweeper(), name="rm-sweeper")
        self._sweep_period = sweep_period

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, manager: FpgaManager) -> None:
        host = manager.host
        if host in self._managers:
            raise ValueError(f"host {host} already registered")
        self._managers[host] = manager
        manager.on_failure = self._on_node_failure

    def unregister(self, host: int) -> None:
        manager = self._managers.pop(host, None)
        if manager is None:
            raise KeyError(f"host {host} not registered")
        self._evict(host)

    def manager(self, host: int) -> FpgaManager:
        return self._managers[host]

    # ------------------------------------------------------------------
    # Pool queries
    # ------------------------------------------------------------------
    def free_hosts(self) -> List[int]:
        now = self.env.now
        return [
            host for host, fm in self._managers.items()
            if host not in self._allocation
            and fm.health is FpgaHealth.HEALTHY
            and self._quarantine_until.get(host, 0.0) <= now]

    def in_quarantine(self, host: int) -> bool:
        return self._quarantine_until.get(host, 0.0) > self.env.now

    def is_allocated(self, host: int) -> bool:
        return host in self._allocation

    @property
    def pool_size(self) -> int:
        return len(self._managers)

    @property
    def allocated_count(self) -> int:
        return len(self._allocation)

    # ------------------------------------------------------------------
    # Lease lifecycle
    # ------------------------------------------------------------------
    def acquire(self, service: str, constraints: Constraints,
                on_revoked: Optional[
                    Callable[[Lease, List[int]], None]] = None) -> Lease:
        """Allocate a component; raises :class:`AllocationError` if
        infeasible."""
        hosts = select_hosts(self.topology, self.free_hosts(), constraints)
        if hosts is None:
            self.stats.failed_acquires += 1
            raise AllocationError(
                f"cannot satisfy {constraints} for service {service!r}")
        lease = Lease(service=service, hosts=hosts,
                      constraints=constraints, granted_at=self.env.now,
                      duration=self.lease_duration)
        self._leases[lease.lease_id] = lease
        for host in hosts:
            self._allocation[host] = lease.lease_id
            self._managers[host].allocated_to = service
        if on_revoked is not None:
            self._revocation_handlers[lease.lease_id] = on_revoked
        self.stats.acquires += 1
        return lease

    def release(self, lease: Lease) -> None:
        if lease.state is not LeaseState.ACTIVE:
            return
        lease.state = LeaseState.RELEASED
        self._free_hosts_of(lease)
        self._leases.pop(lease.lease_id, None)
        self._revocation_handlers.pop(lease.lease_id, None)
        self.stats.releases += 1

    def renew(self, lease: Lease) -> None:
        if lease.lease_id not in self._leases:
            raise KeyError(f"unknown lease {lease.lease_id}")
        lease.renew(self.env.now)

    def _free_hosts_of(self, lease: Lease) -> None:
        for host in lease.hosts:
            if self._allocation.get(host) == lease.lease_id:
                del self._allocation[host]
                manager = self._managers.get(host)
                if manager is not None:
                    manager.allocated_to = None

    # ------------------------------------------------------------------
    # Failure / expiry
    # ------------------------------------------------------------------
    def _on_node_failure(self, host: int) -> None:
        # Quarantine first, evict second: the replacement acquire running
        # inside the revocation handler must not pick the failed host.
        self._quarantine_until[host] = \
            self.env.now + self.quarantine_seconds
        self.stats.quarantines += 1
        self._evict(host)

    def _evict(self, host: int) -> None:
        lease_id = self._allocation.pop(host, None)
        if lease_id is None:
            return
        lease = self._leases.get(lease_id)
        if lease is None:
            return
        lease.state = LeaseState.REVOKED
        self.stats.revocations += 1
        remaining = [h for h in lease.hosts if h != host
                     and self._allocation.get(h) == lease_id]
        # Free the survivors too: the SM re-acquires a whole component
        # (simplest correct semantics for component-granularity leases).
        self._free_hosts_of(lease)
        self._leases.pop(lease_id, None)
        handler = self._revocation_handlers.pop(lease_id, None)
        if handler is not None:
            handler(lease, remaining)

    def _expiry_sweeper(self):
        while True:
            yield self.env.timeout(self._sweep_period)
            now = self.env.now
            for lease in list(self._leases.values()):
                if lease.state is LeaseState.ACTIVE and \
                        now >= lease.expires_at:
                    lease.state = LeaseState.EXPIRED
                    self.stats.expirations += 1
                    self._free_hosts_of(lease)
                    self._leases.pop(lease.lease_id, None)
                    handler = self._revocation_handlers.pop(
                        lease.lease_id, None)
                    if handler is not None:
                        handler(lease, [])
