"""Campaign-wide control-plane invariant auditor.

Replays a Resource Manager :class:`~repro.haas.journal.Journal` after a
campaign and independently re-derives the safety and liveness
invariants the control plane claims:

* **No double allocation** — no host is ever held by two leases whose
  active intervals overlap, across crashes, restarts and epochs.
* **Exactly-once grants** — an idempotency token never maps to two
  different lease grants (a retried/duplicated ``acquire`` must not
  allocate twice).
* **Fence discipline** — grant fences are strictly monotonic, and no
  FpgaManager ever *admitted* configure/traffic carrying a fence older
  than the newest it had installed (``stale_admit`` records, which the
  FM writes if its check is ever bypassed, are hard violations;
  ``fence_reject`` records are the defense working and are counted).
* **Revocations are remedied** — every revocation is eventually
  followed by a replacement grant for the same service or by
  quarantine of the offending host; every expiry is followed by a
  replacement grant (leases in our campaigns are heartbeat-kept — an
  expiry means a stall or partition, and the SM must re-acquire).

The auditor is read-only and pure: same journal, same verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .journal import Journal


@dataclass
class AuditViolation:
    kind: str
    time: float
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.kind} @ {self.time:.3f}s] {self.detail}"


@dataclass
class AuditReport:
    violations: List[AuditViolation] = field(default_factory=list)
    grants: int = 0
    releases: int = 0
    revocations: int = 0
    expirations: int = 0
    quarantines: int = 0
    crashes: int = 0
    restarts: int = 0
    epochs_seen: int = 0
    fence_rejections: int = 0
    stale_admits: int = 0
    double_allocations: int = 0
    dedup_violations: int = 0
    unremedied_revocations: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for violation in self.violations:
            out[violation.kind] = out.get(violation.kind, 0) + 1
        return out


def audit_journal(journal: Journal, *,
                  require_replacement: bool = True,
                  tail_grace: float = 0.0,
                  end_time: Optional[float] = None) -> AuditReport:
    """Audit a journal; see the module docstring for the invariants.

    ``tail_grace``: revocations/expirations within the final
    ``tail_grace`` seconds before ``end_time`` (default: the last
    record's time) are exempt from the remedied-check — the campaign
    ended before the control plane had a fair chance to replace them.
    """
    report = AuditReport()
    records = journal.records
    if end_time is None:
        end_time = records[-1].time if records else 0.0

    #: host -> (lease_id, grant_time) currently holding it.
    holders: Dict[int, Tuple[int, float]] = {}
    #: lease_id -> (service, hosts) for open leases.
    open_leases: Dict[int, Tuple[str, List[int]]] = {}
    #: idempotency token -> lease_id.
    token_grants: Dict[str, int] = {}
    #: host -> newest fence installed there (grant or barrier).
    host_fence: Dict[int, int] = {}
    max_fence = 0
    epochs = set()
    #: Unremedied (time, lease_id, service, cause_host) revocations.
    pending_revocations: List[Tuple[float, int, str, Optional[int], str]] = []
    quarantined_at: Dict[int, List[float]] = {}

    def _close_lease(lease_id: int) -> None:
        info = open_leases.pop(lease_id, None)
        if info is None:
            return
        for host in info[1]:
            holder = holders.get(host)
            if holder is not None and holder[0] == lease_id:
                del holders[host]

    for rec in records:
        kind, data, t = rec.kind, rec.data, rec.time
        if kind == "epoch":
            epochs.add(data["epoch"])
        elif kind == "grant":
            report.grants += 1
            lease_id = data["lease_id"]
            service = data["service"]
            token = data.get("token")
            if token is not None:
                previous = token_grants.get(token)
                if previous is not None and previous != lease_id:
                    report.dedup_violations += 1
                    report.violations.append(AuditViolation(
                        "dedup_broken", t,
                        f"token {token!r} granted lease {previous} and "
                        f"again lease {lease_id}"))
                token_grants.setdefault(token, lease_id)
            fence = data["fence"]
            if fence <= max_fence:
                report.violations.append(AuditViolation(
                    "fence_regression", t,
                    f"grant {lease_id} fence {fence} <= prior max "
                    f"{max_fence}"))
            max_fence = max(max_fence, fence)
            for host in data["hosts"]:
                holder = holders.get(host)
                if holder is not None:
                    report.double_allocations += 1
                    report.violations.append(AuditViolation(
                        "double_allocation", t,
                        f"host {host} granted to lease {lease_id} "
                        f"({service!r}) while still held by lease "
                        f"{holder[0]} granted at {holder[1]:.3f}s"))
                holders[host] = (lease_id, t)
                host_fence[host] = max(host_fence.get(host, 0), fence)
            open_leases[lease_id] = (service, list(data["hosts"]))
            # A grant remedies the oldest pending revocation/expiry of
            # the same service.
            for i, pending in enumerate(pending_revocations):
                if pending[2] == service:
                    pending_revocations.pop(i)
                    break
        elif kind == "release":
            report.releases += 1
            _close_lease(data["lease_id"])
        elif kind == "revoke":
            report.revocations += 1
            info = open_leases.get(data["lease_id"])
            service = data.get("service") or (info[0] if info else "?")
            pending_revocations.append(
                (t, data["lease_id"], service, data.get("cause_host"),
                 "revoke"))
            _close_lease(data["lease_id"])
        elif kind == "expire":
            report.expirations += 1
            info = open_leases.get(data["lease_id"])
            service = data.get("service") or (info[0] if info else "?")
            pending_revocations.append(
                (t, data["lease_id"], service, None, "expire"))
            _close_lease(data["lease_id"])
        elif kind == "quarantine":
            report.quarantines += 1
            quarantined_at.setdefault(data["host"], []).append(t)
        elif kind == "fence_barrier":
            fence = data["fence"]
            max_fence = max(max_fence, fence)
            host = data["host"]
            host_fence[host] = max(host_fence.get(host, 0), fence)
        elif kind == "fence_reject":
            report.fence_rejections += 1
        elif kind == "stale_admit":
            report.stale_admits += 1
            report.violations.append(AuditViolation(
                "stale_admit", t,
                f"host {data['host']} admitted {data.get('op', 'op')} "
                f"with stale fence {data['fence']} (current "
                f"{data['current']})"))
        elif kind == "crash":
            report.crashes += 1
        elif kind == "restart":
            report.restarts += 1

    report.epochs_seen = len(epochs)

    if require_replacement:
        for t, lease_id, service, cause_host, why in pending_revocations:
            if t >= end_time - tail_grace:
                continue
            if cause_host is not None and any(
                    qt >= t - 1e-9
                    for qt in quarantined_at.get(cause_host, ())):
                # Failure-revocation: the offending host was benched —
                # but replacement is still the SM's job, so only accept
                # quarantine as the remedy when the pool could not
                # replace (no later grant for anyone).  Quarantine alone
                # satisfies the invariant as stated.
                continue
            report.unremedied_revocations += 1
            report.violations.append(AuditViolation(
                "unremedied_revocation", t,
                f"{why} of lease {lease_id} ({service!r}) never followed "
                f"by a replacement grant"
                + ("" if cause_host is None
                   else f" or quarantine of host {cause_host}")))

    return report
