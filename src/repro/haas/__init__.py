"""Hardware-as-a-Service: RM / SM / FM control plane (paper §V-F)."""

from .constraints import Constraints, Locality, group_key, select_hosts
from .fpga_manager import FpgaHealth, FpgaManager, FpgaStatus
from .leases import Lease, LeaseState
from .resource_manager import (
    DEFAULT_LEASE_SECONDS,
    AllocationError,
    ResourceManager,
    RmStats,
)
from .service_manager import ServiceManager, SmStats

__all__ = [
    "AllocationError",
    "Constraints",
    "DEFAULT_LEASE_SECONDS",
    "FpgaHealth",
    "FpgaManager",
    "FpgaStatus",
    "Lease",
    "LeaseState",
    "Locality",
    "ResourceManager",
    "RmStats",
    "ServiceManager",
    "SmStats",
    "group_key",
    "select_hosts",
]
