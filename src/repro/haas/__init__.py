"""Hardware-as-a-Service: RM / SM / FM control plane (paper §V-F)."""

from .audit import AuditReport, AuditViolation, audit_journal
from .constraints import Constraints, Locality, group_key, select_hosts
from .fpga_manager import FpgaHealth, FpgaManager, FpgaStatus
from .journal import Journal, JournalRecord, RecoveredState
from .leases import EPOCH_STRIDE, Lease, LeaseState, lease_id_for
from .resource_manager import (
    DEFAULT_LEASE_SECONDS,
    AllocationError,
    LeaseExpired,
    ResourceManager,
    RmStats,
)
from .rpc import (
    RpcChannel,
    RpcConfig,
    RpcError,
    RpcStats,
    RpcTimeout,
    ServerUnavailable,
)
from .service_manager import ServiceManager, SmStats

__all__ = [
    "AllocationError",
    "AuditReport",
    "AuditViolation",
    "Constraints",
    "DEFAULT_LEASE_SECONDS",
    "EPOCH_STRIDE",
    "FpgaHealth",
    "FpgaManager",
    "FpgaStatus",
    "Journal",
    "JournalRecord",
    "Lease",
    "LeaseExpired",
    "LeaseState",
    "Locality",
    "RecoveredState",
    "ResourceManager",
    "RmStats",
    "RpcChannel",
    "RpcConfig",
    "RpcError",
    "RpcStats",
    "RpcTimeout",
    "ServerUnavailable",
    "ServiceManager",
    "SmStats",
    "audit_journal",
    "group_key",
    "lease_id_for",
    "select_hosts",
]
