"""Placement constraints for HaaS components.

"Each Component is an instance of a hardware service made up of one or
more FPGAs and a set of constraints (locality, bandwidth, etc.)."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence


class Locality(enum.Enum):
    """How tightly a component's FPGAs must be co-located."""

    ANY = "any"
    SAME_POD = "same_pod"
    SAME_TOR = "same_tor"


@dataclass(frozen=True)
class Constraints:
    """Requirements attached to a component request."""

    count: int = 1
    locality: Locality = Locality.ANY
    #: Minimum LTL bandwidth (bits/s) each member must be able to commit.
    min_bandwidth_bps: float = 0.0
    #: Hosts the component must avoid (e.g. anti-affinity with another
    #: component of the same service).
    exclude_hosts: frozenset = frozenset()

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("component needs at least one FPGA")
        if self.min_bandwidth_bps < 0:
            raise ValueError("bandwidth must be non-negative")


def group_key(topology, host: int, locality: Locality):
    """The co-location bucket for ``host`` under ``locality``."""
    coords = topology.coords(host)
    if locality is Locality.SAME_TOR:
        return (coords.pod, coords.tor)
    if locality is Locality.SAME_POD:
        return (coords.pod,)
    return ()


def select_hosts(topology, candidates: Sequence[int],
                 constraints: Constraints) -> Optional[List[int]]:
    """Pick ``constraints.count`` hosts satisfying locality, or None.

    Greedy: bucket candidates by locality group, take the first bucket
    with enough members (ANY puts everything in one bucket).
    """
    usable = [h for h in candidates if h not in constraints.exclude_hosts]
    buckets: dict = {}
    for host in usable:
        buckets.setdefault(
            group_key(topology, host, constraints.locality), []).append(host)
    for members in buckets.values():
        if len(members) >= constraints.count:
            return sorted(members)[:constraints.count]
    return None
