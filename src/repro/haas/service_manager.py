"""Service Managers (SM).

"Each service has a Service Manager node to administer the service on the
allocated resources.  SMs manage service-level tasks such as load
balancing, inter-component connectivity, and failure handling by
requesting and releasing Component leases through RM.  A SM provides
pointers to the hardware service to one or more end users."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..fpga.reconfig import Image
from ..sim import Environment
from .constraints import Constraints
from .leases import Lease, LeaseState
from .resource_manager import AllocationError, ResourceManager


@dataclass
class SmStats:
    components_acquired: int = 0
    components_lost: int = 0
    replacements: int = 0
    requests_dispatched: int = 0


class ServiceManager:
    """Administers one hardware service on leased components."""

    def __init__(self, env: Environment, name: str, rm: ResourceManager,
                 image: Image, constraints: Optional[Constraints] = None,
                 retry_backoff: float = 0.5,
                 retry_backoff_max: float = 60.0):
        self.env = env
        self.name = name
        self.rm = rm
        self.image = image
        self.constraints = constraints or Constraints()
        self.stats = SmStats()
        self.leases: List[Lease] = []
        self._rr = 0
        #: Components the SM has not yet managed to replace (pool
        #: exhausted); a background loop keeps retrying with exponential
        #: backoff until the pool frees up.
        self.pending_replacements = 0
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self._retry_loop_active = False
        #: Called with the replacement lease after a lost component is
        #: re-acquired — services hook this to rewire connectivity.
        self.on_component_replaced: Optional[Callable[[Lease], None]] = None
        #: Heartbeats are skipped until this time (control-plane stalls).
        self.heartbeat_suspended_until = 0.0

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def grow(self, components: int = 1) -> List[Lease]:
        """Acquire more components and deploy the service image on them."""
        acquired = []
        for _ in range(components):
            lease = self.rm.acquire(self.name, self.constraints,
                                    on_revoked=self._on_revoked)
            self.leases.append(lease)
            acquired.append(lease)
            self.stats.components_acquired += 1
            for host in lease.hosts:
                self.env.process(
                    self.rm.manager(host).configure(self.image),
                    name=f"sm-{self.name}-configure-{host}")
        return acquired

    def shrink(self, components: int = 1) -> None:
        """Release components back to the global pool."""
        for _ in range(min(components, len(self.leases))):
            lease = self.leases.pop()
            self.rm.release(lease)

    @property
    def hosts(self) -> List[int]:
        """All FPGAs currently serving this service."""
        out: List[int] = []
        for lease in self.leases:
            if lease.is_active(self.env.now):
                out.extend(lease.hosts)
        return out

    # ------------------------------------------------------------------
    # End-user facing
    # ------------------------------------------------------------------
    def pick(self) -> int:
        """Round-robin load balancing across the service's FPGAs."""
        hosts = self.hosts
        if not hosts:
            raise RuntimeError(f"service {self.name!r} has no capacity")
        host = hosts[self._rr % len(hosts)]
        self._rr += 1
        self.stats.requests_dispatched += 1
        return host

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_revoked(self, lease: Lease, _survivors: List[int]) -> None:
        """RM revoked a component (failure/expiry): replace it."""
        if lease in self.leases:
            self.leases.remove(lease)
        self.stats.components_lost += 1
        if not self._try_replace():
            self.pending_replacements += 1
            self._ensure_retry_loop()

    def _try_replace(self) -> bool:
        try:
            replacement = self.rm.acquire(
                self.name, self.constraints, on_revoked=self._on_revoked)
        except AllocationError:
            return False
        self.leases.append(replacement)
        self.stats.replacements += 1
        for host in replacement.hosts:
            self.env.process(
                self.rm.manager(host).configure(self.image),
                name=f"sm-{self.name}-reconfigure-{host}")
        if self.on_component_replaced is not None:
            self.on_component_replaced(replacement)
        return True

    def _ensure_retry_loop(self) -> None:
        if self._retry_loop_active:
            return
        self._retry_loop_active = True
        self.env.process(self._retry_replacements(),
                         name=f"sm-{self.name}-retry")

    def _retry_replacements(self):
        """Background exponential-backoff retry of pending replacements."""
        backoff = self.retry_backoff
        try:
            while self.pending_replacements > 0:
                yield self.env.timeout(backoff)
                while self.pending_replacements > 0 and self._try_replace():
                    self.pending_replacements -= 1
                    backoff = self.retry_backoff
                if self.pending_replacements > 0:
                    backoff = min(backoff * 2, self.retry_backoff_max)
        finally:
            self._retry_loop_active = False

    def renew_all(self) -> None:
        """Heartbeat: keep all ACTIVE component leases alive.

        Leases the RM already revoked or expired are skipped — renewing
        them would raise and kill the heartbeat process.
        """
        for lease in list(self.leases):
            if lease.state is not LeaseState.ACTIVE:
                continue
            try:
                self.rm.renew(lease)
            except KeyError:
                continue  # revoked between the state check and the renew

    def suspend_heartbeat(self, duration: float) -> None:
        """Stall the control plane: skip heartbeats for ``duration``."""
        self.heartbeat_suspended_until = max(
            self.heartbeat_suspended_until, self.env.now + duration)

    def start_heartbeat(self, period: Optional[float] = None) -> None:
        """Renew leases periodically (default: half the lease duration)."""
        if period is None:
            period = self.rm.lease_duration / 2
        if period <= 0:
            raise ValueError("heartbeat period must be positive")

        def beat(env):
            while True:
                yield env.timeout(period)
                if env.now < self.heartbeat_suspended_until:
                    continue
                self.renew_all()

        self.env.process(beat(self.env), name=f"sm-{self.name}-heartbeat")
