"""Service Managers (SM).

"Each service has a Service Manager node to administer the service on the
allocated resources.  SMs manage service-level tasks such as load
balancing, inter-component connectivity, and failure handling by
requesting and releasing Component leases through RM.  A SM provides
pointers to the hardware service to one or more end users."

All SM<->RM traffic rides an :class:`~repro.haas.rpc.RpcChannel`.  With
the default lossless config the channel is a synchronous pass-through
(identical scheduling to the direct calls it replaced); under a lossy or
partitioned config the SM holds *copies* of its leases, learns about
revocations via best-effort pushes, discovers RM restarts through the
epoch carried on every response (then re-attaches), and treats a renew
rejected with ``KeyError`` as a lost component to replace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..fpga.reconfig import Image
from ..sim import Environment
from .constraints import Constraints
from .leases import Lease, LeaseState
from .resource_manager import AllocationError, ResourceManager
from .rpc import RpcChannel, RpcConfig, RpcError


@dataclass
class SmStats:
    components_acquired: int = 0
    components_lost: int = 0
    replacements: int = 0
    requests_dispatched: int = 0
    renew_failures: int = 0       # transport-level (timeout/partition)
    leases_lost_on_renew: int = 0  # RM said KeyError: lease is gone
    rm_epoch_changes: int = 0


class ServiceManager:
    """Administers one hardware service on leased components."""

    def __init__(self, env: Environment, name: str, rm: ResourceManager,
                 image: Image, constraints: Optional[Constraints] = None,
                 retry_backoff: float = 0.5,
                 retry_backoff_max: float = 60.0,
                 rpc_config: Optional[RpcConfig] = None,
                 rpc_seed: Optional[object] = None):
        self.env = env
        self.name = name
        self.rm = rm
        self.image = image
        self.constraints = constraints or Constraints()
        self.stats = SmStats()
        self.leases: List[Lease] = []
        self._rr = 0
        #: Components the SM has not yet managed to replace (pool
        #: exhausted); a background loop keeps retrying with exponential
        #: backoff until the pool frees up.
        self.pending_replacements = 0
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self._retry_loop_active = False
        #: Called with the replacement lease after a lost component is
        #: re-acquired — services hook this to rewire connectivity.
        self.on_component_replaced: Optional[Callable[[Lease], None]] = None
        #: Called with each lease adopted by an *asynchronous* grow
        #: (lossy channel), where ``grow()`` could not return it.
        self.on_component_acquired: Optional[Callable[[Lease], None]] = None
        #: Heartbeats are skipped until this time (control-plane stalls).
        self.heartbeat_suspended_until = 0.0
        self.channel = RpcChannel(env, rm.rpc_dispatch,
                                  name=f"sm-{name}", config=rpc_config,
                                  seed=rpc_seed)
        self.channel.epoch_probe = lambda: rm.epoch
        self.channel.on_epoch_change = self._on_rm_epoch_change

    def _acquire_payload(self) -> Dict[str, Any]:
        return {"service": self.name, "constraints": self.constraints,
                "on_revoked": self._on_lease_revoked}

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def grow(self, components: int = 1) -> List[Lease]:
        """Acquire more components and deploy the service image on them.

        Over a lossless channel this is synchronous: the leases are
        returned and :class:`AllocationError` propagates.  Over a lossy
        channel acquisition is asynchronous — the returned list is empty
        and adopted leases arrive via ``on_component_acquired``; a grow
        the RM cannot satisfy becomes a pending replacement the backoff
        loop keeps retrying.
        """
        acquired = []
        for _ in range(components):
            if self.channel.inline:
                lease = self.channel.call("acquire",
                                          self._acquire_payload())
                self._adopt_lease(lease)
                acquired.append(lease)
            else:
                self.channel.call(
                    "acquire", self._acquire_payload(),
                    on_result=self._adopt_async_lease,
                    on_error=self._acquire_failed)
        return acquired

    def shrink(self, components: int = 1) -> None:
        """Release components back to the global pool."""
        for _ in range(min(components, len(self.leases))):
            lease = self.leases.pop()
            self.channel.notify("release", {"lease_id": lease.lease_id})
            # Our copy is dead to us even if the notify leg is lost (the
            # RM-side lease then just expires unrenewed).
            lease.state = LeaseState.RELEASED

    def _adopt_lease(self, lease: Lease, replacement: bool = False) -> None:
        self.leases.append(lease)
        verb = "reconfigure" if replacement else "configure"
        if replacement:
            self.stats.replacements += 1
        else:
            self.stats.components_acquired += 1
        for host in lease.hosts:
            self.env.process(
                self.rm.manager(host).configure(self.image,
                                                fence=lease.fence),
                name=f"sm-{self.name}-{verb}-{host}")
        if replacement and self.on_component_replaced is not None:
            self.on_component_replaced(lease)

    def _adopt_async_lease(self, lease: Lease) -> None:
        self._adopt_lease(lease)
        if self.on_component_acquired is not None:
            self.on_component_acquired(lease)

    def _acquire_failed(self, _exc: Exception) -> None:
        self.pending_replacements += 1
        self._ensure_retry_loop()

    @property
    def hosts(self) -> List[int]:
        """All FPGAs currently serving this service."""
        out: List[int] = []
        for lease in self.leases:
            if lease.is_active(self.env.now):
                out.extend(lease.hosts)
        return out

    def lease_of(self, host: int) -> Optional[Lease]:
        for lease in self.leases:
            if host in lease.hosts:
                return lease
        return None

    # ------------------------------------------------------------------
    # End-user facing
    # ------------------------------------------------------------------
    def pick(self) -> int:
        """Round-robin load balancing across the service's FPGAs."""
        hosts = self.hosts
        if not hosts:
            raise RuntimeError(f"service {self.name!r} has no capacity")
        host = hosts[self._rr % len(hosts)]
        self._rr += 1
        self.stats.requests_dispatched += 1
        return host

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_lease_revoked(self, lease_id: int,
                          survivors: List[int]) -> None:
        """Revocation push from the RM (delivered over the channel, so
        it may arrive late, duplicated, or — behind a partition — never;
        renew failures and epoch re-attach are the backstops)."""
        lease = next((l for l in self.leases
                      if l.lease_id == lease_id), None)
        if lease is None:
            return
        lease.state = LeaseState.REVOKED
        self._on_revoked(lease, survivors)

    def _on_revoked(self, lease: Lease, _survivors: List[int]) -> None:
        """RM revoked a component (failure/expiry): replace it."""
        if lease in self.leases:
            self.leases.remove(lease)
        self.stats.components_lost += 1
        if not self._try_replace():
            self.pending_replacements += 1
            self._ensure_retry_loop()

    def _try_replace(self) -> bool:
        if not self.channel.inline:
            # Asynchronous: claim success now; a failed outcome re-pends
            # itself, so nothing is lost — only retried later.
            self.channel.call(
                "acquire", self._acquire_payload(),
                on_result=lambda lease: self._adopt_lease(
                    lease, replacement=True),
                on_error=self._acquire_failed)
            return True
        try:
            replacement = self.channel.call("acquire",
                                            self._acquire_payload())
        except (AllocationError, RpcError):
            return False
        self._adopt_lease(replacement, replacement=True)
        return True

    def _ensure_retry_loop(self) -> None:
        if self._retry_loop_active:
            return
        self._retry_loop_active = True
        self.env.process(self._retry_replacements(),
                         name=f"sm-{self.name}-retry")

    def _retry_replacements(self):
        """Background exponential-backoff retry of pending replacements."""
        backoff = self.retry_backoff
        try:
            while self.pending_replacements > 0:
                yield self.env.timeout(backoff)
                while self.pending_replacements > 0 and self._try_replace():
                    self.pending_replacements -= 1
                    backoff = self.retry_backoff
                if self.pending_replacements > 0:
                    backoff = min(backoff * 2, self.retry_backoff_max)
        finally:
            self._retry_loop_active = False

    # ------------------------------------------------------------------
    # Heartbeat / lease maintenance
    # ------------------------------------------------------------------
    def renew_all(self) -> None:
        """Heartbeat: keep all ACTIVE component leases alive.

        Leases the SM already knows are dead are skipped.  A renew the
        RM rejects with ``KeyError`` (revoked/expired behind our back —
        e.g. while we were partitioned) means the component is *gone*:
        drop it and seek a replacement.  Transport failures are counted
        and left alone — the lease either survives to the next beat or
        the KeyError path catches it after the partition heals.
        """
        for lease in list(self.leases):
            if lease.state is not LeaseState.ACTIVE:
                continue
            self.channel.call(
                "renew", {"lease_id": lease.lease_id},
                on_result=lambda at, l=lease: self._renewed(l, at),
                on_error=lambda exc, l=lease: self._renew_failed(l, exc))

    def _renewed(self, lease: Lease, granted_at: float) -> None:
        if lease.state is LeaseState.ACTIVE:
            lease.granted_at = granted_at

    def _renew_failed(self, lease: Lease, exc: Exception) -> None:
        if isinstance(exc, KeyError):
            # The RM no longer honors this lease.  If a revocation push
            # got here first the lease is already gone from our table.
            if lease in self.leases:
                lease.state = LeaseState.EXPIRED
                self.stats.leases_lost_on_renew += 1
                self._on_revoked(lease, [])
            return
        self.stats.renew_failures += 1

    def suspend_heartbeat(self, duration: float) -> None:
        """Stall the control plane: skip heartbeats for ``duration``."""
        self.heartbeat_suspended_until = max(
            self.heartbeat_suspended_until, self.env.now + duration)

    def start_heartbeat(self, period: Optional[float] = None) -> None:
        """Renew leases periodically (default: half the lease duration)."""
        if period is None:
            period = self.rm.lease_duration / 2
        if period <= 0:
            raise ValueError("heartbeat period must be positive")

        def beat(env):
            while True:
                yield env.timeout(period)
                if env.now < self.heartbeat_suspended_until:
                    continue
                self.renew_all()

        self.env.process(beat(self.env), name=f"sm-{self.name}-heartbeat")

    # ------------------------------------------------------------------
    # RM restart handling
    # ------------------------------------------------------------------
    def _on_rm_epoch_change(self, _epoch: int) -> None:
        """The RM restarted (every response carries its epoch): its
        revocation handlers died with the old process, so re-attach our
        surviving leases and replace the ones recovery dropped."""
        self.stats.rm_epoch_changes += 1
        lease_ids = [lease.lease_id for lease in self.leases
                     if lease.state is LeaseState.ACTIVE]
        self.channel.call(
            "reattach",
            {"lease_ids": lease_ids,
             "on_revoked": self._on_lease_revoked},
            on_result=self._apply_reattach,
            on_error=lambda _exc: None)

    def _apply_reattach(self, result: Dict[str, Any]) -> None:
        kept = result["kept"]
        for lease in list(self.leases):
            if lease.state is not LeaseState.ACTIVE:
                continue
            if lease.lease_id in kept:
                lease.granted_at = kept[lease.lease_id]
            else:
                lease.state = LeaseState.REVOKED
                self._on_revoked(lease, [])
