"""The control-plane RPC seam: a simulated, failure-injectable channel.

All SM<->RM and FM<->RM traffic flows through an :class:`RpcChannel`
instead of plain method calls.  A channel has two operating modes:

* **inline** (the default, when the config specifies no loss, no
  duplication and no delay): every call executes the server handler
  synchronously with zero simulation events and zero RNG draws, so a
  lossless control plane behaves — and schedules — exactly like the
  direct method calls it replaced (seeded digests are unchanged).
* **simulated**: each call becomes request/response message legs over
  an unreliable medium with configurable loss, duplication and delay,
  a per-call timeout, and exponential-backoff-with-jitter retries.

Every call carries an **idempotency token**; the server deduplicates
tokens (see :meth:`ResourceManager.rpc_dispatch`) so a retried or
duplicated ``acquire`` is exactly-once *in effect* — it can never
double-allocate.

A channel can also be **partitioned** (the ``NETWORK_PARTITION`` fault):
while partitioned, every message leg in both directions is dropped, so
a Service Manager stranded behind a partition can neither renew its
leases nor hear revocations — the split-brain scenario that lease
fencing (``Lease.fence`` checked by the FpgaManager) exists to defuse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, Optional

from ..sim import Environment


class RpcError(Exception):
    """Base class for transport-level RPC failures."""


class RpcTimeout(RpcError):
    """All retries exhausted without a response (or partitioned)."""


class ServerUnavailable(RpcError):
    """Raised by a server handler whose process is down (RM crash).

    The channel treats it like a lost message: the caller sees silence,
    then a timeout — never a clean error — exactly as a crashed process
    looks from the other side of a network.
    """


@dataclass
class RpcConfig:
    """Failure model and retry policy for one channel."""

    #: Probability an individual message leg is lost.
    loss_probability: float = 0.0
    #: Probability a request leg is delivered twice.
    duplicate_probability: float = 0.0
    #: One-way delivery latency (seconds) plus uniform jitter.
    delay: float = 0.0
    delay_jitter: float = 0.0
    #: Per-attempt response deadline.
    call_timeout: float = 0.25
    #: Retransmit attempts after the first (so max_retries+1 sends).
    max_retries: int = 6
    #: Exponential backoff between attempts, with multiplicative jitter.
    backoff_base: float = 0.05
    backoff_max: float = 1.0
    backoff_jitter: float = 0.5
    #: Resend attempts for one-way pushes (server -> client notices).
    push_attempts: int = 3

    @property
    def inline(self) -> bool:
        """Lossless + zero-delay: execute calls synchronously."""
        return (self.loss_probability == 0.0
                and self.duplicate_probability == 0.0
                and self.delay == 0.0 and self.delay_jitter == 0.0)


@dataclass
class RpcStats:
    calls: int = 0
    requests_sent: int = 0        # legs, including retries + duplicates
    requests_lost: int = 0
    requests_duplicated: int = 0
    responses_sent: int = 0
    responses_lost: int = 0
    retries: int = 0
    timeouts: int = 0             # calls that exhausted every retry
    failures: int = 0             # application errors delivered
    pushes: int = 0
    pushes_lost: int = 0
    server_unavailable: int = 0
    partition_drops: int = 0


class _Call:
    """One logical RPC: survives across retransmits and duplicates."""

    __slots__ = ("method", "payload", "on_result", "on_error", "done")

    def __init__(self, method: str, payload: Dict[str, Any],
                 on_result: Optional[Callable[[Any], None]],
                 on_error: Optional[Callable[[Exception], None]]):
        self.method = method
        self.payload = payload
        self.on_result = on_result
        self.on_error = on_error
        self.done = False


class RpcChannel:
    """A client<->server message channel with injectable unreliability.

    ``server`` is the dispatch callable ``(channel, method, payload) ->
    result``; it may raise application errors (delivered to the caller)
    or :class:`ServerUnavailable` (swallowed — looks like loss).
    """

    def __init__(self, env: Environment,
                 server: Callable[["RpcChannel", str, Dict[str, Any]], Any],
                 name: str = "rpc",
                 config: Optional[RpcConfig] = None,
                 seed: Optional[object] = None):
        self.env = env
        self.server = server
        self.name = name
        self.config = config or RpcConfig()
        self.stats = RpcStats()
        self._token_seq = count(1)
        # The RNG is only touched in simulated mode; a dedicated stream
        # keeps channel noise out of every other seeded draw.
        self._rng = random.Random(seed if seed is not None
                                  else f"rpc-{name}")
        #: Both directions drop everything while ``now`` is before this.
        self.partition_until = 0.0
        #: Optional: poll the server's epoch on every delivered response
        #: and fire ``on_epoch_change(new_epoch)`` when it moves — how a
        #: client learns its server was restarted.
        self.epoch_probe: Optional[Callable[[], int]] = None
        self.on_epoch_change: Optional[Callable[[int], None]] = None
        self._seen_epoch: Optional[int] = None

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    @property
    def inline(self) -> bool:
        return self.config.inline

    @property
    def partitioned(self) -> bool:
        return self.env.now < self.partition_until

    def partition_for(self, duration: float) -> None:
        """Drop every message in both directions for ``duration``."""
        self.partition_until = max(self.partition_until,
                                   self.env.now + duration)

    def heal_partition(self) -> None:
        self.partition_until = 0.0

    # ------------------------------------------------------------------
    # Client -> server request/response
    # ------------------------------------------------------------------
    def call(self, method: str, payload: Optional[Dict[str, Any]] = None,
             on_result: Optional[Callable[[Any], None]] = None,
             on_error: Optional[Callable[[Exception], None]] = None,
             token: Optional[str] = None) -> Any:
        """Issue one logical RPC.

        Inline mode executes synchronously: the result is returned (and
        ``on_result`` invoked, if given); application errors raise
        unless ``on_error`` is given.  Simulated mode returns ``None``
        immediately and delivers the outcome to the callbacks after the
        message legs and retries play out.
        """
        payload = dict(payload or {})
        if token is None:
            token = f"{self.name}:{next(self._token_seq)}"
        payload["token"] = token
        self.stats.calls += 1

        if self.inline:
            return self._call_inline(method, payload, on_result, on_error)

        call = _Call(method, payload, on_result, on_error)
        self.env.process(self._call_process(call),
                         name=f"rpc-{self.name}-{method}")
        return None

    def notify(self, method: str,
               payload: Optional[Dict[str, Any]] = None) -> None:
        """Client -> server one-way message (result and errors ignored,
        transport retries still apply)."""
        self.call(method, payload,
                  on_result=lambda _r: None, on_error=lambda _e: None)

    def _call_inline(self, method, payload, on_result, on_error):
        self.stats.requests_sent += 1
        if self.partitioned:
            self.stats.partition_drops += 1
            self.stats.timeouts += 1
            err: Exception = RpcTimeout(
                f"{method}: partitioned from server")
            if on_error is not None:
                on_error(err)
                return None
            raise err
        try:
            result = self.server(self, method, payload)
        except ServerUnavailable as exc:
            self.stats.server_unavailable += 1
            self.stats.timeouts += 1
            err = RpcTimeout(f"{method}: {exc}")
            if on_error is not None:
                on_error(err)
                return None
            raise err from exc
        except Exception as exc:
            self.stats.failures += 1
            if on_error is not None:
                on_error(exc)
                return None
            raise
        self.stats.responses_sent += 1
        self._observe_epoch()
        if on_result is not None:
            on_result(result)
        return result

    def _call_process(self, call: _Call):
        config = self.config
        backoff = config.backoff_base
        for attempt in range(config.max_retries + 1):
            self._send_request(call)
            yield self.env.timeout(config.call_timeout)
            if call.done:
                return
            if attempt == config.max_retries:
                break
            self.stats.retries += 1
            jitter = 1.0 + config.backoff_jitter * self._rng.random()
            yield self.env.timeout(backoff * jitter)
            if call.done:
                return
            backoff = min(backoff * 2.0, config.backoff_max)
        call.done = True
        self.stats.timeouts += 1
        if call.on_error is not None:
            call.on_error(RpcTimeout(
                f"{call.method}: no response after "
                f"{config.max_retries + 1} attempts"))

    def _send_request(self, call: _Call) -> None:
        self.stats.requests_sent += 1
        if self._leg_dropped():
            self.stats.requests_lost += 1
            return
        self.env.call_later(self._leg_delay(), self._deliver_request,
                            call)
        if self._rng.random() < self.config.duplicate_probability:
            self.stats.requests_sent += 1
            self.stats.requests_duplicated += 1
            self.env.call_later(self._leg_delay(), self._deliver_request,
                                call)

    def _deliver_request(self, call: _Call) -> None:
        # Duplicates and retransmits still reach the server (that is the
        # point); the server's idempotency table makes them harmless.
        try:
            result = self.server(self, call.method, call.payload)
        except ServerUnavailable:
            self.stats.server_unavailable += 1
            return  # no response: indistinguishable from loss
        except Exception as exc:  # application error — a real response
            self._send_response(call, None, exc)
            return
        self._send_response(call, result, None)

    def _send_response(self, call: _Call, result: Any,
                       error: Optional[Exception]) -> None:
        self.stats.responses_sent += 1
        if self._leg_dropped():
            self.stats.responses_lost += 1
            return
        self.env.call_later(self._leg_delay(), self._deliver_response,
                            call, result, error)

    def _deliver_response(self, call: _Call, result: Any,
                          error: Optional[Exception]) -> None:
        if call.done:
            return  # response to a retransmit already delivered
        call.done = True
        self._observe_epoch()
        if error is not None:
            self.stats.failures += 1
            if call.on_error is not None:
                call.on_error(error)
        elif call.on_result is not None:
            call.on_result(result)

    # ------------------------------------------------------------------
    # Server -> client one-way pushes (revocations, fence installs)
    # ------------------------------------------------------------------
    def push(self, fn: Callable[..., None], *args: Any) -> None:
        """Deliver ``fn(*args)`` to the client over the same unreliable
        medium: bounded resends, first arrival wins.  A push that loses
        every leg (or is partitioned away) is simply gone — the client's
        own recovery paths (renew errors, epoch resync) must cover it.
        """
        self.stats.pushes += 1
        if self.inline:
            if self.partitioned:
                self.stats.partition_drops += 1
                self.stats.pushes_lost += 1
                return
            fn(*args)
            return
        self.env.process(self._push_process(fn, args),
                         name=f"rpc-{self.name}-push")

    def _push_process(self, fn: Callable[..., None], args: tuple):
        config = self.config
        state = {"delivered": False}

        def deliver():
            if state["delivered"]:
                return
            state["delivered"] = True
            fn(*args)

        backoff = config.backoff_base
        for _attempt in range(max(config.push_attempts, 1)):
            if not self._leg_dropped():
                self.env.call_later(self._leg_delay(), deliver)
            yield self.env.timeout(config.call_timeout + backoff)
            if state["delivered"]:
                return
            backoff = min(backoff * 2.0, config.backoff_max)
        if not state["delivered"]:
            self.stats.pushes_lost += 1

    # ------------------------------------------------------------------
    # Medium
    # ------------------------------------------------------------------
    def _leg_dropped(self) -> bool:
        if self.partitioned:
            self.stats.partition_drops += 1
            return True
        return self._rng.random() < self.config.loss_probability

    def _leg_delay(self) -> float:
        config = self.config
        delay = config.delay
        if config.delay_jitter > 0.0:
            delay += self._rng.random() * config.delay_jitter
        return delay

    def _observe_epoch(self) -> None:
        if self.epoch_probe is None:
            return
        epoch = self.epoch_probe()
        if self._seen_epoch is None:
            self._seen_epoch = epoch
            return
        if epoch != self._seen_epoch:
            self._seen_epoch = epoch
            if self.on_epoch_change is not None:
                self.on_epoch_change(epoch)
