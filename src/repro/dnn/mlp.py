"""A small multi-layer perceptron, from scratch on numpy.

The functional substrate behind the pooled "latency-sensitive Deep Neural
Network accelerators" of §V-E.  Forward pass, ReLU/softmax, and
minibatch SGD training with hand-written backprop — enough to verify the
accelerator role computes real inferences and that its outputs match a
reference implementation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class Mlp:
    """Fully-connected ReLU network with a softmax head."""

    def __init__(self, layer_sizes: Sequence[int], seed: int = 0):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output layers")
        self.layer_sizes = list(layer_sizes)
        rng = np.random.default_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(
                rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.weights)

    @property
    def parameter_count(self) -> int:
        return sum(w.size + b.size
                   for w, b in zip(self.weights, self.biases))

    @property
    def madds_per_inference(self) -> int:
        """Multiply-accumulates for one forward pass (batch size 1)."""
        return sum(w.size for w in self.weights)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray,
                keep_activations: bool = False):
        """Forward pass; optionally return intermediate activations."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        activations = [x]
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            x = x @ w + b
            if i < self.num_layers - 1:
                x = relu(x)
            activations.append(x)
        probs = softmax(x)
        if keep_activations:
            return probs, activations
        return probs

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x), axis=-1)

    # ------------------------------------------------------------------
    def train_step(self, x: np.ndarray, labels: np.ndarray,
                   learning_rate: float = 0.05) -> float:
        """One SGD step on cross-entropy; returns the batch loss."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        labels = np.asarray(labels, dtype=int)
        probs, activations = self.forward(x, keep_activations=True)
        batch = x.shape[0]
        loss = float(-np.mean(np.log(
            probs[np.arange(batch), labels] + 1e-12)))

        grad = probs.copy()
        grad[np.arange(batch), labels] -= 1.0
        grad /= batch
        for i in range(self.num_layers - 1, -1, -1):
            a_in = activations[i]
            grad_w = a_in.T @ grad
            grad_b = grad.sum(axis=0)
            if i > 0:
                grad = (grad @ self.weights[i].T) * \
                    (activations[i] > 0)
            self.weights[i] -= learning_rate * grad_w
            self.biases[i] -= learning_rate * grad_b
        return loss

    def fit(self, x: np.ndarray, labels: np.ndarray, epochs: int = 30,
            batch_size: int = 32, learning_rate: float = 0.05,
            seed: int = 0) -> List[float]:
        """Minibatch SGD; returns per-epoch mean losses."""
        x = np.asarray(x, dtype=float)
        labels = np.asarray(labels, dtype=int)
        rng = np.random.default_rng(seed)
        losses = []
        n = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                epoch_losses.append(
                    self.train_step(x[idx], labels[idx], learning_rate))
            losses.append(float(np.mean(epoch_losses)))
        return losses


def synthetic_classification(num_samples: int, num_features: int = 16,
                             num_classes: int = 4, seed: int = 0
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Linearly-separable-ish blobs for training/verifying the MLP."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 2.5, size=(num_classes, num_features))
    labels = rng.integers(0, num_classes, size=num_samples)
    x = centers[labels] + rng.normal(0.0, 1.0,
                                     size=(num_samples, num_features))
    return x, labels
