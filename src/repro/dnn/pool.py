"""Shared DNN accelerator pool and the oversubscription study (Fig. 12).

"To evaluate the impact of remote service oversubscription, we deployed a
small pool of latency-sensitive DNN accelerators shared by multiple
software clients ... each software client sends synthetic traffic to the
DNN pool at a rate several times higher than the expected throughput per
client in deployment.  We increased the ratio of software clients to
accelerators (by removing FPGAs from the pool) to measure the impact on
latency due to oversubscription."

Latency is measured "between when a request is enqueued to the work queue
and when its response is received from the accelerator" — for remote
clients this includes LTL network time both ways.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.metrics import LatencyRecorder
from ..overload.deadline import expires_at_of
from ..overload.hedging import HedgeController
from ..sim import Environment, RandomStreams, Resource
from ..trace.stages import Stage
from .accelerator import DnnAccelerator, DnnAcceleratorConfig

#: The paper's measured sustainable clients per FPGA at stress rates.
SUSTAINABLE_CLIENTS_PER_FPGA = 22.5
#: Stress clients send at several times the expected production rate;
#: with this multiplier an FPGA saturates at ~3 stress clients, matching
#: Fig. 12's x-axis knee.
STRESS_RATE_MULTIPLIER = 7.5


@dataclass
class RemoteNetworkModel:
    """Added latency for reaching a pooled accelerator over LTL.

    ``tail_probability``/``tail_min``/``tail_max`` model rare production
    network outliers (bursty cross-traffic on oversubscribed uplinks) that
    dominate the 99th percentile while barely moving the average —
    exactly the 1% / 4.7% / 32% (avg/95th/99th) overheads of §V-E.
    """

    round_trip: float = 2.9e-6
    request_bytes: int = 2 * 1024
    response_bytes: int = 4 * 1024
    ltl_bandwidth_bps: float = 38e9
    per_message_overhead: float = 2.0e-6
    #: LTL retransmission after a drop: the 50 us timeout plus the redo.
    retransmit_probability: float = 0.055
    retransmit_min: float = 60e-6
    retransmit_max: float = 100e-6
    #: Rare congestion events on oversubscribed uplinks.
    tail_probability: float = 0.014
    tail_min: float = 0.7e-3
    tail_max: float = 1.1e-3

    def base_delay(self) -> float:
        wire = (self.request_bytes + self.response_bytes) * 8 \
            / self.ltl_bandwidth_bps
        return self.round_trip + wire + 2 * self.per_message_overhead

    def sample(self, rng: random.Random) -> float:
        delay = self.base_delay() * rng.uniform(0.95, 1.1)
        if rng.random() < self.retransmit_probability:
            delay += rng.uniform(self.retransmit_min, self.retransmit_max)
        if rng.random() < self.tail_probability:
            delay += rng.uniform(self.tail_min, self.tail_max)
        return delay


class DnnPool:
    """A pool of DNN accelerators behind per-FPGA work queues.

    The Service Manager's load balancing is join-shortest-queue across
    the pool (clients are not pinned), which is what keeps the pool
    efficient until it truly runs out of aggregate throughput.
    """

    def __init__(self, env: Environment, num_fpgas: int, rng: random.Random,
                 accelerator_config: Optional[DnnAcceleratorConfig] = None,
                 remote: Optional[RemoteNetworkModel] = None):
        if num_fpgas < 1:
            raise ValueError("pool needs at least one FPGA")
        self.env = env
        self.remote = remote
        # Required: derive per-pool streams from RandomStreams (e.g.
        # ``streams.stream("dnn-pool")``) — the old seed-0 fallback
        # correlated network jitter across pools and shard processes.
        self.rng = rng
        self.accelerators = [
            DnnAccelerator(accelerator_config) for _ in range(num_fpgas)]
        self._slots = [Resource(env, capacity=1) for _ in range(num_fpgas)]
        self._queue_depth = [0] * num_fpgas
        #: Per-FPGA service-time multiplier (limplock knob: a slow peer
        #: serves at ``slow_factor`` x the nominal time until reset).
        self.slow_factor = [1.0] * num_fpgas
        self.latency = LatencyRecorder("dnn-request")
        self.completed = 0
        #: Requests actually *served* by an accelerator (primaries plus
        #: hedges that started service) — the hedge-budget denominator
        #: measures extra backend load against this.
        self.backend_served = 0
        #: Requests dropped because their deadline expired in the pool.
        self.deadline_drops = 0

    @property
    def num_fpgas(self) -> int:
        return len(self.accelerators)

    def remove_fpga(self) -> None:
        """Shrink the pool by one (the paper's oversubscription knob)."""
        if self.num_fpgas <= 1:
            raise ValueError("cannot empty the pool")
        self.accelerators.pop()
        self._slots.pop()
        self._queue_depth.pop()
        self.slow_factor.pop()

    def set_slow(self, index: int, factor: float) -> None:
        """Limplock ``index``: it keeps serving, ``factor`` x slower."""
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1.0")
        self.slow_factor[index] = factor

    def _pick(self, exclude: Optional[int] = None) -> int:
        best = -1
        for i in range(self.num_fpgas):
            if i == exclude:
                continue
            if best < 0 or self._queue_depth[i] < self._queue_depth[best]:
                best = i
        return best

    def _service_time(self, index: int) -> float:
        return self.accelerators[index].sample_service_time(self.rng) \
            * self.slow_factor[index]

    def request(self, deadline=None, trace=None):
        """Process: one client request through the pool.

        ``deadline`` (a Deadline or absolute expiry in seconds) makes
        the pool drop-and-account the request instead of serving it once
        expired — checked at entry and again when the accelerator slot
        is granted (the wait is where overload shows up).  ``trace`` (a
        :class:`~repro.trace.TraceContext`) attributes the LTL network
        halves to ``pool.net``, the slot wait to ``pool.queue`` and the
        accelerator service to ``role.service``.
        """
        enqueued_at = self.env.now
        expires_at = expires_at_of(deadline)
        if expires_at is not None and self.env.now > expires_at:
            self.deadline_drops += 1
            return None
        network = 0.0
        if self.remote is not None:
            network = self.remote.sample(self.rng)
        index = self._pick()
        self._queue_depth[index] += 1
        # Outbound network half before the accelerator sees the request.
        if network > 0:
            yield self.env.timeout(network / 2)
            if trace is not None:
                trace.tap(Stage.POOL_NET, self.env.now)
        with self._slots[index].request() as slot:
            yield slot
            if trace is not None:
                trace.tap(Stage.POOL_QUEUE, self.env.now)
            if expires_at is not None and self.env.now > expires_at:
                self._queue_depth[index] -= 1
                self.deadline_drops += 1
                return None
            self.backend_served += 1
            yield self.env.timeout(self._service_time(index))
            if trace is not None:
                trace.tap(Stage.ROLE_SERVICE, self.env.now)
        self._queue_depth[index] -= 1
        if network > 0:
            yield self.env.timeout(network / 2)
            if trace is not None:
                trace.tap(Stage.POOL_NET, self.env.now)
        latency = self.env.now - enqueued_at
        self.latency.record(latency)
        self.completed += 1
        return latency

    # ------------------------------------------------------------------
    # Hedged requests (tail-at-scale)
    # ------------------------------------------------------------------
    def _race_leg(self, index: int, network: float, state: Dict,
                  label: str, done) -> None:
        """One leg of a hedged race; fills ``state[label]`` in place."""

        def leg():
            out = state[label]
            if network > 0:
                yield self.env.timeout(network / 2)
            self._queue_depth[index] += 1
            slot = self._slots[index].request()
            out["slot"] = slot
            yield slot
            if state["winner"] is not None:
                # Lost while queued: give the slot straight back.
                self._slots[index].release(slot)
                self._queue_depth[index] -= 1
                return
            out["started"] = True
            self.backend_served += 1
            service = self._service_time(index)
            yield self.env.timeout(service)
            self._slots[index].release(slot)
            self._queue_depth[index] -= 1
            if network > 0:
                yield self.env.timeout(network / 2)
            if state["winner"] is None:
                state["winner"] = label
                done.succeed(label)

        self.env.process(leg(), name=f"dnn-{label}")

    def request_hedged(self, hedge: HedgeController, deadline=None):
        """Process: one request with tail hedging (Dean & Barroso).

        The primary goes to the JSQ-chosen FPGA.  If it has not answered
        after the controller's P95-derived delay — and the global hedge
        budget allows — one hedge goes to a *different* FPGA; the first
        response wins.  The losing leg is cancelled if it has not yet
        started service, so a queued loser adds zero backend load.
        """
        enqueued_at = self.env.now
        expires_at = expires_at_of(deadline)
        if expires_at is not None and self.env.now > expires_at:
            self.deadline_drops += 1
            return None
        hedge.on_primary()
        done = self.env.event()
        state: Dict = {"winner": None,
                       "primary": {"slot": None, "started": False},
                       "hedge": {"slot": None, "started": False},
                       "hedge_issued": False}
        network = self.remote.sample(self.rng) if self.remote else 0.0
        primary_index = self._pick()
        self._race_leg(primary_index, network, state, "primary", done)

        delay = hedge.hedge_delay()

        def hedger():
            yield self.env.timeout(delay)
            if state["winner"] is not None or self.num_fpgas < 2:
                return
            if not hedge.try_acquire_hedge():
                return
            state["hedge_issued"] = True
            hedge_network = self.remote.sample(self.rng) if self.remote \
                else 0.0
            self._race_leg(self._pick(exclude=primary_index),
                           hedge_network, state, "hedge", done)

        if delay is not None and self.num_fpgas >= 2:
            self.env.process(hedger(), name="dnn-hedger")

        winner = yield done
        # Cancel the losing leg if it is still *queued*: releasing an
        # ungranted request removes it from the wait queue, so it never
        # reaches an accelerator.  A granted-but-unstarted loser cleans
        # itself up when its process resumes and sees the winner.
        loser_cancelled = False
        loser = "hedge" if winner == "primary" else "primary"
        if loser == "primary" or state["hedge_issued"]:
            out = state[loser]
            slot = out["slot"]
            if slot is not None and not out["started"] \
                    and not slot.released and not slot.triggered:
                self._slots_release_for(slot)
                loser_cancelled = True
        latency = self.env.now - enqueued_at
        self.latency.record(latency)
        self.completed += 1
        hedge.observe(latency)
        if state["hedge_issued"]:
            hedge.on_win(winner == "hedge",
                         loser_cancelled_unstarted=loser_cancelled)
        return latency

    def _slots_release_for(self, slot_request) -> None:
        """Release a leg's slot request on whichever FPGA issued it."""
        resource = slot_request.resource
        resource.release(slot_request)
        index = self._slots.index(resource)
        self._queue_depth[index] -= 1


@dataclass
class OversubscriptionResult:
    """One point of the Fig. 12 sweep."""

    oversubscription: float
    num_clients: int
    num_fpgas: int
    latency: LatencyRecorder

    def row(self) -> Dict[str, float]:
        out = self.latency.summary()
        out["oversubscription"] = self.oversubscription
        out["clients"] = float(self.num_clients)
        out["fpgas"] = float(self.num_fpgas)
        return out


def run_oversubscription_point(num_clients: int, num_fpgas: int,
                               remote: Optional[RemoteNetworkModel] = None,
                               requests_per_client: int = 300,
                               accelerator_config:
                               Optional[DnnAcceleratorConfig] = None,
                               seed: int = 0) -> OversubscriptionResult:
    """Simulate one (clients, FPGAs) configuration.

    Each client is an open-loop Poisson source at the stress rate
    (capacity / 3 per client, so the pool saturates at 3 clients/FPGA).
    """
    env = Environment()
    # SHA-256-derived child streams (process-stable; see repro.sim):
    # the pool's network jitter and every client's arrival process get
    # independent streams off the one experiment seed.
    streams = RandomStreams(seed=seed)
    pool = DnnPool(env, num_fpgas, rng=streams.stream("dnn-pool"),
                   accelerator_config=accelerator_config, remote=remote)
    client_rate = pool.accelerators[0].capacity_rps / 3.0

    def client(client_id: int):
        rng = streams.stream(f"client-{client_id}")
        for _ in range(requests_per_client):
            env.process(pool.request())
            yield env.timeout(rng.expovariate(client_rate))

    for cid in range(num_clients):
        env.process(client(cid), name=f"client-{cid}")
    env.run()
    recorder = LatencyRecorder("steady")
    warmup = int(0.05 * len(pool.latency.samples))
    recorder.extend(pool.latency.samples[warmup:])
    return OversubscriptionResult(
        oversubscription=num_clients / num_fpgas,
        num_clients=num_clients, num_fpgas=num_fpgas, latency=recorder)


def oversubscription_sweep(ratios: List[float], base_fpgas: int = 8,
                           remote: Optional[RemoteNetworkModel] = None,
                           requests_per_client: int = 300,
                           seed: int = 0) -> List[OversubscriptionResult]:
    """Sweep clients-per-FPGA ratios with a fixed client population.

    Mirrors the paper: the client population stays put while FPGAs are
    removed from the pool.
    """
    results = []
    num_clients = base_fpgas  # 1:1 at ratio 1.0 with the full pool
    for i, ratio in enumerate(ratios):
        num_fpgas = max(1, round(num_clients / ratio))
        results.append(run_oversubscription_point(
            num_clients=num_clients, num_fpgas=num_fpgas, remote=remote,
            requests_per_client=requests_per_client, seed=seed + i))
    return results
