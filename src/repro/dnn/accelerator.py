"""DNN accelerator role: timing model over the MLP substrate.

A latency-sensitive inference accelerator occupying the role region:
requests are served serially from a work queue, with service time
= pipeline overhead + MAdds / (array throughput).  Defaults give a
~1.2 ms inference, the scale at which the paper's Fig. 12 latency
categories live.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from .mlp import Mlp


@dataclass
class DnnAcceleratorConfig:
    """Hardware parameters of the DNN role."""

    clock_hz: float = 175e6
    #: MAdds retired per cycle by the systolic array.
    madds_per_cycle: int = 4096
    #: Fixed per-request overhead: DMA descriptor, weight prefetch, drain.
    per_request_overhead: float = 60e-6
    #: Service-time dispersion (weight reuse, layer shapes, padding).
    service_sigma: float = 0.12


class DnnAccelerator:
    """One FPGA's DNN role (timing + optional functional model)."""

    def __init__(self, config: Optional[DnnAcceleratorConfig] = None,
                 model: Optional[Mlp] = None,
                 madds_per_inference: Optional[int] = None):
        self.config = config or DnnAcceleratorConfig()
        self.model = model
        if madds_per_inference is None:
            if model is not None:
                madds_per_inference = model.madds_per_inference
            else:
                # Default workload: ~800 MMAdds per request (a mid-size
                # fully-connected stack with batching).
                madds_per_inference = 800_000_000
        self.madds_per_inference = madds_per_inference

    @property
    def mean_service_time(self) -> float:
        cfg = self.config
        compute = self.madds_per_inference / (
            cfg.madds_per_cycle * cfg.clock_hz)
        return cfg.per_request_overhead + compute

    def sample_service_time(self, rng: random.Random) -> float:
        """Draw one request's service time (lognormal dispersion)."""
        mean = self.mean_service_time
        sigma = self.config.service_sigma
        # Lognormal with the configured mean: mu = ln(mean) - sigma^2/2.
        mu = math.log(mean) - sigma * sigma / 2.0
        return rng.lognormvariate(mu, sigma)

    @property
    def capacity_rps(self) -> float:
        """Sustained requests/second of one accelerator."""
        return 1.0 / self.mean_service_time

    def infer(self, x):
        """Run a real inference when a functional model is attached."""
        if self.model is None:
            raise RuntimeError("no functional MLP attached to this role")
        return self.model.forward(x)
