"""Pooled DNN acceleration and the oversubscription study (paper §V-D/E)."""

from .accelerator import DnnAccelerator, DnnAcceleratorConfig
from .distributed import DistributedMlp, split_layers
from .mlp import Mlp, relu, softmax, synthetic_classification
from .pool import (
    STRESS_RATE_MULTIPLIER,
    SUSTAINABLE_CLIENTS_PER_FPGA,
    DnnPool,
    OversubscriptionResult,
    RemoteNetworkModel,
    oversubscription_sweep,
    run_oversubscription_point,
)

__all__ = [
    "DnnAccelerator",
    "DnnAcceleratorConfig",
    "DistributedMlp",
    "DnnPool",
    "Mlp",
    "OversubscriptionResult",
    "RemoteNetworkModel",
    "STRESS_RATE_MULTIPLIER",
    "SUSTAINABLE_CLIENTS_PER_FPGA",
    "oversubscription_sweep",
    "relu",
    "run_oversubscription_point",
    "softmax",
    "split_layers",
    "synthetic_classification",
]
