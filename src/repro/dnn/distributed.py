"""Model-parallel DNN inference across multiple FPGAs over LTL.

The paper motivates inter-FPGA communication with services "that consume
more than one FPGA (e.g. more aggressive web search ranking, large-scale
machine learning, and bioinformatics)".  This module implements the
canonical example: an MLP too large for one role is split layer-wise
across a chain of FPGAs; activations flow FPGA-to-FPGA over LTL, so a
single inference traverses the chain and pipelining overlaps many
inferences at once.

Functional and timing views stay consistent: each stage really computes
its layer slice (numpy), while per-stage service time comes from the
stage's MAdds on the accelerator timing model plus the measured LTL hop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.cloud import ConfigurableCloud
from ..core.metrics import LatencyRecorder
from .accelerator import DnnAcceleratorConfig
from .mlp import Mlp, relu, softmax

_request_ids = count()


def split_layers(num_layers: int, num_stages: int) -> List[List[int]]:
    """Partition layer indices into contiguous, non-empty stages."""
    if not 1 <= num_stages <= num_layers:
        raise ValueError(
            f"cannot split {num_layers} layers into {num_stages} stages")
    base, extra = divmod(num_layers, num_stages)
    stages: List[List[int]] = []
    start = 0
    for stage in range(num_stages):
        size = base + (1 if stage < extra else 0)
        stages.append(list(range(start, start + size)))
        start += size
    return stages


@dataclass
class _InFlight:
    """Bookkeeping for one inference crossing the pipeline."""

    request_id: int
    submitted_at: float
    callback: Optional[Callable[[np.ndarray], None]] = None


@dataclass
class _StageMessage:
    """Activations travelling between stages."""

    request_id: int
    activations: np.ndarray


class DistributedMlp:
    """An MLP sharded layer-wise over a chain of shells.

    ``hosts[0]`` is the ingress (also fed by the client), ``hosts[-1]``
    produces the softmax output and reports completion back to the
    coordinator (this object, which lives host-side).
    """

    def __init__(self, cloud: ConfigurableCloud, hosts: List[int],
                 model: Mlp,
                 accelerator_config: Optional[DnnAcceleratorConfig] = None,
                 role: int = 0):
        if len(hosts) < 1:
            raise ValueError("need at least one host")
        self.cloud = cloud
        self.hosts = list(hosts)
        self.model = model
        self.config = accelerator_config or DnnAcceleratorConfig(
            per_request_overhead=8e-6)
        self.role = role
        self.stages = split_layers(model.num_layers, len(hosts))
        self.latency = LatencyRecorder("distributed-inference")
        self.completed = 0
        self._in_flight: Dict[int, _InFlight] = {}

        # Wire the chain: host[i] -> host[i+1].
        for a, b in zip(self.hosts, self.hosts[1:]):
            cloud.connect(a, b)
        for index, host in enumerate(self.hosts):
            shell = cloud.shell(host)
            shell.set_role_handler(
                role, self._stage_handler(index))

    # ------------------------------------------------------------------
    # Stage math and timing
    # ------------------------------------------------------------------
    def stage_madds(self, stage_index: int) -> int:
        return sum(self.model.weights[layer].size
                   for layer in self.stages[stage_index])

    def stage_compute_time(self, stage_index: int) -> float:
        cfg = self.config
        return cfg.per_request_overhead + self.stage_madds(stage_index) \
            / (cfg.madds_per_cycle * cfg.clock_hz)

    def _stage_forward(self, stage_index: int,
                       activations: np.ndarray) -> np.ndarray:
        x = activations
        for layer in self.stages[stage_index]:
            x = x @ self.model.weights[layer] + self.model.biases[layer]
            if layer < self.model.num_layers - 1:
                x = relu(x)
        if self.stages[stage_index][-1] == self.model.num_layers - 1:
            x = softmax(x)
        return x

    def activation_bytes(self, stage_index: int) -> int:
        """Bytes shipped out of a stage (fp16 activations)."""
        width = self.model.layer_sizes[self.stages[stage_index][-1] + 1]
        return 2 * width

    # ------------------------------------------------------------------
    # Pipeline plumbing
    # ------------------------------------------------------------------
    def _stage_handler(self, stage_index: int):
        host = self.hosts[stage_index]
        shell = self.cloud.shell(host)
        env = self.cloud.env

        def handle(payload: _StageMessage, _length: int) -> None:
            def work():
                yield env.timeout(self.stage_compute_time(stage_index))
                result = self._stage_forward(stage_index,
                                             payload.activations)
                message = _StageMessage(payload.request_id, result)
                if stage_index + 1 < len(self.hosts):
                    shell.remote_send(
                        self.hosts[stage_index + 1], message,
                        self.activation_bytes(stage_index),
                        dst_role=self.role, src_role=self.role)
                else:
                    self._complete(message)

            env.process(work(), name=f"dmlp-stage-{stage_index}")

        return handle

    def _complete(self, message: _StageMessage) -> None:
        entry = self._in_flight.pop(message.request_id, None)
        if entry is None:
            return
        self.completed += 1
        self.latency.record(self.cloud.env.now - entry.submitted_at)
        if entry.callback is not None:
            entry.callback(message.activations)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray,
               callback: Optional[Callable[[np.ndarray], None]] = None,
               client_host: Optional[int] = None) -> int:
        """Inject one inference; returns its request id.

        If ``client_host`` is given, the input ships from that server's
        FPGA to the ingress stage over LTL; otherwise it is injected at
        the ingress directly (co-located client).
        """
        request_id = next(_request_ids)
        self._in_flight[request_id] = _InFlight(
            request_id=request_id, submitted_at=self.cloud.env.now,
            callback=callback)
        x = np.atleast_2d(np.asarray(x, dtype=float))
        message = _StageMessage(request_id, x)
        input_bytes = 2 * self.model.layer_sizes[0]
        ingress = self.hosts[0]
        if client_host is not None:
            self.cloud.connect(client_host, ingress)
            self.cloud.shell(client_host).remote_send(
                ingress, message, input_bytes, dst_role=self.role)
        else:
            # Local injection at the ingress role.
            shell = self.cloud.shell(ingress)
            handler = self._stage_handler(0)
            handler(message, input_bytes)
        return request_id

    def reference_forward(self, x: np.ndarray) -> np.ndarray:
        """The same computation on one device, for verification."""
        return self.model.forward(x)
