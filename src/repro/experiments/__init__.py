"""Programmatic experiment registry.

Every table/figure in the paper's evaluation can be regenerated either
through the pytest benchmark harness (``pytest benchmarks/
--benchmark-only -s``) or directly from Python::

    from repro import experiments
    result = experiments.fig10.run()

The registry maps experiment ids (DESIGN.md's E-numbers) to their
modules; modules expose a ``run(...)`` returning a structured result.
Experiments whose canonical implementation lives elsewhere in the
library (Fig. 7/8's five-day study, the §II-B deployment study) are
referenced by the registry too, for discoverability.
"""

from ..deployment.failures import MirroredTrafficStudy, expected_report
from ..fpga.area import AreaBudget
from ..fpga.power import validate_envelope
from ..ranking.production import run_five_day_study
from . import fig06, fig10, fig11, fig12, sec4

#: Experiment id -> (description, how to run it).
REGISTRY = {
    "E1": ("Fig. 5 — shell area/frequency breakdown",
           AreaBudget),
    "E2": ("Fig. 6 — ranking latency vs throughput", fig06.run),
    "E3": ("Fig. 7 — five-day production trace", run_five_day_study),
    "E4": ("Fig. 8 — latency vs offered load (same study)",
           run_five_day_study),
    "E5": ("§IV — crypto cost model", sec4.run),
    "E6": ("Fig. 10 — LTL round-trip latency per tier", fig10.run),
    "E7": ("Fig. 11 — software/local/remote ranking", fig11.run),
    "E8": ("Fig. 12 — DNN pool oversubscription", fig12.run),
    "E9": ("§II-B — deployment reliability",
           lambda: MirroredTrafficStudy().run()),
    "E10": ("§II — power envelope", validate_envelope),
}

__all__ = [
    "REGISTRY",
    "expected_report",
    "fig06",
    "fig10",
    "fig11",
    "fig12",
    "sec4",
]
