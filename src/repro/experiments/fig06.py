"""E2 — Fig. 6: 99th-percentile latency vs throughput, single server."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ranking.service import (
    AccelerationMode,
    RankingServiceConfig,
    run_open_loop,
    saturation_qps,
)

DEFAULT_LOAD_POINTS = (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0,
                       2.25, 2.5)


@dataclass
class Fig6Result:
    """Normalized latency-vs-throughput curves per mode."""

    #: mode name -> [(normalized load, normalized p99 latency)].
    curves: Dict[str, List[Tuple[float, float]]]
    #: absolute latency target (seconds) used for normalization.
    latency_target: float
    #: absolute qps corresponding to normalized load 1.0.
    base_qps: float

    def max_load_under_target(self, mode: str,
                              threshold: float = 1.0) -> float:
        ok = [load for load, p99 in self.curves[mode]
              if p99 <= threshold]
        return max(ok) if ok else 0.0

    @property
    def throughput_gain(self) -> float:
        """The Fig. 6 headline: FPGA/software load at the target."""
        return self.max_load_under_target("fpga") / \
            self.max_load_under_target("software")


def run(load_points=DEFAULT_LOAD_POINTS, queries: int = 1500,
        seed: int = 0) -> Fig6Result:
    """Sweep software and local-FPGA modes over normalized loads."""
    software = RankingServiceConfig(mode=AccelerationMode.SOFTWARE)
    fpga = RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA)

    base_qps = 0.9 * saturation_qps(software)
    reference = run_open_loop(software, base_qps, num_queries=2 * queries,
                              seed=seed)
    target = reference.latency.p99

    curves: Dict[str, List[Tuple[float, float]]] = {}
    for name, config in (("software", software), ("fpga", fpga)):
        points = []
        for load in load_points:
            if name == "software" and load > 1.6:
                continue  # deep saturation: nothing more to learn
            result = run_open_loop(config, load * base_qps,
                                   num_queries=queries,
                                   seed=int(load * 100))
            points.append((load, result.latency.p99 / target))
        curves[name] = points
    return Fig6Result(curves=curves, latency_target=target,
                      base_qps=base_qps)
