"""E6 — Fig. 10: LTL round-trip latency vs reachable hosts.

Canonical implementation used by ``benchmarks/bench_fig10_ltl_latency``
and importable directly::

    from repro.experiments import fig10
    result = fig10.run()
    print(result.rows())
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.cloud import ConfigurableCloud
from ..sim.randomness import percentile
from ..torus import TorusLatencyModel, TorusTopology

#: (tier -> (reachable hosts, sender/receiver pairs measured)).
DEFAULT_TIER_PAIRS: Dict[str, Tuple[int, List[Tuple[int, int]]]] = {
    "L0": (24, [(0, 1), (2, 3), (4, 5), (6, 7)]),
    "L1": (960, [(8, 30), (9, 200), (10, 500), (11, 900)]),
    "L2": (250_000, [(12, 5_000), (13, 50_000), (14, 120_000),
                     (15, 200_000), (16, 250_000), (17, 99_000)]),
}


@dataclass
class TierStats:
    """Latency summary for one tier (seconds)."""

    reachable: int
    avg: float
    p999: float
    max: float
    samples: List[float] = field(repr=False, default_factory=list)


@dataclass
class Fig10Result:
    """All tiers plus the torus baseline."""

    tiers: Dict[str, TierStats]
    torus: TierStats

    def rows(self) -> List[Tuple[str, str, float, float, float]]:
        out = []
        for name, stats in self.tiers.items():
            out.append((name, f"{stats.reachable:,}", stats.avg * 1e6,
                        stats.p999 * 1e6, stats.max * 1e6))
        out.append(("torus", "48", self.torus.avg * 1e6,
                    self.torus.p999 * 1e6, self.torus.max * 1e6))
        return out


def run(tier_pairs: Dict[str, Tuple[int, List[Tuple[int, int]]]]
        = None, messages_per_pair: int = 60, seed: int = 10
        ) -> Fig10Result:
    """Measure idle LTL RTT per tier plus the torus baseline."""
    tier_pairs = tier_pairs or DEFAULT_TIER_PAIRS
    cloud = ConfigurableCloud(seed=seed)
    tiers: Dict[str, TierStats] = {}
    for tier, (reachable, pairs) in tier_pairs.items():
        samples: List[float] = []
        for src, dst in pairs:
            for host in (src, dst):
                if host not in cloud.servers:
                    cloud.add_server(host, enroll=False)
            samples.extend(cloud.measure_ltl_rtt(
                src, dst, messages=messages_per_pair))
        samples.sort()
        tiers[tier] = TierStats(
            reachable=reachable, avg=statistics.mean(samples),
            p999=percentile(samples, 99.9), max=max(samples),
            samples=samples)

    torus_model = TorusLatencyModel(TorusTopology())
    torus_samples = sorted(
        torus_model.all_pair_round_trips(random.Random(seed)))
    torus = TierStats(
        reachable=48, avg=statistics.mean(torus_samples),
        p999=percentile(torus_samples, 99.9), max=max(torus_samples),
        samples=torus_samples)
    return Fig10Result(tiers=tiers, torus=torus)
