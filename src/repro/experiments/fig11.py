"""E7 — Fig. 11: software vs local FPGA vs remote FPGA ranking."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ranking.service import (
    AccelerationMode,
    RankingServiceConfig,
    run_open_loop,
    saturation_qps,
)

DEFAULT_LOAD_POINTS = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)


@dataclass
class Fig11Result:
    """Normalized p99.9 latency-vs-throughput curves per mode."""

    curves: Dict[str, List[Tuple[float, float]]]
    latency_target: float
    base_qps: float

    def mean_remote_overhead(self) -> float:
        """Mean remote/local latency ratio minus one, across loads."""
        local = dict(self.curves["local"])
        remote = dict(self.curves["remote"])
        shared = [load for load in local if load in remote]
        return sum(remote[load] / local[load] - 1
                   for load in shared) / len(shared)


def run(load_points=DEFAULT_LOAD_POINTS, queries: int = 1200,
        seed: int = 0) -> Fig11Result:
    configs = {
        "software": RankingServiceConfig(mode=AccelerationMode.SOFTWARE),
        "local": RankingServiceConfig(mode=AccelerationMode.LOCAL_FPGA),
        "remote": RankingServiceConfig(mode=AccelerationMode.REMOTE_FPGA),
    }
    base_qps = 0.9 * saturation_qps(configs["software"])
    reference = run_open_loop(configs["software"], base_qps,
                              num_queries=2 * queries, seed=seed)
    target = reference.latency.p999

    curves: Dict[str, List[Tuple[float, float]]] = {}
    for name, config in configs.items():
        points = []
        for load in load_points:
            if name == "software" and load > 1.1:
                continue
            result = run_open_loop(config, load * base_qps,
                                   num_queries=queries,
                                   seed=int(load * 1000))
            points.append((load, result.latency.p999 / target))
        curves[name] = points
    return Fig11Result(curves=curves, latency_target=target,
                       base_qps=base_qps)
