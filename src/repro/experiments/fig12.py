"""E8 — Fig. 12: remote DNN pool latency vs oversubscription."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..dnn.pool import (
    OversubscriptionResult,
    RemoteNetworkModel,
    run_oversubscription_point,
)

#: (clients, fpgas) pairs for the Fig. 12 x-axis (0.5 .. 3.0).
DEFAULT_SWEEP: List[Tuple[int, int]] = [
    (6, 12), (12, 12), (12, 8), (12, 6), (12, 5), (12, 4)]


@dataclass
class Fig12Result:
    """Local baseline plus the remote oversubscription sweep."""

    local: OversubscriptionResult
    points: List[OversubscriptionResult]

    def at_ratio(self, ratio: float,
                 tolerance: float = 1e-6) -> OversubscriptionResult:
        for point in self.points:
            if abs(point.oversubscription - ratio) < tolerance:
                return point
        raise KeyError(f"no sweep point at ratio {ratio}")

    def one_to_one_overheads(self) -> Tuple[float, float, float]:
        """Remote-vs-local (avg, p95, p99) overhead fractions at 1:1."""
        remote = self.at_ratio(1.0).latency
        local = self.local.latency
        return (remote.mean / local.mean - 1,
                remote.p95 / local.p95 - 1,
                remote.p99 / local.p99 - 1)


def run(sweep: Optional[List[Tuple[int, int]]] = None,
        requests_per_client: int = 350,
        remote: Optional[RemoteNetworkModel] = None,
        seed: int = 1) -> Fig12Result:
    """The oversubscription study: shrink the pool under fixed clients."""
    sweep = sweep or DEFAULT_SWEEP
    remote = remote or RemoteNetworkModel()
    local = run_oversubscription_point(
        12, 12, remote=None, requests_per_client=requests_per_client,
        seed=seed)
    points = [
        run_oversubscription_point(
            clients, fpgas, remote=remote,
            requests_per_client=requests_per_client, seed=seed + 1 + i)
        for i, (clients, fpgas) in enumerate(sweep)]
    return Fig12Result(local=local, points=points)
