"""E5 — §IV: crypto cost model rows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..crypto.engine import FpgaCryptoEngine
from ..crypto.swmodel import SoftwareCryptoModel

DEFAULT_SUITES = ("aes-gcm-128", "aes-gcm-256", "aes-cbc-128",
                  "aes-cbc-128-sha1")


@dataclass
class CryptoRow:
    """One cipher suite's §IV numbers."""

    suite: str
    cores_full_duplex: float
    sw_latency_1500B: float
    fpga_latency_1500B: float
    fpga_throughput_bps: float


def run(suites=DEFAULT_SUITES,
        software: SoftwareCryptoModel | None = None,
        engine: FpgaCryptoEngine | None = None) -> List[CryptoRow]:
    """Regenerate the §IV cost table."""
    software = software or SoftwareCryptoModel()
    engine = engine or FpgaCryptoEngine()
    rows = []
    for suite in suites:
        rows.append(CryptoRow(
            suite=suite,
            cores_full_duplex=software.cores_for_line_rate(suite),
            sw_latency_1500B=software.packet_latency(suite, 1500),
            fpga_latency_1500B=engine.latency(suite, 1500),
            fpga_throughput_bps=engine.throughput_bps(suite)))
    return rows


def by_suite(rows: List[CryptoRow]) -> Dict[str, CryptoRow]:
    return {row.suite: row for row in rows}
