"""Output-queued datacenter switch with lossless-class support.

The switch models what the paper's fabric relies on:

* per-traffic-class output queues with strict-priority draining (in
  :class:`~repro.net.links.Port`),
* ECN marking with a DC-QCN-style probability ramp between ``kmin`` and
  ``kmax`` queue depths,
* Priority Flow Control: when a lossless-class queue exceeds ``xoff`` the
  switch pauses that class on its upstream neighbors, resuming below
  ``xon``,
* a per-traversal forwarding latency plus stochastic background-traffic
  jitter supplied by :class:`~repro.net.latency.BackgroundTrafficModel`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..sim import Environment
from ..trace.stages import SWITCH_STAGE_BY_TIER, Stage
from .latency import BackgroundTrafficModel, JitterStream
from .links import Port
from .packet import Packet, TrafficClass

# Hoisted Stage member for the per-packet ingress tap.
_STAGE_LINK_WIRE = Stage.LINK_WIRE


@dataclass
class EcnConfig:
    """DC-QCN ECN marking thresholds on output queues (bytes)."""

    kmin_bytes: int = 5 * 1024
    kmax_bytes: int = 200 * 1024
    pmax: float = 0.01

    def mark_probability(self, queue_bytes: int) -> float:
        """Marking probability for a queue currently ``queue_bytes`` deep."""
        if queue_bytes <= self.kmin_bytes:
            return 0.0
        if queue_bytes >= self.kmax_bytes:
            return 1.0
        span = self.kmax_bytes - self.kmin_bytes
        return self.pmax * (queue_bytes - self.kmin_bytes) / span


@dataclass
class PfcConfig:
    """PFC pause/resume watermarks on lossless output queues (bytes)."""

    xoff_bytes: int = 96 * 1024
    xon_bytes: int = 48 * 1024

    def __post_init__(self) -> None:
        if self.xon_bytes >= self.xoff_bytes:
            raise ValueError("xon watermark must be below xoff")


class SwitchStats:
    """Aggregate counters for one switch."""

    def __init__(self) -> None:
        self.received = 0
        self.forwarded = 0
        self.routing_failures = 0
        self.ecn_marked = 0
        self.pfc_pause_sent = 0
        self.pfc_resume_sent = 0
        self.lossless_overflow = 0


class Switch:
    """A single switch in the TOR/L1/L2 hierarchy.

    Ports are registered under hashable keys (e.g. a host index or the
    string ``"uplink"``).  Routing is a callable, installed by the topology
    builder, mapping a packet to an output-port key.  Upstream transmit
    ports register for PFC so the switch can push back on senders of
    lossless traffic.
    """

    def __init__(self, env: Environment, name: str, tier: str,
                 forwarding_latency: float, rng: random.Random,
                 background: Optional[BackgroundTrafficModel] = None,
                 ecn: Optional[EcnConfig] = None,
                 pfc: Optional[PfcConfig] = None):
        self.env = env
        self.name = name
        self.tier = tier
        self.forwarding_latency = forwarding_latency
        self.background = background
        # Required: every switch must be given its own derived child
        # stream (``RandomStreams.stream(f"switch:{name}")``).  The old
        # ``rng or random.Random(0)`` fallback silently gave distinct
        # switches an identical seed-0 stream — across shard processes
        # that correlates jitter that must be independent.
        self.rng = rng
        self.ecn = ecn or EcnConfig()
        self.pfc = pfc or PfcConfig()
        self.stats = SwitchStats()
        #: Trace stage this tier's traversal is attributed to (resolved
        #: once here, not per packet); ``None`` for unknown tiers.
        self._trace_stage = SWITCH_STAGE_BY_TIER.get(str(tier).lower())
        #: Buffered jitter sampler (created on first packet so that
        #: unknown tiers still fail at forward time, as before).
        self._jitter: Optional[JitterStream] = None
        self.ports: Dict[object, Port] = {}
        self._router: Optional[Callable[["Switch", Packet], object]] = None
        #: Upstream transmit ports to pause/resume, keyed by neighbor name.
        self._upstream: Dict[str, Port] = {}
        #: (port_key, tc) pairs currently holding upstreams paused.
        self._pausing: Dict[Tuple[object, int], bool] = {}

    # ------------------------------------------------------------------
    # Wiring (used by the topology builder)
    # ------------------------------------------------------------------
    def add_port(self, key: object, port: Port) -> None:
        if key in self.ports:
            raise ValueError(f"duplicate port key {key!r} on {self.name}")
        self.ports[key] = port
        port.on_transmit = lambda pkt, k=key: self._after_transmit(k, pkt)

    def set_router(self, router: Callable[["Switch", Packet], object]) -> None:
        self._router = router

    def register_upstream(self, neighbor_name: str, tx_port: Port) -> None:
        """Register a neighbor's transmit port for PFC pushback."""
        self._upstream[neighbor_name] = tx_port

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Accept a packet from a link; forwarding happens asynchronously."""
        self.stats.received += 1
        packet.hops += 1
        trace = packet.trace
        if trace is not None:
            # The interval since the previous mark is the upstream link:
            # serialization + propagation + port queueing.  Wire time is
            # attributed at the receiver because the sender's port drains
            # asynchronously (see repro.net.links).
            trace.tap(_STAGE_LINK_WIRE, self.env.now)
        delay = self.forwarding_latency
        if self.background is not None:
            jitter = self._jitter
            if jitter is None:
                jitter = self._jitter = self.background.batched(
                    self.tier, self.rng)
            delay += jitter.take()
        self.env.call_later(delay, self._forward, packet)

    def _forward(self, packet: Packet) -> None:
        if packet.trace is not None and self._trace_stage is not None:
            # Forwarding latency + background-traffic jitter for this tier.
            packet.trace.tap(self._trace_stage, self.env.now)
        if self._router is None:
            self.stats.routing_failures += 1
            return
        key = self._router(self, packet)
        port = self.ports.get(key)
        if port is None:
            self.stats.routing_failures += 1
            return
        self._maybe_mark_ecn(port, packet)
        accepted = port.enqueue(packet)
        if accepted:
            self.stats.forwarded += 1
        elif TrafficClass.is_lossless(packet.traffic_class):
            self.stats.lossless_overflow += 1
        self._update_pfc(key, port)

    def _maybe_mark_ecn(self, port: Port, packet: Packet) -> None:
        if packet.ip is None:
            return
        prob = self.ecn.mark_probability(
            port.queued_bytes(packet.traffic_class))
        if prob > 0 and self.rng.random() < prob:
            packet.ecn_marked = True
            packet.ip.ecn = 0b11  # Congestion Experienced
            self.stats.ecn_marked += 1

    # ------------------------------------------------------------------
    # PFC
    # ------------------------------------------------------------------
    def _update_pfc(self, key: object, port: Port) -> None:
        tc = TrafficClass.LOSSLESS
        occupancy = port.queued_bytes(tc)
        paused = self._pausing.get((key, tc), False)
        if not paused and occupancy > self.pfc.xoff_bytes:
            self._pausing[(key, tc)] = True
            self.stats.pfc_pause_sent += 1
            for upstream in self._upstream.values():
                upstream.pause(tc)
        elif paused and occupancy < self.pfc.xon_bytes:
            self._pausing[(key, tc)] = False
            self.stats.pfc_resume_sent += 1
            if not any(self._pausing.values()):
                for upstream in self._upstream.values():
                    upstream.resume(tc)

    def _after_transmit(self, key: object, _packet: Packet) -> None:
        port = self.ports[key]
        self._update_pfc(key, port)

    def __repr__(self) -> str:
        return f"<Switch {self.name} tier={self.tier}>"
