"""Host addressing for the simulated datacenter.

Hosts are identified by a dense integer index.  The topology maps an index
to its (pod, tor, slot) coordinates, and to IPv4/MAC addresses used in
packet headers.  Address formats follow common datacenter conventions:
a 10.pod.tor.slot scheme for IP and a locally-administered MAC carrying the
host index.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostCoordinates:
    """Position of a host in the 3-tier tree."""

    pod: int
    tor: int
    slot: int

    def same_tor(self, other: "HostCoordinates") -> bool:
        return self.pod == other.pod and self.tor == other.tor

    def same_pod(self, other: "HostCoordinates") -> bool:
        return self.pod == other.pod


def host_index_to_coords(index: int, hosts_per_tor: int,
                         tors_per_pod: int) -> HostCoordinates:
    """Convert a dense host index into (pod, tor, slot) coordinates."""
    if index < 0:
        raise ValueError(f"negative host index: {index}")
    hosts_per_pod = hosts_per_tor * tors_per_pod
    pod, rem = divmod(index, hosts_per_pod)
    tor, slot = divmod(rem, hosts_per_tor)
    return HostCoordinates(pod=pod, tor=tor, slot=slot)


def coords_to_host_index(coords: HostCoordinates, hosts_per_tor: int,
                         tors_per_pod: int) -> int:
    """Inverse of :func:`host_index_to_coords`."""
    return (coords.pod * tors_per_pod + coords.tor) * hosts_per_tor \
        + coords.slot


def ip_address(coords: HostCoordinates) -> str:
    """Dotted-quad IP for a host: ``10.pod.tor.slot`` (mod 256 per octet)."""
    return f"10.{coords.pod % 256}.{coords.tor % 256}.{coords.slot % 256}"


def mac_address(index: int) -> str:
    """Locally-administered MAC embedding the host index."""
    if not 0 <= index < 2 ** 40:
        raise ValueError(f"host index out of MAC range: {index}")
    octets = [0x02] + [(index >> shift) & 0xFF
                       for shift in (32, 24, 16, 8, 0)]
    return ":".join(f"{o:02x}" for o in octets)


def mac_to_host_index(mac: str) -> int:
    """Recover the host index from a MAC built by :func:`mac_address`."""
    parts = mac.split(":")
    if len(parts) != 6 or parts[0] != "02":
        raise ValueError(f"not a simulated host MAC: {mac}")
    value = 0
    for part in parts[1:]:
        value = (value << 8) | int(part, 16)
    return value
