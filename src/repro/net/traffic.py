"""Real background cross-traffic.

The default fabric models the rest of the datacenter's load as per-hop
queueing jitter (:mod:`repro.net.latency`) so that 250k-host experiments
stay cheap.  For rack/pod-scale studies this module provides the real
thing: hosts exchanging actual best-effort packets, sharing switch
queues with the traffic under test — foreground LTL flows then see
genuine queueing, ECN marking, and PFC interactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..sim import Environment
from .fabric import DatacenterFabric
from .packet import TrafficClass


@dataclass
class BackgroundLoadConfig:
    """Shape of the generated cross-traffic."""

    #: Target utilization of each sender's uplink, 0..1.
    utilization: float = 0.2
    #: Packet payload size (bytes).
    packet_bytes: int = 1400
    #: Traffic class the load rides on (baseline TCP-ish -> best effort).
    traffic_class: int = TrafficClass.BEST_EFFORT
    #: Mean packets per burst (geometric); bursts model flow-level
    #: on/off behaviour rather than smooth Poisson packets.
    mean_burst_packets: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization < 1.0:
            raise ValueError("utilization must be in [0, 1)")
        if self.packet_bytes <= 0:
            raise ValueError("packet size must be positive")


class BackgroundLoadGenerator:
    """Attach sink hosts to the fabric and blast traffic between them.

    ``hosts`` are attached by this generator (they must not already be
    attached); each sends bursts to uniformly random peers at the
    configured utilization.  Use :meth:`stop` to silence the generator.
    """

    def __init__(self, env: Environment, fabric: DatacenterFabric,
                 hosts: List[int],
                 config: Optional[BackgroundLoadConfig] = None,
                 rng: Optional[random.Random] = None):
        if len(hosts) < 2:
            raise ValueError("background traffic needs at least 2 hosts")
        self.env = env
        self.fabric = fabric
        self.hosts = list(hosts)
        self.config = config or BackgroundLoadConfig()
        self.rng = rng or random.Random(0)
        self.packets_sent = 0
        self.packets_received = 0
        self._running = True
        self._attachments = {}
        for host in self.hosts:
            self._attachments[host] = fabric.attach(
                host, self._sink)
        for host in self.hosts:
            env.process(self._sender(host), name=f"bg-{host}")

    def _sink(self, _packet) -> None:
        self.packets_received += 1

    def stop(self) -> None:
        """Stop generating (in-flight packets still drain)."""
        self._running = False

    def _sender(self, host: int):
        config = self.config
        attachment = self._attachments[host]
        rate_bps = self.fabric.config.latency.host_rate_bps
        wire_time = (config.packet_bytes + 66) * 8 / rate_bps
        while self._running:
            # Burst of packets to one random peer...
            peer = host
            while peer == host:
                peer = self.rng.choice(self.hosts)
            burst = max(1, int(self.rng.expovariate(
                1.0 / config.mean_burst_packets)))
            for _ in range(burst):
                packet = attachment.make_packet(
                    peer, b"", payload_bytes=config.packet_bytes,
                    traffic_class=config.traffic_class)
                attachment.send(packet)
                self.packets_sent += 1
                yield self.env.timeout(wire_time)
            # ... then idle long enough to hit the target utilization.
            busy = burst * wire_time
            idle_time = busy * (1.0 - config.utilization) \
                / config.utilization
            yield self.env.timeout(
                idle_time * self.rng.uniform(0.5, 1.5))
