"""Point-to-point links and transmit ports.

A :class:`Port` owns the transmit side of a link: packets queue per traffic
class, are serialized at the link rate, and arrive at the peer after the
link's propagation delay.  Priority-based flow control (PFC) pauses
individual traffic classes on the transmit side; the receiving switch
asserts/deasserts pause on its upstream ports.

Latency attribution: links carry no trace tap of their own — the
*receiving* end (switch ingress or shell) taps
:attr:`repro.trace.Stage.LINK_WIRE`, so serialization + propagation is
attributed per physical hop at the point of arrival.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..sim import Environment
from ..sim.units import serialization_delay
from .packet import Packet, TrafficClass

#: Speed of light in fiber, metres per second (~2/3 c).
FIBER_METERS_PER_SECOND = 2.0e8

#: Strict-priority drain order (highest traffic class first), precomputed
#: once instead of re-sorting on every packet.
_DRAIN_ORDER = tuple(sorted(TrafficClass.ALL, reverse=True))


def propagation_delay(distance_m: float) -> float:
    """One-way propagation delay for ``distance_m`` metres of fiber."""
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    return distance_m / FIBER_METERS_PER_SECOND


class PortStats:
    """Counters for a single transmit port."""

    def __init__(self) -> None:
        self.enqueued = 0
        self.transmitted = 0
        self.dropped = 0
        self.bytes_transmitted = 0
        self.pause_events = 0

    def __repr__(self) -> str:
        return (f"PortStats(tx={self.transmitted}, drop={self.dropped}, "
                f"bytes={self.bytes_transmitted})")


class Port:
    """Transmit side of a link with per-traffic-class queues and PFC.

    ``deliver`` is the receive function on the far end: it is called with
    the packet once serialization + propagation complete.  Classes are
    drained strictly by priority (higher traffic-class number first), which
    models the switch giving the lossless class precedence.

    The drain is a callback state machine rather than a process: one
    :meth:`Environment.call_later` per serialization and one per
    propagation, with no generator, no wakeup store and no per-packet
    process objects on the datapath.
    """

    def __init__(self, env: Environment, name: str, rate_bps: float,
                 distance_m: float = 5.0,
                 deliver: Optional[Callable[[Packet], None]] = None,
                 queue_capacity_bytes: int = 1 << 20):
        self.env = env
        self.name = name
        self.rate_bps = rate_bps
        self.propagation = propagation_delay(distance_m)
        self.deliver = deliver
        self.queue_capacity_bytes = queue_capacity_bytes
        self.stats = PortStats()
        #: Per-class FIFO of (packet, wire_bytes) — the size is computed
        #: once at enqueue and carried alongside, since ``wire_bytes`` is
        #: a derived property re-walking the header stack on every call.
        self._queues: Dict[int, Deque[Tuple[Packet, int]]] = {
            tc: deque() for tc in TrafficClass.ALL}
        self._queued_bytes: Dict[int, int] = {tc: 0 for tc in TrafficClass.ALL}
        #: Running sum of ``_queued_bytes`` — kept incrementally so the
        #: per-enqueue capacity check is O(1), not O(classes).
        self._queued_total = 0
        self._paused: Dict[int, bool] = {tc: False for tc in TrafficClass.ALL}
        #: True while a packet is being serialized onto the wire.
        self._busy = False
        #: True while an idle->busy kick is already scheduled.
        self._kick_pending = False
        #: Optional hook invoked with each transmitted packet (telemetry).
        self.on_transmit: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    # Enqueue / flow control
    # ------------------------------------------------------------------
    @property
    def queued_bytes_total(self) -> int:
        return self._queued_total

    def queued_bytes(self, tc: int) -> int:
        return self._queued_bytes[tc]

    def enqueue(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission.

        Returns False (and drops) if a non-lossless queue is full.  Lossless
        packets are always accepted — back-pressure is PFC's job; the switch
        asserting PFC too late shows up in stats as ``lossless_overflow``.
        """
        tc = packet.traffic_class
        size = packet.wire_bytes
        if not TrafficClass.is_lossless(tc) and \
                self._queued_total + size > self.queue_capacity_bytes:
            self.stats.dropped += 1
            trace = packet.trace
            if trace is not None and not trace.protected:
                # Terminal loss (no reliable transport will resend):
                # close the span here so the recorder counts the drop
                # instead of leaking an open span.
                trace.abandon(self.env.now)
            return False
        self._queues[tc].append((packet, size))
        self._queued_bytes[tc] += size
        self._queued_total += size
        self.stats.enqueued += 1
        self._kick()
        return True

    def pause(self, tc: int) -> None:
        """PFC: stop transmitting class ``tc`` (idempotent)."""
        if not self._paused[tc]:
            self._paused[tc] = True
            self.stats.pause_events += 1

    def resume(self, tc: int) -> None:
        """PFC: resume transmitting class ``tc``."""
        if self._paused[tc]:
            self._paused[tc] = False
            self._kick()

    def is_paused(self, tc: int) -> bool:
        return self._paused[tc]

    # ------------------------------------------------------------------
    # Drain state machine
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        """Schedule a drain start for this instant (idempotent).

        The one-event deferral matters: every enqueue arriving at the same
        timestamp is visible before the port picks a packet, so strict
        priority is decided over the whole same-instant batch — matching
        the old wakeup-store drain loop.
        """
        if not self._busy and not self._kick_pending:
            self._kick_pending = True
            self.env.call_later(0.0, self._kicked)

    def _kicked(self) -> None:
        self._kick_pending = False
        if not self._busy:
            self._start_next()

    def _next_packet(self) -> Optional[Tuple[Packet, int]]:
        for tc in _DRAIN_ORDER:
            if self._queues[tc] and not self._paused[tc]:
                packet, size = self._queues[tc].popleft()
                self._queued_bytes[tc] -= size
                self._queued_total -= size
                return packet, size
        return None

    def _start_next(self) -> None:
        """Begin serializing the next eligible packet, if any."""
        item = self._next_packet()
        if item is None:
            return
        packet, size = item
        self._busy = True
        delay = serialization_delay(size, self.rate_bps)
        self.env.call_later(delay, self._finish_tx, packet, size)

    def _finish_tx(self, packet: Packet, size: int) -> None:
        """Serialization done: launch the packet, pick up the next one."""
        self.stats.transmitted += 1
        self.stats.bytes_transmitted += size
        if self.on_transmit is not None:
            self.on_transmit(packet)
        deliver = self.deliver
        if deliver is not None:
            # A pause asserted mid-flight never recalls photons: the
            # packet propagates with whatever deliver target existed at
            # transmit completion, as before.
            if self.propagation <= 0:
                deliver(packet)
            else:
                self.env.call_later(self.propagation, deliver, packet)
        self._busy = False
        self._start_next()
