"""Point-to-point links and transmit ports.

A :class:`Port` owns the transmit side of a link: packets queue per traffic
class, are serialized at the link rate, and arrive at the peer after the
link's propagation delay.  Priority-based flow control (PFC) pauses
individual traffic classes on the transmit side; the receiving switch
asserts/deasserts pause on its upstream ports.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..sim import Environment, Store
from ..sim.units import serialization_delay
from .packet import Packet, TrafficClass

#: Speed of light in fiber, metres per second (~2/3 c).
FIBER_METERS_PER_SECOND = 2.0e8


def propagation_delay(distance_m: float) -> float:
    """One-way propagation delay for ``distance_m`` metres of fiber."""
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    return distance_m / FIBER_METERS_PER_SECOND


class PortStats:
    """Counters for a single transmit port."""

    def __init__(self) -> None:
        self.enqueued = 0
        self.transmitted = 0
        self.dropped = 0
        self.bytes_transmitted = 0
        self.pause_events = 0

    def __repr__(self) -> str:
        return (f"PortStats(tx={self.transmitted}, drop={self.dropped}, "
                f"bytes={self.bytes_transmitted})")


class Port:
    """Transmit side of a link with per-traffic-class queues and PFC.

    ``deliver`` is the receive function on the far end: it is called with
    the packet once serialization + propagation complete.  Classes are
    drained strictly by priority (higher traffic-class number first), which
    models the switch giving the lossless class precedence.
    """

    def __init__(self, env: Environment, name: str, rate_bps: float,
                 distance_m: float = 5.0,
                 deliver: Optional[Callable[[Packet], None]] = None,
                 queue_capacity_bytes: int = 1 << 20):
        self.env = env
        self.name = name
        self.rate_bps = rate_bps
        self.propagation = propagation_delay(distance_m)
        self.deliver = deliver
        self.queue_capacity_bytes = queue_capacity_bytes
        self.stats = PortStats()
        self._queues: Dict[int, Deque[Packet]] = {
            tc: deque() for tc in TrafficClass.ALL}
        self._queued_bytes: Dict[int, int] = {tc: 0 for tc in TrafficClass.ALL}
        self._paused: Dict[int, bool] = {tc: False for tc in TrafficClass.ALL}
        self._wakeup = Store(env)
        self._drainer = env.process(self._drain(), name=f"port:{name}")
        #: Optional hook invoked with each transmitted packet (telemetry).
        self.on_transmit: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    # Enqueue / flow control
    # ------------------------------------------------------------------
    @property
    def queued_bytes_total(self) -> int:
        return sum(self._queued_bytes.values())

    def queued_bytes(self, tc: int) -> int:
        return self._queued_bytes[tc]

    def enqueue(self, packet: Packet) -> bool:
        """Queue ``packet`` for transmission.

        Returns False (and drops) if a non-lossless queue is full.  Lossless
        packets are always accepted — back-pressure is PFC's job; the switch
        asserting PFC too late shows up in stats as ``lossless_overflow``.
        """
        tc = packet.traffic_class
        size = packet.wire_bytes
        if not TrafficClass.is_lossless(tc) and \
                self.queued_bytes_total + size > self.queue_capacity_bytes:
            self.stats.dropped += 1
            return False
        self._queues[tc].append(packet)
        self._queued_bytes[tc] += size
        self.stats.enqueued += 1
        self._kick()
        return True

    def pause(self, tc: int) -> None:
        """PFC: stop transmitting class ``tc`` (idempotent)."""
        if not self._paused[tc]:
            self._paused[tc] = True
            self.stats.pause_events += 1

    def resume(self, tc: int) -> None:
        """PFC: resume transmitting class ``tc``."""
        if self._paused[tc]:
            self._paused[tc] = False
            self._kick()

    def is_paused(self, tc: int) -> bool:
        return self._paused[tc]

    # ------------------------------------------------------------------
    # Drain loop
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if len(self._wakeup) == 0:
            self._wakeup.put(None)

    def _next_packet(self) -> Optional[Packet]:
        for tc in sorted(TrafficClass.ALL, reverse=True):
            if self._queues[tc] and not self._paused[tc]:
                packet = self._queues[tc].popleft()
                self._queued_bytes[tc] -= packet.wire_bytes
                return packet
        return None

    def _drain(self):
        while True:
            packet = self._next_packet()
            if packet is None:
                yield self._wakeup.get()
                continue
            delay = serialization_delay(packet.wire_bytes, self.rate_bps)
            yield self.env.timeout(delay)
            self.stats.transmitted += 1
            self.stats.bytes_transmitted += packet.wire_bytes
            if self.on_transmit is not None:
                self.on_transmit(packet)
            if self.deliver is not None:
                self._launch(packet)

    def _launch(self, packet: Packet) -> None:
        """Apply propagation delay, then hand to the receiver."""
        if self.propagation <= 0:
            self.deliver(packet)
            return

        def _arrive(deliver=self.deliver, pkt=packet):
            yield self.env.timeout(self.propagation)
            deliver(pkt)

        self.env.process(_arrive(), name=f"prop:{self.name}")
