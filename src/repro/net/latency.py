"""Latency constants and background-traffic jitter models.

Fixed constants are chosen so that the end-to-end LTL round-trip latencies
reproduce the paper's Fig. 10 tiers:

* L0 (same TOR):  avg 2.88 us, 99.9th 2.9 us — very tight
* L1 (same pod):  avg 7.72 us, 99.9th 8.24 us plus a small outlier tail
* L2 (cross pod): avg 18.71 us, 99.9th 22.38 us, max < 23.5 us

The decomposition: endpoint (LTL engine + MAC/PHY) processing, per-switch
forwarding latency, per-link serialization + propagation, plus stochastic
queueing jitter contributed by background datacenter traffic sharing the
L1/L2 switches.  L2 pair-to-pair variation is dominated by physical fiber
distance between pods, which the paper calls out explicitly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List


@dataclass
class LatencyModel:
    """All fixed latency constants for the simulated fabric (seconds)."""

    # Endpoint costs (one traversal of the FPGA network stack).
    ltl_tx: float = 0.25e-6          #: LTL packetize + connection lookup
    ltl_rx: float = 0.28e-6          #: LTL depacketize + ACK generation
    mac_tx: float = 0.18e-6          #: 40G MAC+PHY transmit path
    mac_rx: float = 0.18e-6          #: 40G MAC+PHY receive path

    # Switch forwarding latency (cut-through pipeline) per tier.
    tor_latency: float = 0.45e-6
    l1_latency: float = 0.88e-6
    l2_latency: float = 0.60e-6

    # Cable lengths per tier (metres, one link).
    host_tor_distance_m: float = 5.0
    tor_l1_distance_m: float = 100.0
    #: Cross-pod fiber runs vary with datacenter geometry; per-pair values
    #: are drawn in [l1_l2_distance_min_m, l1_l2_distance_max_m].
    l1_l2_distance_min_m: float = 215.0
    l1_l2_distance_max_m: float = 500.0

    # Link rates (bits/second).
    host_rate_bps: float = 40e9
    tor_uplink_rate_bps: float = 40e9
    l1_uplink_rate_bps: float = 40e9


@dataclass
class TierJitter:
    """Queueing jitter added by one switch traversal at a given tier.

    ``exp_mean`` models light, always-present interleaving with other
    traffic; with probability ``burst_prob`` the packet is stuck behind a
    burst and waits an extra Uniform(burst_min, burst_max).
    """

    exp_mean: float = 0.0
    burst_prob: float = 0.0
    burst_min: float = 0.0
    burst_max: float = 0.0

    def sample(self, rng: random.Random) -> float:
        delay = rng.expovariate(1.0 / self.exp_mean) if self.exp_mean > 0 \
            else 0.0
        if self.burst_prob > 0 and rng.random() < self.burst_prob:
            delay += rng.uniform(self.burst_min, self.burst_max)
        return delay

    def sample_batch(self, rng: random.Random, n: int) -> List[float]:
        """``n`` draws, consuming ``rng`` exactly as ``n`` ``sample()``
        calls would (so batched and unbatched runs stay bit-identical)."""
        exp_mean = self.exp_mean
        burst_prob = self.burst_prob
        if exp_mean <= 0 and burst_prob <= 0:
            return [0.0] * n
        out: List[float] = []
        append = out.append
        expovariate = rng.expovariate
        rand = rng.random
        uniform = rng.uniform
        lam = 1.0 / exp_mean if exp_mean > 0 else 0.0
        burst_min, burst_max = self.burst_min, self.burst_max
        for _ in range(n):
            delay = expovariate(lam) if exp_mean > 0 else 0.0
            if burst_prob > 0 and rand() < burst_prob:
                delay += uniform(burst_min, burst_max)
            append(delay)
        return out


@dataclass
class BackgroundTrafficModel:
    """Per-tier jitter, representing the rest of the datacenter's load.

    Defaults calibrated against Fig. 10: TOR queues are nearly idle for
    the measured (low-rate) LTL traffic; L1 switches occasionally delay a
    packet by ~0.5 us ("a small tail of outliers — possibly packets stuck
    behind other traffic"); L2 switches see broader oversubscription
    effects.
    """

    tor: TierJitter = field(default_factory=lambda: TierJitter(
        exp_mean=0.004e-6))
    l1: TierJitter = field(default_factory=lambda: TierJitter(
        exp_mean=0.03e-6, burst_prob=0.004, burst_min=0.25e-6,
        burst_max=0.55e-6))
    l2: TierJitter = field(default_factory=lambda: TierJitter(
        exp_mean=0.18e-6, burst_prob=0.03, burst_min=0.3e-6,
        burst_max=1.0e-6))

    def sample(self, tier: str, rng: random.Random) -> float:
        """Draw one traversal's worth of jitter for ``tier``."""
        jitter = getattr(self, tier, None)
        if jitter is None:
            raise ValueError(f"unknown switch tier: {tier}")
        return jitter.sample(rng)

    def sample_batch(self, tier: str, rng: random.Random,
                     n: int) -> List[float]:
        """``n`` jitter draws for ``tier`` (see
        :meth:`TierJitter.sample_batch`)."""
        jitter = getattr(self, tier, None)
        if jitter is None:
            raise ValueError(f"unknown switch tier: {tier}")
        return jitter.sample_batch(rng, n)

    def batched(self, tier: str, rng: random.Random,
                batch: int = 64) -> "JitterStream":
        """A buffered per-tier sampler for hot paths (one refill per
        ``batch`` packets instead of one full dispatch per packet)."""
        jitter = getattr(self, tier, None)
        if jitter is None:
            raise ValueError(f"unknown switch tier: {tier}")
        return JitterStream(jitter, rng, batch)


class JitterStream:
    """Buffered jitter draws for one (tier, rng) pair.

    Refills ``batch`` samples at a time via
    :meth:`TierJitter.sample_batch`; draw order (and therefore RNG
    consumption) matches per-packet sampling exactly, as long as the rng
    is not shared with another *interleaved* consumer.  Switches qualify:
    their rng's only other client is ECN marking, which draws nothing
    while queues sit below the marking threshold.
    """

    __slots__ = ("_jitter", "_rng", "_batch", "_buffer", "_index")

    def __init__(self, jitter: TierJitter, rng: random.Random,
                 batch: int = 64):
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self._jitter = jitter
        self._rng = rng
        self._batch = batch
        self._buffer: List[float] = []
        self._index = 0

    def take(self) -> float:
        """The next jitter value (refilling the buffer when drained)."""
        index = self._index
        if index >= len(self._buffer):
            self._buffer = self._jitter.sample_batch(self._rng, self._batch)
            index = 0
        self._index = index + 1
        return self._buffer[index]


def idle() -> BackgroundTrafficModel:
    """A jitter model with no background traffic at all (for unit tests)."""
    return BackgroundTrafficModel(tor=TierJitter(), l1=TierJitter(),
                                  l2=TierJitter())
