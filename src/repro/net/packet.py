"""Packet and header models.

Packets carry real header objects (Ethernet / IPv4 / UDP) that can be
serialized to wire bytes — the LTL engine and the crypto flow tap parse and
rewrite them — but payloads may be either ``bytes`` or an opaque Python
object plus a length, so bulk simulations need not materialize megabytes.

Sizes follow the wire: 14 B Ethernet header + 4 B FCS, 20 B IPv4, 8 B UDP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Optional

ETHERNET_HEADER_BYTES = 14
ETHERNET_FCS_BYTES = 4
IPV4_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
#: Minimum Ethernet frame size (without preamble/IFG).
MIN_FRAME_BYTES = 64
#: Standard MTU-sized frame payload.
MTU_BYTES = 1500

ETHERTYPE_IPV4 = 0x0800
#: EtherType used by PFC pause frames (MAC control).
ETHERTYPE_MAC_CONTROL = 0x8808

IPPROTO_UDP = 17


class TrafficClass:
    """802.1p-style priority classes used by the datacenter fabric.

    ``LOSSLESS`` is the PFC-protected class provisioned for RDMA/FCoE-style
    traffic; LTL rides it.  ``BEST_EFFORT`` carries baseline TCP-ish load.
    """

    BEST_EFFORT = 0
    BULK = 1
    LOSSLESS = 3
    CONTROL = 6

    ALL = (BEST_EFFORT, BULK, LOSSLESS, CONTROL)

    @classmethod
    def is_lossless(cls, tc: int) -> bool:
        return tc == cls.LOSSLESS


def _pack_ip(ip: str) -> bytes:
    parts = [int(p) for p in ip.split(".")]
    if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
        raise ValueError(f"bad IPv4 address: {ip}")
    return bytes(parts)


def _unpack_ip(raw: bytes) -> str:
    return ".".join(str(b) for b in raw)


def _pack_mac(mac: str) -> bytes:
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC address: {mac}")
    return bytes(int(p, 16) for p in parts)


def _unpack_mac(raw: bytes) -> str:
    return ":".join(f"{b:02x}" for b in raw)


def ipv4_checksum(header: bytes) -> int:
    """RFC 791 ones-complement checksum over the IPv4 header."""
    if len(header) % 2:
        header += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", header):
        total += word
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class EthernetHeader:
    """Destination/source MAC plus EtherType and 802.1p priority."""

    dst_mac: str
    src_mac: str
    ethertype: int = ETHERTYPE_IPV4
    priority: int = TrafficClass.BEST_EFFORT

    def to_bytes(self) -> bytes:
        return _pack_mac(self.dst_mac) + _pack_mac(self.src_mac) \
            + struct.pack("!H", self.ethertype)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "EthernetHeader":
        if len(raw) < ETHERNET_HEADER_BYTES:
            raise ValueError("truncated Ethernet header")
        dst = _unpack_mac(raw[0:6])
        src = _unpack_mac(raw[6:12])
        (ethertype,) = struct.unpack("!H", raw[12:14])
        return cls(dst_mac=dst, src_mac=src, ethertype=ethertype)


@dataclass
class Ipv4Header:
    """The subset of IPv4 the fabric and LTL need, with real serialization."""

    src_ip: str
    dst_ip: str
    protocol: int = IPPROTO_UDP
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    total_length: int = 0
    identification: int = 0

    def to_bytes(self) -> bytes:
        ver_ihl = (4 << 4) | 5
        tos = (self.dscp << 2) | (self.ecn & 0x3)
        header = struct.pack(
            "!BBHHHBBH", ver_ihl, tos, self.total_length,
            self.identification, 0, self.ttl, self.protocol, 0)
        header += _pack_ip(self.src_ip) + _pack_ip(self.dst_ip)
        checksum = ipv4_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Ipv4Header":
        if len(raw) < IPV4_HEADER_BYTES:
            raise ValueError("truncated IPv4 header")
        (ver_ihl, tos, total_length, identification, _flags, ttl,
         protocol, _checksum) = struct.unpack("!BBHHHBBH", raw[:12])
        if ver_ihl >> 4 != 4:
            raise ValueError("not an IPv4 header")
        return cls(
            src_ip=_unpack_ip(raw[12:16]), dst_ip=_unpack_ip(raw[16:20]),
            protocol=protocol, ttl=ttl, dscp=tos >> 2, ecn=tos & 0x3,
            total_length=total_length, identification=identification)


@dataclass
class UdpHeader:
    """UDP ports + length; checksum omitted (valid for IPv4)."""

    src_port: int
    dst_port: int
    length: int = 0

    def to_bytes(self) -> bytes:
        return struct.pack("!HHHH", self.src_port, self.dst_port,
                           self.length, 0)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "UdpHeader":
        if len(raw) < UDP_HEADER_BYTES:
            raise ValueError("truncated UDP header")
        src, dst, length, _checksum = struct.unpack("!HHHH", raw[:8])
        return cls(src_port=src, dst_port=dst, length=length)


_packet_ids = count()


@dataclass
class Packet:
    """A frame in flight through the simulated fabric.

    ``payload`` may be real ``bytes`` or any Python object; ``payload_bytes``
    is the authoritative on-wire payload size.  ``traffic_class`` selects the
    switch queue; ``ecn_marked`` is set by switches implementing RED/ECN.
    """

    eth: EthernetHeader
    ip: Optional[Ipv4Header] = None
    udp: Optional[UdpHeader] = None
    payload: Any = b""
    payload_bytes: int = -1
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    ecn_marked: bool = False
    hops: int = 0
    #: Optional :class:`repro.trace.TraceContext` riding the packet.
    #: ``None`` (the default) keeps tracing free: tap sites only check
    #: ``packet.trace is not None``.  Not part of the wire format.
    trace: Any = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            if isinstance(self.payload, (bytes, bytearray)):
                self.payload_bytes = len(self.payload)
            else:
                raise ValueError(
                    "payload_bytes required for non-bytes payloads")

    @property
    def traffic_class(self) -> int:
        return self.eth.priority

    @property
    def wire_bytes(self) -> int:
        """Total frame size on the wire (headers + payload + FCS)."""
        size = ETHERNET_HEADER_BYTES + ETHERNET_FCS_BYTES
        if self.ip is not None:
            size += IPV4_HEADER_BYTES
        if self.udp is not None:
            size += UDP_HEADER_BYTES
        size += self.payload_bytes
        return max(size, MIN_FRAME_BYTES)

    def headers_to_bytes(self) -> bytes:
        """Serialize the full header stack to wire bytes."""
        raw = self.eth.to_bytes()
        if self.ip is not None:
            ip = self.ip
            ip.total_length = IPV4_HEADER_BYTES + (
                UDP_HEADER_BYTES if self.udp else 0) + self.payload_bytes
            raw += ip.to_bytes()
        if self.udp is not None:
            self.udp.length = UDP_HEADER_BYTES + self.payload_bytes
            raw += self.udp.to_bytes()
        return raw

    def clone(self) -> "Packet":
        """Copy with a fresh packet id (for retransmission)."""
        return Packet(
            eth=EthernetHeader(**vars(self.eth)),
            ip=None if self.ip is None else Ipv4Header(**vars(self.ip)),
            udp=None if self.udp is None else UdpHeader(**vars(self.udp)),
            payload=self.payload, payload_bytes=self.payload_bytes,
            created_at=self.created_at)


def make_udp_packet(src_index: int, dst_index: int, src_ip: str, dst_ip: str,
                    src_mac: str, dst_mac: str, src_port: int, dst_port: int,
                    payload: Any, payload_bytes: int = -1,
                    traffic_class: int = TrafficClass.BEST_EFFORT) -> Packet:
    """Convenience constructor for a UDP/IPv4/Ethernet packet."""
    eth = EthernetHeader(dst_mac=dst_mac, src_mac=src_mac,
                         ethertype=ETHERTYPE_IPV4, priority=traffic_class)
    ip = Ipv4Header(src_ip=src_ip, dst_ip=dst_ip, protocol=IPPROTO_UDP)
    udp = UdpHeader(src_port=src_port, dst_port=dst_port)
    return Packet(eth=eth, ip=ip, udp=udp, payload=payload,
                  payload_bytes=payload_bytes)
