"""Datacenter network substrate: packets, switches, 3-tier topology, QoS.

The Configurable Cloud's defining property is that FPGAs share the
datacenter's standard Ethernet.  This package simulates that Ethernet:

* :mod:`repro.net.packet` — Ethernet/IPv4/UDP headers with real wire
  serialization, plus the lossless traffic-class taxonomy,
* :mod:`repro.net.links` / :mod:`repro.net.switch` — output-queued switches
  with strict-priority draining, PFC and DC-QCN-style ECN marking,
* :mod:`repro.net.topology` — lazy TOR/L1/L2 tree covering 250k+ hosts,
* :mod:`repro.net.fabric` — the facade endpoints attach to,
* :mod:`repro.net.dcqcn` — the DC-QCN congestion-control state machines.
"""

from .addressing import (
    HostCoordinates,
    coords_to_host_index,
    host_index_to_coords,
    ip_address,
    mac_address,
    mac_to_host_index,
)
from .dcqcn import CnpGenerator, DcqcnConfig, DcqcnRateController
from .fabric import Attachment, DatacenterFabric
from .latency import BackgroundTrafficModel, LatencyModel, TierJitter, idle
from .links import Port, PortStats, propagation_delay
from .packet import (
    EthernetHeader,
    Ipv4Header,
    Packet,
    TrafficClass,
    UdpHeader,
    make_udp_packet,
)
from .switch import EcnConfig, PfcConfig, Switch
from .topology import ThreeTierTopology, TopologyConfig
from .traffic import BackgroundLoadConfig, BackgroundLoadGenerator

__all__ = [
    "Attachment",
    "BackgroundLoadConfig",
    "BackgroundLoadGenerator",
    "BackgroundTrafficModel",
    "CnpGenerator",
    "DatacenterFabric",
    "DcqcnConfig",
    "DcqcnRateController",
    "EcnConfig",
    "EthernetHeader",
    "HostCoordinates",
    "Ipv4Header",
    "LatencyModel",
    "Packet",
    "PfcConfig",
    "Port",
    "PortStats",
    "Switch",
    "ThreeTierTopology",
    "TierJitter",
    "TopologyConfig",
    "TrafficClass",
    "UdpHeader",
    "coords_to_host_index",
    "host_index_to_coords",
    "idle",
    "ip_address",
    "mac_address",
    "mac_to_host_index",
    "make_udp_packet",
    "propagation_delay",
]
