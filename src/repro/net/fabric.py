"""Fabric facade: attach endpoints, build packets, let them fly.

:class:`DatacenterFabric` is the public entry point to the network
substrate.  A host (in this library: the TOR-facing MAC of a bump-in-the-
wire FPGA, or a plain NIC in software-only experiments) calls
:meth:`attach` with a delivery callback and receives an
:class:`Attachment`, whose :meth:`Attachment.send` puts packets onto the
host's uplink into its TOR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..sim import Environment, RandomStreams
from .links import Port
from .packet import Packet, TrafficClass, make_udp_packet
from .topology import ThreeTierTopology, TopologyConfig


@dataclass
class Attachment:
    """A host's connection point to the fabric."""

    host_index: int
    ip: str
    mac: str
    uplink: Port
    fabric: "DatacenterFabric"

    def send(self, packet: Packet) -> bool:
        """Transmit ``packet`` toward the TOR; False if tail-dropped."""
        packet.created_at = self.fabric.env.now
        return self.uplink.enqueue(packet)

    def make_packet(self, dst_index: int, payload, payload_bytes: int = -1,
                    src_port: int = 0, dst_port: int = 0,
                    traffic_class: int = TrafficClass.BEST_EFFORT) -> Packet:
        """Build a UDP packet from this host to ``dst_index``."""
        fabric = self.fabric
        return make_udp_packet(
            src_index=self.host_index, dst_index=dst_index,
            src_ip=self.ip, dst_ip=fabric.topology.ip_of(dst_index),
            src_mac=self.mac, dst_mac=fabric.topology.mac_of(dst_index),
            src_port=src_port, dst_port=dst_port,
            payload=payload, payload_bytes=payload_bytes,
            traffic_class=traffic_class)


class DatacenterFabric:
    """The shared datacenter Ethernet the Configurable Cloud rides on."""

    def __init__(self, env: Environment,
                 config: Optional[TopologyConfig] = None,
                 streams: Optional[RandomStreams] = None):
        self.env = env
        self.streams = streams or RandomStreams(seed=0)
        self.topology = ThreeTierTopology(env, config, self.streams)
        self._attachments: Dict[int, Attachment] = {}
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        #: Delivery taps per host: each gets the packet and returns it
        #: (possibly replaced) to pass on, or ``None`` to swallow it.
        self._taps: Dict[int, List[Callable[[Packet], Optional[Packet]]]] = {}
        #: Detached hosts kept warm for :meth:`reattach`.
        self._detached: Dict[int, Tuple[
            Attachment, Callable[[Packet], None], Port]] = {}

    @property
    def config(self) -> TopologyConfig:
        return self.topology.config

    def attach(self, host_index: int,
               deliver: Callable[[Packet], None]) -> Attachment:
        """Connect a host; ``deliver`` receives packets addressed to it."""
        if host_index in self._attachments:
            raise ValueError(f"host {host_index} already attached")
        topo = self.topology
        coords = topo.coords(host_index)
        tor = topo.tor(coords.pod, coords.tor)
        lat = self.config.latency

        # Host -> TOR direction.
        uplink = Port(self.env, f"host-{host_index}->tor",
                      rate_bps=lat.host_rate_bps,
                      distance_m=lat.host_tor_distance_m,
                      deliver=tor.receive)
        # TOR -> host direction (through the fault-injection taps).
        downlink = Port(self.env, f"tor->host-{host_index}",
                        rate_bps=lat.host_rate_bps,
                        distance_m=lat.host_tor_distance_m,
                        deliver=lambda pkt, h=host_index:
                        self._dispatch(h, pkt))
        tor.add_port(host_index, downlink)
        tor.register_upstream(f"host-{host_index}", uplink)

        attachment = Attachment(
            host_index=host_index, ip=topo.ip_of(host_index),
            mac=topo.mac_of(host_index), uplink=uplink, fabric=self)
        self._attachments[host_index] = attachment
        self._handlers[host_index] = deliver
        return attachment

    def detach(self, host_index: int) -> None:
        """Remove a host (its TOR port stops delivering).

        The attachment is stashed so :meth:`reattach` can bring the host
        back — modeling transient link loss as well as permanent death.
        """
        attachment = self._attachments.pop(host_index, None)
        if attachment is None:
            raise KeyError(f"host {host_index} not attached")
        handler = self._handlers.pop(host_index, None)
        coords = self.topology.coords(host_index)
        tor = self.topology.tor(coords.pod, coords.tor)
        port = tor.ports.pop(host_index, None)
        if port is not None:
            port.deliver = None
        if handler is not None and port is not None:
            self._detached[host_index] = (attachment, handler, port)

    def reattach(self, host_index: int) -> Attachment:
        """Restore a previously detached host on its original TOR port."""
        if host_index in self._attachments:
            raise ValueError(f"host {host_index} already attached")
        try:
            attachment, handler, port = self._detached.pop(host_index)
        except KeyError:
            raise KeyError(
                f"host {host_index} was never attached; cannot reattach")
        coords = self.topology.coords(host_index)
        tor = self.topology.tor(coords.pod, coords.tor)
        port.deliver = lambda pkt, h=host_index: self._dispatch(h, pkt)
        tor.add_port(host_index, port)
        self._attachments[host_index] = attachment
        self._handlers[host_index] = handler
        return attachment

    # ------------------------------------------------------------------
    # Delivery taps (fault injection at the TOR->host hop)
    # ------------------------------------------------------------------
    def _dispatch(self, host_index: int, packet: Packet) -> None:
        for tap in list(self._taps.get(host_index, ())):
            result = tap(packet)
            if result is None:
                return
            packet = result
        handler = self._handlers.get(host_index)
        if handler is not None:
            handler(packet)

    def install_tap(self, host_index: int,
                    tap: Callable[[Packet], Optional[Packet]]) -> None:
        """Interpose ``tap`` on deliveries to ``host_index``."""
        self._taps.setdefault(host_index, []).append(tap)

    def remove_tap(self, host_index: int,
                   tap: Callable[[Packet], Optional[Packet]]) -> None:
        taps = self._taps.get(host_index, [])
        if tap in taps:
            taps.remove(tap)
        if not taps:
            self._taps.pop(host_index, None)

    def inject_delivery(self, host_index: int, packet: Packet) -> None:
        """Deliver ``packet`` to the host directly, bypassing the taps —
        used by taps that re-inject delayed (gray) traffic."""
        handler = self._handlers.get(host_index)
        if handler is not None:
            handler(packet)

    def attachment(self, host_index: int) -> Attachment:
        return self._attachments[host_index]

    def is_attached(self, host_index: int) -> bool:
        return host_index in self._attachments
