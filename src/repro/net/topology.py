"""Three-tier datacenter topology (TOR / L1 / L2).

The paper's network: each TOR connects 24 hosts; L1 switches form pods of
960 machines (40 TORs); L2 connects pods, reaching more than a quarter
million machines.  Oversubscription grows up the tree.

Switches are created lazily — a fabric logically spanning 250k hosts only
instantiates the switches on paths actually exercised, so Fig. 10-style
experiments at L2 scale stay cheap.  Each pod gets a deterministic physical
distance from the L2 tier (datacenter geometry), which dominates cross-pod
latency variation exactly as the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..sim import Environment, RandomStreams
from ..sim.randomness import _derive_seed
from .addressing import (
    HostCoordinates,
    host_index_to_coords,
    ip_address,
    mac_address,
)
from .latency import BackgroundTrafficModel, LatencyModel
from .links import Port
from .packet import Packet
from .switch import EcnConfig, PfcConfig, Switch


@dataclass
class TopologyConfig:
    """Shape and physics of the simulated datacenter network."""

    hosts_per_tor: int = 24
    tors_per_pod: int = 40
    pods: int = 264  # 264 * 960 = 253,440 hosts — "more than a quarter million"
    latency: LatencyModel = field(default_factory=LatencyModel)
    background: Optional[BackgroundTrafficModel] = field(
        default_factory=BackgroundTrafficModel)
    ecn: EcnConfig = field(default_factory=EcnConfig)
    pfc: PfcConfig = field(default_factory=PfcConfig)

    @property
    def hosts_per_pod(self) -> int:
        return self.hosts_per_tor * self.tors_per_pod

    @property
    def total_hosts(self) -> int:
        return self.hosts_per_pod * self.pods


class ThreeTierTopology:
    """Lazily materialized TOR/L1/L2 switch tree.

    One logical L1 switch aggregates each pod and one logical L2 switch
    aggregates the datacenter; oversubscription inside those aggregates is
    modeled by the background-traffic jitter rather than by instantiating
    hundreds of physical chassis.
    """

    def __init__(self, env: Environment, config: Optional[TopologyConfig]
                 = None, streams: Optional[RandomStreams] = None):
        self.env = env
        self.config = config or TopologyConfig()
        self.streams = streams or RandomStreams(seed=0)
        self._tors: Dict[Tuple[int, int], Switch] = {}
        self._l1s: Dict[int, Switch] = {}
        self._l2: Optional[Switch] = None
        # Routing memoization (pure address arithmetic; see router methods).
        self._mac_cache: Dict[str, int] = {}
        self._coords_cache: Dict[int, HostCoordinates] = {}
        self._switch_pos: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Coordinates and physics
    # ------------------------------------------------------------------
    def coords(self, host_index: int) -> HostCoordinates:
        if not 0 <= host_index < self.config.total_hosts:
            raise ValueError(
                f"host index {host_index} outside datacenter of "
                f"{self.config.total_hosts} hosts")
        return host_index_to_coords(
            host_index, self.config.hosts_per_tor, self.config.tors_per_pod)

    def tier_between(self, a: int, b: int) -> str:
        """Lowest network tier connecting hosts ``a`` and ``b``."""
        ca, cb = self.coords(a), self.coords(b)
        if ca.same_tor(cb):
            return "L0"
        if ca.same_pod(cb):
            return "L1"
        return "L2"

    def pod_distance_m(self, pod: int) -> float:
        """Deterministic per-pod fiber run to the L2 tier (metres)."""
        lat = self.config.latency
        # Stable pseudo-random fraction derived from the pod id.  Uses the
        # process-stable seed derivation — ``hash()`` on strings is salted
        # per interpreter and would move every pod between runs.
        u = (_derive_seed(self.streams.seed, "pod-distance", pod)
             & 0xFFFFFF) / float(1 << 24)
        return lat.l1_l2_distance_min_m + u * (
            lat.l1_l2_distance_max_m - lat.l1_l2_distance_min_m)

    def ip_of(self, host_index: int) -> str:
        return ip_address(self.coords(host_index))

    def mac_of(self, host_index: int) -> str:
        return mac_address(host_index)

    # ------------------------------------------------------------------
    # Lazy switch construction
    # ------------------------------------------------------------------
    def _make_switch(self, name: str, tier: str, latency: float) -> Switch:
        return Switch(
            self.env, name=name, tier=tier, forwarding_latency=latency,
            background=self.config.background,
            rng=self.streams.stream(f"switch:{name}"),
            ecn=self.config.ecn, pfc=self.config.pfc)

    def tor(self, pod: int, tor: int) -> Switch:
        key = (pod, tor)
        if key not in self._tors:
            switch = self._make_switch(
                f"tor-{pod}-{tor}", "tor", self.config.latency.tor_latency)
            switch.set_router(self._route_tor)
            self._tors[key] = switch
            self._wire_tor_to_l1(switch, pod, tor)
        return self._tors[key]

    def l1(self, pod: int) -> Switch:
        if pod not in self._l1s:
            switch = self._make_switch(
                f"l1-{pod}", "l1", self.config.latency.l1_latency)
            switch.set_router(self._route_l1)
            self._l1s[pod] = switch
            self._wire_l1_to_l2(switch, pod)
        return self._l1s[pod]

    def l2(self) -> Switch:
        if self._l2 is None:
            switch = self._make_switch(
                "l2", "l2", self.config.latency.l2_latency)
            switch.set_router(self._route_l2)
            self._l2 = switch
        return self._l2

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _wire_tor_to_l1(self, tor_switch: Switch, pod: int, tor: int) -> None:
        lat = self.config.latency
        l1_switch = self.l1(pod)
        up = Port(self.env, f"{tor_switch.name}->l1",
                  rate_bps=lat.tor_uplink_rate_bps,
                  distance_m=lat.tor_l1_distance_m,
                  deliver=l1_switch.receive)
        tor_switch.add_port("uplink", up)
        down = Port(self.env, f"l1-{pod}->{tor_switch.name}",
                    rate_bps=lat.tor_uplink_rate_bps,
                    distance_m=lat.tor_l1_distance_m,
                    deliver=tor_switch.receive)
        l1_switch.add_port(("tor", tor), down)
        # PFC pushback between the pair.
        l1_switch.register_upstream(tor_switch.name, up)
        tor_switch.register_upstream(l1_switch.name, down)

    def _wire_l1_to_l2(self, l1_switch: Switch, pod: int) -> None:
        lat = self.config.latency
        l2_switch = self.l2()
        distance = self.pod_distance_m(pod)
        up = Port(self.env, f"{l1_switch.name}->l2",
                  rate_bps=lat.l1_uplink_rate_bps, distance_m=distance,
                  deliver=l2_switch.receive)
        l1_switch.add_port("uplink", up)
        down = Port(self.env, f"l2->{l1_switch.name}",
                    rate_bps=lat.l1_uplink_rate_bps, distance_m=distance,
                    deliver=l1_switch.receive)
        l2_switch.add_port(("pod", pod), down)
        l2_switch.register_upstream(l1_switch.name, up)
        l1_switch.register_upstream(l2_switch.name, down)

    # ------------------------------------------------------------------
    # Routing (installed on switches; destination from the packet MAC)
    # ------------------------------------------------------------------
    # Per-packet routing is pure address arithmetic, so everything
    # reusable is memoized: the MAC-string parse and the coordinate
    # split are cached per destination, and each switch's own position
    # is bound into its router closure instead of being re-parsed from
    # the switch name on every packet.
    def _dst_index(self, packet: Packet) -> int:
        mac = packet.eth.dst_mac
        dst = self._mac_cache.get(mac)
        if dst is None:
            from .addressing import mac_to_host_index
            dst = self._mac_cache[mac] = mac_to_host_index(mac)
        return dst

    def _coords_cached(self, host_index: int) -> "HostCoordinates":
        coords = self._coords_cache.get(host_index)
        if coords is None:
            coords = self._coords_cache[host_index] = self.coords(host_index)
        return coords

    def _route_tor(self, switch: Switch, packet: Packet) -> object:
        dst = self._dst_index(packet)
        coords = self._coords_cached(dst)
        my_pod, my_tor = self._switch_coords(switch)
        if coords.pod == my_pod and coords.tor == my_tor:
            return dst  # host-facing port keyed by host index
        return "uplink"

    def _route_l1(self, switch: Switch, packet: Packet) -> object:
        dst = self._dst_index(packet)
        coords = self._coords_cached(dst)
        my_pod, _ = self._switch_coords(switch)
        if coords.pod == my_pod:
            return ("tor", coords.tor)
        return "uplink"

    def _route_l2(self, _switch: Switch, packet: Packet) -> object:
        dst = self._dst_index(packet)
        return ("pod", self._coords_cached(dst).pod)

    def _switch_coords(self, switch: Switch) -> Tuple[int, int]:
        """(pod, tor) of a tor/l1 switch, parsed from its name once."""
        pos = self._switch_pos.get(switch.name)
        if pos is None:
            parts = switch.name.split("-")
            pod = int(parts[1])
            tor = int(parts[2]) if len(parts) > 2 else -1
            pos = self._switch_pos[switch.name] = (pod, tor)
        return pos
