"""The five-day production load trace (paper Fig. 7/8).

Live search traffic follows a strong diurnal cycle with day-to-day
variation and short-term noise.  The trace generator emits per-window
offered-load multipliers (relative to the software datacenter's typical
average load = 1.0), deterministic given a seed.

The paper's software datacenter additionally runs "a dynamic load
balancing mechanism that caps the incoming traffic when tail latencies
begin exceeding acceptable thresholds" — modeled by the ``cap`` applied
to the software DC's offered load, while the FPGA DC absorbs the full
(higher) offered load.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List


@dataclass
class DiurnalTraceConfig:
    """Shape of the five-day trace."""

    days: int = 5
    windows_per_day: int = 48          # 30-minute windows
    base_load: float = 1.0             # software DC average = 1.0
    #: Peak-to-trough ratio of the daily cycle.
    daily_amplitude: float = 0.55
    #: Peak hour (fraction of day, 0.58 ~ 2pm local).
    peak_phase: float = 0.58
    #: Day-to-day multiplicative drift.
    day_jitter: float = 0.08
    #: Window-level multiplicative noise.
    window_noise: float = 0.05
    #: Extra demand multiplier hitting the FPGA datacenter (it can take
    #: more, so the balancer routes it more traffic).
    fpga_demand_multiplier: float = 2.1
    seed: int = 7


@dataclass
class LoadSample:
    """One time window of the trace."""

    day: int
    window: int
    time_days: float
    software_offered: float
    fpga_offered: float


def five_day_trace(config: DiurnalTraceConfig | None = None) \
        -> List[LoadSample]:
    """Generate the five-day dual-datacenter offered-load trace."""
    config = config or DiurnalTraceConfig()
    rng = random.Random(config.seed)
    samples: List[LoadSample] = []
    for day in range(config.days):
        day_scale = 1.0 + rng.gauss(0.0, config.day_jitter)
        for window in range(config.windows_per_day):
            frac = window / config.windows_per_day
            # Diurnal cycle: cosine dip at night, peak at peak_phase.
            cycle = 1.0 + config.daily_amplitude * math.cos(
                2 * math.pi * (frac - config.peak_phase))
            noise = 1.0 + rng.gauss(0.0, config.window_noise)
            offered = config.base_load * day_scale * cycle * noise
            offered = max(0.1, offered)
            samples.append(LoadSample(
                day=day, window=window,
                time_days=day + frac,
                software_offered=offered,
                fpga_offered=offered * config.fpga_demand_multiplier))
    return samples


def apply_load_balancer_cap(offered: float, cap: float) -> float:
    """The software DC's protective cap on admitted load."""
    return min(offered, cap)
