"""Workload generators: arrival processes and the five-day load trace."""

from .arrivals import PoissonArrivals, closed_loop_arrivals
from .diurnal import (
    DiurnalTraceConfig,
    LoadSample,
    apply_load_balancer_cap,
    five_day_trace,
)

__all__ = [
    "DiurnalTraceConfig",
    "LoadSample",
    "PoissonArrivals",
    "apply_load_balancer_cap",
    "closed_loop_arrivals",
    "five_day_trace",
]
