"""Workload generators: arrival processes, the five-day load trace, and
surge (flash-crowd / diurnal-spike) profiles."""

from .arrivals import PoissonArrivals, closed_loop_arrivals
from .diurnal import (
    DiurnalTraceConfig,
    LoadSample,
    apply_load_balancer_cap,
    five_day_trace,
)
from .surge import (
    DiurnalSpikeProfile,
    FlashCrowdProfile,
    VariableRateArrivals,
)

__all__ = [
    "DiurnalSpikeProfile",
    "DiurnalTraceConfig",
    "FlashCrowdProfile",
    "LoadSample",
    "PoissonArrivals",
    "VariableRateArrivals",
    "apply_load_balancer_cap",
    "closed_loop_arrivals",
    "five_day_trace",
]
