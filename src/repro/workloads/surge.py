"""Surge workloads: flash crowds and diurnal spikes.

The five-day trace (:mod:`repro.workloads.diurnal`) models *planned*
load variation at half-hour granularity.  Overload experiments need the
unplanned kind: a flash crowd that multiplies offered load within
seconds.  This module provides time-varying rate profiles and a
non-homogeneous Poisson arrival process (exact thinning, seeded) to
drive them.

All randomness flows through the caller-supplied ``random.Random`` so
seeded runs replay bit-identically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Environment


@dataclass
class FlashCrowdProfile:
    """Baseline load with one multiplicative surge window.

    The rate ramps linearly into and out of the surge over ``ramp``
    seconds — real flash crowds are steep, not discontinuous, and a
    ramp keeps the thinning envelope tight.
    """

    baseline_qps: float
    surge_multiplier: float = 5.0
    surge_start: float = 0.5
    surge_duration: float = 1.0
    ramp: float = 0.02

    def __post_init__(self) -> None:
        if self.baseline_qps <= 0:
            raise ValueError("baseline_qps must be positive")
        if self.surge_multiplier < 1:
            raise ValueError("surge_multiplier must be >= 1")

    @property
    def surge_end(self) -> float:
        return self.surge_start + self.surge_duration

    @property
    def peak_qps(self) -> float:
        return self.baseline_qps * self.surge_multiplier

    def rate(self, t: float) -> float:
        """Offered load (queries/second) at time ``t``."""
        peak = self.peak_qps
        base = self.baseline_qps
        if t < self.surge_start or t >= self.surge_end + self.ramp:
            return base
        if t < self.surge_start + self.ramp:
            frac = (t - self.surge_start) / self.ramp
            return base + (peak - base) * frac
        if t < self.surge_end:
            return peak
        frac = (t - self.surge_end) / self.ramp
        return peak - (peak - base) * frac


@dataclass
class DiurnalSpikeProfile:
    """A diurnal (sinusoidal) cycle with a superimposed spike.

    A compressed version of the five-day trace for second-scale
    experiments: the daily cycle is shrunk to ``period`` seconds and a
    flash-crowd spike rides on top of it.
    """

    baseline_qps: float
    #: Peak-to-mean amplitude of the cycle (0 = flat).
    amplitude: float = 0.3
    #: Cycle period in (simulated) seconds.
    period: float = 2.0
    #: Phase of the daily peak within the period.
    peak_phase: float = 0.5
    #: Optional spike window riding on the cycle.
    spike_multiplier: float = 1.0
    spike_start: float = 0.0
    spike_duration: float = 0.0

    def rate(self, t: float) -> float:
        cycle = 1.0 + self.amplitude * math.cos(
            2 * math.pi * (t / self.period - self.peak_phase))
        rate = self.baseline_qps * max(0.05, cycle)
        if self.spike_multiplier > 1.0 and \
                self.spike_start <= t < self.spike_start + self.spike_duration:
            rate *= self.spike_multiplier
        return rate

    @property
    def peak_qps(self) -> float:
        return self.baseline_qps * (1.0 + self.amplitude) \
            * max(1.0, self.spike_multiplier)


class VariableRateArrivals:
    """Non-homogeneous Poisson arrivals from a rate profile.

    Exact thinning (Lewis & Shedler): candidate arrivals are drawn at
    the envelope rate ``max_rate`` and accepted with probability
    ``rate(t)/max_rate`` — statistically exact for any profile bounded
    by the envelope, and deterministic given the ``rng``.
    """

    def __init__(self, env: Environment, rate_fn: Callable[[float], float],
                 max_rate: float, submit: Callable[[], None],
                 rng: Optional[random.Random] = None,
                 until: Optional[float] = None,
                 limit: Optional[int] = None):
        if max_rate <= 0:
            raise ValueError("envelope rate must be positive")
        self.env = env
        self.rate_fn = rate_fn
        self.max_rate = max_rate
        self.submit = submit
        self.rng = rng or random.Random(0)
        self.until = until
        self.limit = limit
        self.generated = 0
        self.thinned = 0
        env.process(self._run(), name="nhpp-arrivals")

    def _run(self):
        rng = self.rng
        while True:
            if self.limit is not None and self.generated >= self.limit:
                return
            yield self.env.timeout(rng.expovariate(self.max_rate))
            now = self.env.now
            if self.until is not None and now >= self.until:
                return
            rate = self.rate_fn(now)
            if rate > self.max_rate:
                raise ValueError(
                    f"rate {rate:.1f} at t={now:.3f} exceeds the "
                    f"thinning envelope {self.max_rate:.1f}")
            if rng.random() < rate / self.max_rate:
                self.generated += 1
                self.submit()
            else:
                self.thinned += 1
