"""Arrival processes for open- and closed-loop load generation."""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..sim import Environment


class PoissonArrivals:
    """Open-loop Poisson arrival process driving a submit callback."""

    def __init__(self, env: Environment, rate_per_second: float,
                 submit: Callable[[], None],
                 rng: Optional[random.Random] = None,
                 limit: Optional[int] = None):
        if rate_per_second <= 0:
            raise ValueError("arrival rate must be positive")
        self.env = env
        self.rate = rate_per_second
        self.submit = submit
        self.rng = rng or random.Random(0)
        self.limit = limit
        self.generated = 0
        env.process(self._run(), name="poisson-arrivals")

    def _run(self):
        while self.limit is None or self.generated < self.limit:
            self.submit()
            self.generated += 1
            yield self.env.timeout(self.rng.expovariate(self.rate))


def closed_loop_arrivals(env: Environment, concurrency: int,
                         run_one: Callable[[], "object"],
                         total: int):
    """Spawn ``concurrency`` workers each looping ``run_one`` processes.

    ``run_one`` must return a process-able generator.  Returns the list of
    worker processes; completion when all have issued their share.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    share, extra = divmod(total, concurrency)

    def worker(count: int):
        for _ in range(count):
            yield env.process(run_one())

    return [env.process(worker(share + (1 if i < extra else 0)),
                        name=f"closed-loop-{i}")
            for i in range(concurrency)]
