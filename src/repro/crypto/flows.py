"""Per-flow transparent line-rate encryption in the bridge tap (§IV).

"As each packet passes from the NIC through the FPGA to the ToR, its
header is examined to determine if it is part of an encrypted flow that
was previously set up by software.  If it is, the software-provided
encryption key is read from internal FPGA SRAM or the FPGA-attached DRAM
and is used to encrypt or decrypt the packet. ... encryption occurs
transparently from software's perspective, which sees all packets as
unencrypted at the end points."

:class:`EncryptionTap` provides the pair of bridge taps; encryption is
*real* (the AES from :mod:`repro.crypto`), and timing comes from
:class:`~repro.crypto.engine.FpgaCryptoEngine` via the tap's
``latency_for`` hook.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional

from ..net.packet import Packet
from .engine import FpgaCryptoConfig, FpgaCryptoEngine
from .modes import (
    cbc_hmac_decrypt,
    cbc_hmac_encrypt,
    gcm_decrypt,
    gcm_encrypt,
)


@dataclass(frozen=True)
class FlowKey:
    """Classifier: the 5-tuple identifying an encrypted flow."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int = 17

    def reversed(self) -> "FlowKey":
        """The same flow seen from the other endpoint's perspective."""
        return FlowKey(src_ip=self.dst_ip, dst_ip=self.src_ip,
                       src_port=self.dst_port, dst_port=self.src_port,
                       protocol=self.protocol)

    @classmethod
    def of_packet(cls, packet: Packet) -> Optional["FlowKey"]:
        if packet.ip is None or packet.udp is None:
            return None
        return cls(src_ip=packet.ip.src_ip, dst_ip=packet.ip.dst_ip,
                   src_port=packet.udp.src_port,
                   dst_port=packet.udp.dst_port,
                   protocol=packet.ip.protocol)


@dataclass
class FlowEntry:
    """Keys and state for one encrypted flow."""

    key: bytes
    mac_key: bytes
    suite: str = "aes-gcm-128"
    #: 8-byte per-flow salt for nonce construction.
    salt: bytes = b"\x00" * 8
    #: Monotone packet counter (nonce uniqueness).
    counter: int = 0
    #: Whether the entry fits in on-chip SRAM (vs FPGA-attached DRAM).
    in_sram: bool = True
    packets_encrypted: int = 0
    packets_decrypted: int = 0

    def next_nonce(self) -> bytes:
        self.counter += 1
        return self.salt + struct.pack("!I", self.counter & 0xFFFFFFFF)


@dataclass
class EncryptedPayload:
    """Wire representation of an encrypted packet payload."""

    suite: str
    nonce: bytes
    ciphertext: bytes
    tag: bytes

    @property
    def wire_bytes(self) -> int:
        return len(self.nonce) + len(self.ciphertext) + len(self.tag)


class FlowTable:
    """Flow classifier backed by SRAM with DRAM overflow.

    ``sram_capacity`` flows get single-cycle key lookup; beyond that,
    entries live in the FPGA-attached DRAM and each packet pays an extra
    DRAM access on lookup.
    """

    def __init__(self, sram_capacity: int = 512,
                 dram_lookup_latency: float = 0.12e-6):
        self.sram_capacity = sram_capacity
        self.dram_lookup_latency = dram_lookup_latency
        self._flows: Dict[FlowKey, FlowEntry] = {}

    def setup_flow(self, key: FlowKey, enc_key: bytes,
                   mac_key: bytes = b"", suite: str = "aes-gcm-128",
                   salt: bytes = b"\x00" * 8) -> FlowEntry:
        """Software control plane installs a flow (both directions share
        one entry per endpoint; the peer installs the mirrored key)."""
        entry = FlowEntry(key=enc_key, mac_key=mac_key or enc_key,
                          suite=suite, salt=salt,
                          in_sram=len(self._flows) < self.sram_capacity)
        self._flows[key] = entry
        return entry

    def remove_flow(self, key: FlowKey) -> None:
        self._flows.pop(key, None)

    def lookup(self, packet: Packet) -> Optional[FlowEntry]:
        flow_key = FlowKey.of_packet(packet)
        if flow_key is None:
            return None
        entry = self._flows.get(flow_key)
        if entry is None:
            entry = self._flows.get(flow_key.reversed())
        return entry

    def __len__(self) -> int:
        return len(self._flows)


class EncryptionTap:
    """Bridge taps performing transparent per-flow crypto.

    Install ``outbound`` as a NIC->TOR tap and ``inbound`` as a TOR->NIC
    tap.  Only ``bytes`` payloads are transformed (simulation-object
    payloads pass through untouched, since there is nothing real to
    encrypt).
    """

    def __init__(self, flow_table: Optional[FlowTable] = None,
                 engine: Optional[FpgaCryptoEngine] = None):
        # Explicit None check: an *empty* FlowTable is falsy (__len__ 0)
        # but must still be honored.
        self.flows = flow_table if flow_table is not None else FlowTable()
        self.engine = engine or FpgaCryptoEngine(FpgaCryptoConfig())
        self.encrypted = 0
        self.decrypted = 0
        self.auth_failures = 0

    # -- timing hook consumed by the bridge ------------------------------
    def _latency(self, packet: Packet) -> float:
        entry = self.flows.lookup(packet)
        if entry is None:
            return 0.0
        latency = self.engine.latency(entry.suite, packet.payload_bytes)
        if not entry.in_sram:
            latency += self.flows.dram_lookup_latency
        return latency

    # -- outbound: encrypt ------------------------------------------------
    def outbound(self, packet: Packet) -> Packet:
        entry = self.flows.lookup(packet)
        if entry is None or not isinstance(packet.payload,
                                           (bytes, bytearray)):
            return packet
        if isinstance(packet.payload, EncryptedPayload):
            return packet
        nonce = entry.next_nonce()
        if entry.suite.startswith("aes-gcm"):
            ciphertext, tag = gcm_encrypt(
                entry.key, nonce, bytes(packet.payload))
        else:
            iv = (nonce * 2)[:16]
            ciphertext, tag = cbc_hmac_encrypt(
                entry.key, entry.mac_key, iv, bytes(packet.payload))
            nonce = iv
        enc = EncryptedPayload(suite=entry.suite, nonce=nonce,
                               ciphertext=ciphertext, tag=tag)
        packet.payload = enc
        packet.payload_bytes = enc.wire_bytes
        entry.packets_encrypted += 1
        self.encrypted += 1
        return packet

    # -- inbound: decrypt ---------------------------------------------------
    def inbound(self, packet: Packet) -> Optional[Packet]:
        if not isinstance(packet.payload, EncryptedPayload):
            return packet
        entry = self.flows.lookup(packet)
        if entry is None:
            return packet  # not our flow: bridge it through encrypted
        enc: EncryptedPayload = packet.payload
        try:
            if enc.suite.startswith("aes-gcm"):
                plaintext = gcm_decrypt(entry.key, enc.nonce,
                                        enc.ciphertext, enc.tag)
            else:
                plaintext = cbc_hmac_decrypt(
                    entry.key, entry.mac_key, enc.nonce, enc.ciphertext,
                    enc.tag)
        except Exception:
            self.auth_failures += 1
            return None  # drop forged/corrupted packets
        packet.payload = plaintext
        packet.payload_bytes = len(plaintext)
        entry.packets_decrypted += 1
        self.decrypted += 1
        return packet

    def install(self, bridge) -> None:
        """Attach both directions to a :class:`~repro.fpga.bridge.Bridge`.

        The latency hook is bound onto the tap callables so the bridge
        stalls packets for the crypto pipeline time.
        """
        outbound = _with_latency(self.outbound, self._latency)
        inbound = _with_latency(self.inbound, self._latency)
        bridge.add_nic_to_tor_tap(outbound)
        bridge.add_tor_to_nic_tap(inbound)


def _with_latency(fn, latency_fn):
    """Wrap a tap callable, attaching the bridge's ``latency_for`` hook."""

    class _Tap:
        def __call__(self, packet):
            return fn(packet)

        @staticmethod
        def latency_for(packet):
            return latency_fn(packet)

    return _Tap()
