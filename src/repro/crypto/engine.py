"""FPGA crypto engine timing model (paper §IV).

The shell's crypto role runs at full 40 Gb/s in both directions.  Two
regimes:

* **AES-GCM**: "a single packet can be processed with no dependencies and
  thus can be perfectly pipelined" — latency is pipeline depth plus one
  block per cycle.
* **AES-CBC(-SHA1)**: "especially difficult for hardware due to tight
  dependencies.  AES-CBC requires processing 33 packets at a time in our
  implementation, taking only 128 b from a single packet once every 33
  cycles" — so a packet's blocks are consumed once per 33 cycles, and the
  "worst case half-duplex FPGA crypto latency for AES-CBC-128-SHA1 is
  11 us for a 1500 B packet, from first flit to first flit."

The calibration check: ceil(1500/16)=94 blocks x 33 cycles = 3102 cycles;
at the 300 MHz crypto clock plus pipeline fill ≈ 11 us.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: AES block size in bytes (128 bits per cycle into the core).
AES_BLOCK_BYTES = 16
#: Number of packets the CBC engine interleaves to keep the AES core busy.
CBC_INTERLEAVE_PACKETS = 33


@dataclass
class FpgaCryptoConfig:
    """Crypto role clocking and pipeline depths."""

    clock_hz: float = 300e6
    #: Pipeline fill for the perfectly-pipelined GCM path (AES rounds +
    #: GHASH + framing).
    gcm_pipeline_cycles: int = 60
    #: Extra cycles for CBC path entry/exit plus the SHA-1 tail.
    cbc_overhead_cycles: int = 198
    line_rate_bps: float = 40e9


class FpgaCryptoEngine:
    """Latency/throughput model of the shell crypto role."""

    def __init__(self, config: FpgaCryptoConfig | None = None):
        self.config = config or FpgaCryptoConfig()

    # ------------------------------------------------------------------
    def blocks(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / AES_BLOCK_BYTES))

    def gcm_latency(self, nbytes: int) -> float:
        """First-flit-to-first-flit latency for a GCM packet."""
        cycles = self.config.gcm_pipeline_cycles + self.blocks(nbytes)
        return cycles / self.config.clock_hz

    def cbc_sha1_latency(self, nbytes: int) -> float:
        """First-flit-to-first-flit latency for a CBC-SHA1 packet.

        The serial CBC dependency means one 128 b block of a given packet
        enters the AES core only once every 33 cycles (the other 32 slots
        carry blocks of the other interleaved packets).
        """
        cycles = (self.blocks(nbytes) * CBC_INTERLEAVE_PACKETS
                  + self.config.cbc_overhead_cycles)
        return cycles / self.config.clock_hz

    def latency(self, suite: str, nbytes: int) -> float:
        if suite.startswith("aes-gcm"):
            return self.gcm_latency(nbytes)
        if suite.startswith("aes-cbc"):
            return self.cbc_sha1_latency(nbytes)
        raise KeyError(f"unknown cipher suite {suite!r}")

    def throughput_bps(self, suite: str) -> float:
        """Sustained throughput: line rate for all supported suites.

        GCM is trivially line rate; CBC sustains line rate *because* of
        the 33-way interleave (one block per cycle enters the core, just
        from rotating packets): 16 B/cycle at 300 MHz = 38.4 Gb/s ≈ line
        rate (the QSFP's usable payload rate after framing).
        """
        per_cycle = AES_BLOCK_BYTES * 8 * self.config.clock_hz
        return min(per_cycle, self.config.line_rate_bps)

    def cpu_cores_freed(self, suite: str, software_model,
                        full_duplex: bool = True) -> float:
        """Host cores this engine saves at line rate (the §IV headline)."""
        return software_model.cores_for_line_rate(
            suite, self.config.line_rate_bps, full_duplex)
