"""GF(2^128) arithmetic for GHASH (the GCM universal hash).

GHASH operates in GF(2^128) defined by x^128 + x^7 + x^2 + x + 1, with
the bit-reflected convention of NIST SP 800-38D: bit 0 of a block is the
coefficient of x^0 and blocks are processed most-significant-bit first.
"""

from __future__ import annotations

#: The GCM reduction polynomial, as the bit-reversed constant R.
_R = 0xE1000000000000000000000000000000


def block_to_int(block: bytes) -> int:
    """A 16-byte block as the integer GCM operates on (big-endian)."""
    if len(block) != 16:
        raise ValueError("GF(2^128) elements are 16 bytes")
    return int.from_bytes(block, "big")


def int_to_block(value: int) -> bytes:
    return value.to_bytes(16, "big")


def gf_mult(x: int, y: int) -> int:
    """Multiply two field elements (NIST SP 800-38D algorithm 1)."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def ghash(h: bytes, data: bytes) -> bytes:
    """GHASH_H over ``data`` (already padded to a 16-byte multiple)."""
    if len(data) % 16:
        raise ValueError("GHASH input must be a multiple of 16 bytes")
    h_int = block_to_int(h)
    y = 0
    for offset in range(0, len(data), 16):
        y = gf_mult(y ^ block_to_int(data[offset:offset + 16]), h_int)
    return int_to_block(y)
