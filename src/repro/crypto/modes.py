"""AES cipher modes: CBC, CTR, and GCM (NIST SP 800-38A / 800-38D).

These are the modes the paper's crypto role implements: AES-GCM-128 (the
pipelinable mode with Intel's 1.26 cycles/byte Haswell figure) and
AES-CBC-128-SHA1 (the dependency-laden backward-compatibility mode that
needs 33-packet interleaving in hardware).
"""

from __future__ import annotations

import struct
from typing import Tuple

from .aes import AES, BLOCK_BYTES
from .gf128 import ghash
from .sha1 import hmac_sha1


class AuthenticationError(Exception):
    """GCM tag or HMAC verification failed."""


# ---------------------------------------------------------------------------
# Padding (PKCS#7) for CBC
# ---------------------------------------------------------------------------
def pkcs7_pad(data: bytes, block: int = BLOCK_BYTES) -> bytes:
    pad = block - (len(data) % block)
    return data + bytes([pad]) * pad


def pkcs7_unpad(data: bytes, block: int = BLOCK_BYTES) -> bytes:
    if not data or len(data) % block:
        raise ValueError("invalid padded length")
    pad = data[-1]
    if not 1 <= pad <= block or data[-pad:] != bytes([pad]) * pad:
        raise ValueError("invalid PKCS#7 padding")
    return data[:-pad]


# ---------------------------------------------------------------------------
# CBC
# ---------------------------------------------------------------------------
def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC encrypt (input padded with PKCS#7)."""
    if len(iv) != BLOCK_BYTES:
        raise ValueError("IV must be 16 bytes")
    cipher = AES(key)
    data = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for offset in range(0, len(data), BLOCK_BYTES):
        block = bytes(a ^ b for a, b in zip(
            data[offset:offset + BLOCK_BYTES], prev))
        prev = cipher.encrypt_block(block)
        out.extend(prev)
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    if len(iv) != BLOCK_BYTES:
        raise ValueError("IV must be 16 bytes")
    if len(ciphertext) % BLOCK_BYTES:
        raise ValueError("ciphertext not a block multiple")
    cipher = AES(key)
    out = bytearray()
    prev = iv
    for offset in range(0, len(ciphertext), BLOCK_BYTES):
        block = ciphertext[offset:offset + BLOCK_BYTES]
        plain = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, prev))
        prev = block
    return pkcs7_unpad(bytes(out))


# ---------------------------------------------------------------------------
# CTR
# ---------------------------------------------------------------------------
def _ctr_keystream(cipher: AES, initial_counter_block: bytes,
                   nbytes: int) -> bytes:
    counter = int.from_bytes(initial_counter_block[12:], "big")
    prefix = initial_counter_block[:12]
    stream = bytearray()
    while len(stream) < nbytes:
        block = prefix + ((counter) & 0xFFFFFFFF).to_bytes(4, "big")
        stream.extend(cipher.encrypt_block(block))
        counter += 1
    return bytes(stream[:nbytes])


def ctr_crypt(key: bytes, counter_block: bytes, data: bytes) -> bytes:
    """AES-CTR: encryption and decryption are the same operation."""
    cipher = AES(key)
    stream = _ctr_keystream(cipher, counter_block, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


# ---------------------------------------------------------------------------
# GCM
# ---------------------------------------------------------------------------
def _ghash_input(aad: bytes, ciphertext: bytes) -> bytes:
    def padded(data: bytes) -> bytes:
        rem = len(data) % 16
        return data + (b"\x00" * (16 - rem) if rem else b"")

    lengths = struct.pack(">QQ", len(aad) * 8, len(ciphertext) * 8)
    return padded(aad) + padded(ciphertext) + lengths


def gcm_encrypt(key: bytes, nonce: bytes, plaintext: bytes,
                aad: bytes = b"") -> Tuple[bytes, bytes]:
    """AES-GCM encrypt; returns ``(ciphertext, 16-byte tag)``.

    Nonce must be 12 bytes (the standard fast path: J0 = nonce || 1).
    """
    if len(nonce) != 12:
        raise ValueError("GCM nonce must be 12 bytes")
    cipher = AES(key)
    h = cipher.encrypt_block(b"\x00" * 16)
    j0 = nonce + b"\x00\x00\x00\x01"
    ciphertext = _ctr_keystream(
        cipher, nonce + b"\x00\x00\x00\x02", len(plaintext))
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, ciphertext))
    s = ghash(h, _ghash_input(aad, ciphertext))
    tag = bytes(a ^ b for a, b in zip(cipher.encrypt_block(j0), s))
    return ciphertext, tag


def gcm_decrypt(key: bytes, nonce: bytes, ciphertext: bytes, tag: bytes,
                aad: bytes = b"") -> bytes:
    """AES-GCM decrypt+verify; raises :class:`AuthenticationError`."""
    if len(nonce) != 12:
        raise ValueError("GCM nonce must be 12 bytes")
    cipher = AES(key)
    h = cipher.encrypt_block(b"\x00" * 16)
    j0 = nonce + b"\x00\x00\x00\x01"
    s = ghash(h, _ghash_input(aad, ciphertext))
    expected = bytes(a ^ b for a, b in zip(cipher.encrypt_block(j0), s))
    if expected != tag:
        raise AuthenticationError("GCM tag mismatch")
    stream = _ctr_keystream(
        cipher, nonce + b"\x00\x00\x00\x02", len(ciphertext))
    return bytes(a ^ b for a, b in zip(ciphertext, stream))


# ---------------------------------------------------------------------------
# CBC + HMAC-SHA1 (encrypt-then-MAC composition)
# ---------------------------------------------------------------------------
def cbc_hmac_encrypt(enc_key: bytes, mac_key: bytes, iv: bytes,
                     plaintext: bytes) -> Tuple[bytes, bytes]:
    """AES-CBC-128-SHA1 composite: returns (ciphertext, 20-byte mac)."""
    ciphertext = cbc_encrypt(enc_key, iv, plaintext)
    return ciphertext, hmac_sha1(mac_key, iv + ciphertext)


def cbc_hmac_decrypt(enc_key: bytes, mac_key: bytes, iv: bytes,
                     ciphertext: bytes, mac: bytes) -> bytes:
    if hmac_sha1(mac_key, iv + ciphertext) != mac:
        raise AuthenticationError("HMAC-SHA1 mismatch")
    return cbc_decrypt(enc_key, iv, ciphertext)
