"""Crypto substrate: real ciphers + FPGA/software timing models (§IV).

* Functional: :mod:`~repro.crypto.aes` (AES-128/192/256),
  :mod:`~repro.crypto.modes` (CBC/CTR/GCM, CBC+HMAC-SHA1),
  :mod:`~repro.crypto.sha1`, :mod:`~repro.crypto.gf128` — all verified
  against FIPS/NIST/RFC vectors in the test suite.
* Timing: :mod:`~repro.crypto.engine` (the FPGA crypto role) and
  :mod:`~repro.crypto.swmodel` (Haswell cycles/byte).
* Integration: :mod:`~repro.crypto.flows` — the per-flow transparent
  encryption tap installed in the bump-in-the-wire bridge.
"""

from .aes import AES, BLOCK_BYTES, INV_SBOX, SBOX
from .engine import (
    AES_BLOCK_BYTES,
    CBC_INTERLEAVE_PACKETS,
    FpgaCryptoConfig,
    FpgaCryptoEngine,
)
from .flows import (
    EncryptedPayload,
    EncryptionTap,
    FlowEntry,
    FlowKey,
    FlowTable,
)
from .gf128 import gf_mult, ghash
from .modes import (
    AuthenticationError,
    cbc_decrypt,
    cbc_encrypt,
    cbc_hmac_decrypt,
    cbc_hmac_encrypt,
    ctr_crypt,
    gcm_decrypt,
    gcm_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from .sha1 import hmac_sha1, sha1
from .swmodel import HASWELL_SUITES, CipherSuite, SoftwareCryptoModel

__all__ = [
    "AES",
    "AES_BLOCK_BYTES",
    "AuthenticationError",
    "BLOCK_BYTES",
    "CBC_INTERLEAVE_PACKETS",
    "CipherSuite",
    "EncryptedPayload",
    "EncryptionTap",
    "FlowEntry",
    "FlowKey",
    "FlowTable",
    "FpgaCryptoConfig",
    "FpgaCryptoEngine",
    "HASWELL_SUITES",
    "INV_SBOX",
    "SBOX",
    "SoftwareCryptoModel",
    "cbc_decrypt",
    "cbc_encrypt",
    "cbc_hmac_decrypt",
    "cbc_hmac_encrypt",
    "ctr_crypt",
    "gcm_decrypt",
    "gcm_encrypt",
    "gf_mult",
    "ghash",
    "hmac_sha1",
    "pkcs7_pad",
    "pkcs7_unpad",
    "sha1",
]
