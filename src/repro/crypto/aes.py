"""AES block cipher (FIPS-197), implemented from scratch.

Supports AES-128/192/256 encryption and decryption of single 16-byte
blocks.  This is the functional core behind the shell's line-rate flow
encryption (§IV); cipher *modes* live in :mod:`repro.crypto.modes` and
*timing* in :mod:`repro.crypto.engine` / :mod:`repro.crypto.swmodel`.

The implementation favors clarity over speed (table-driven SubBytes and
xtime-based MixColumns); correctness is pinned by the FIPS-197 and NIST
test vectors in the test suite.
"""

from __future__ import annotations

from typing import List

BLOCK_BYTES = 16


def _build_sbox() -> tuple:
    """Generate the AES S-box from the finite-field definition."""

    def gf_mul(a: int, b: int) -> int:
        result = 0
        for _ in range(8):
            if b & 1:
                result ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return result

    # Multiplicative inverses in GF(2^8) by brute force (build-time only).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        s = inverse[x]
        result = 0
        for i in range(8):
            bit = ((s >> i) & 1) ^ ((s >> ((i + 4) % 8)) & 1) \
                ^ ((s >> ((i + 5) % 8)) & 1) ^ ((s >> ((i + 6) % 8)) & 1) \
                ^ ((s >> ((i + 7) % 8)) & 1) ^ ((0x63 >> i) & 1)
            result |= bit << i
        sbox[x] = result
    inv_sbox = [0] * 256
    for x, v in enumerate(sbox):
        inv_sbox[v] = x
    return tuple(sbox), tuple(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
        0x6C, 0xD8, 0xAB, 0x4D)


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a = (a ^ 0x1B) & 0xFF
    return a


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiply used by (Inv)MixColumns."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = _xtime(a)
    return result


class AES:
    """One expanded key; encrypt/decrypt 16-byte blocks."""

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24 or 32 bytes")
        self.key = bytes(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(self.key)

    # ------------------------------------------------------------------
    # Key schedule
    # ------------------------------------------------------------------
    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        words: List[List[int]] = [list(key[4 * i: 4 * i + 4])
                                  for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]          # RotWord
                temp = [SBOX[b] for b in temp]      # SubWord
                temp[0] ^= RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into round keys of 16 bytes, column-major state order.
        round_keys = []
        for r in range(self.rounds + 1):
            rk = []
            for c in range(4):
                rk.extend(words[4 * r + c])
            round_keys.append(rk)
        return round_keys

    # ------------------------------------------------------------------
    # Round transforms (state is a flat 16-list, column-major)
    # ------------------------------------------------------------------
    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # Row r (elements r, r+4, r+8, r+12) rotates left by r.
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(4):
            col = state[4 * c: 4 * c + 4]
            state[4 * c + 0] = (_gmul(col[0], 2) ^ _gmul(col[1], 3)
                                ^ col[2] ^ col[3])
            state[4 * c + 1] = (col[0] ^ _gmul(col[1], 2)
                                ^ _gmul(col[2], 3) ^ col[3])
            state[4 * c + 2] = (col[0] ^ col[1] ^ _gmul(col[2], 2)
                                ^ _gmul(col[3], 3))
            state[4 * c + 3] = (_gmul(col[0], 3) ^ col[1] ^ col[2]
                                ^ _gmul(col[3], 2))

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(4):
            col = state[4 * c: 4 * c + 4]
            state[4 * c + 0] = (_gmul(col[0], 14) ^ _gmul(col[1], 11)
                                ^ _gmul(col[2], 13) ^ _gmul(col[3], 9))
            state[4 * c + 1] = (_gmul(col[0], 9) ^ _gmul(col[1], 14)
                                ^ _gmul(col[2], 11) ^ _gmul(col[3], 13))
            state[4 * c + 2] = (_gmul(col[0], 13) ^ _gmul(col[1], 9)
                                ^ _gmul(col[2], 14) ^ _gmul(col[3], 11))
            state[4 * c + 3] = (_gmul(col[0], 11) ^ _gmul(col[1], 13)
                                ^ _gmul(col[2], 9) ^ _gmul(col[3], 14))

    # ------------------------------------------------------------------
    # Block operations
    # ------------------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_BYTES:
            raise ValueError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_BYTES:
            raise ValueError("AES block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for round_index in range(self.rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
