"""SHA-1 (FIPS 180-4), implemented from scratch.

Required for AES-CBC-128-SHA1, which the paper's crypto role supports
"for backward compatibility for some software stacks".
"""

from __future__ import annotations

import struct

DIGEST_BYTES = 20
BLOCK_BYTES = 64

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def sha1(message: bytes) -> bytes:
    """One-shot SHA-1 digest of ``message``."""
    h0, h1, h2, h3, h4 = _H0
    length_bits = len(message) * 8
    message = message + b"\x80"
    message += b"\x00" * ((56 - len(message) % 64) % 64)
    message += struct.pack(">Q", length_bits)

    for offset in range(0, len(message), 64):
        chunk = message[offset:offset + 64]
        w = list(struct.unpack(">16I", chunk))
        for i in range(16, 80):
            w.append(_rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
        a, b, c, d, e = h0, h1, h2, h3, h4
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[i]) & 0xFFFFFFFF
            e, d, c, b, a = d, c, _rotl(b, 30), a, temp
        h0 = (h0 + a) & 0xFFFFFFFF
        h1 = (h1 + b) & 0xFFFFFFFF
        h2 = (h2 + c) & 0xFFFFFFFF
        h3 = (h3 + d) & 0xFFFFFFFF
        h4 = (h4 + e) & 0xFFFFFFFF
    return struct.pack(">5I", h0, h1, h2, h3, h4)


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA1 (RFC 2104)."""
    if len(key) > BLOCK_BYTES:
        key = sha1(key)
    key = key + b"\x00" * (BLOCK_BYTES - len(key))
    o_key = bytes(b ^ 0x5C for b in key)
    i_key = bytes(b ^ 0x36 for b in key)
    return sha1(o_key + sha1(i_key + message))
